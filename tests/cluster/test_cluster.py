"""Tests for machines, nodes, platforms and the batch scheduler."""

import pytest

from repro.cluster.batch import AllocationError, BatchScheduler
from repro.cluster.machine import (
    breadboard,
    eureka,
    generic_cluster,
    intrepid,
    surveyor,
)
from repro.cluster.platform import Platform
from repro.oslayer.process import ExecutableImage
from tests.conftest import run_gen


class TestMachineSpecs:
    def test_surveyor_shape(self):
        spec = surveyor()
        assert spec.nodes == 1024
        assert spec.cores_per_node == 4
        assert spec.total_cores == 4096
        assert spec.topology == "torus"

    def test_eureka_shape(self):
        spec = eureka()
        assert spec.nodes == 100
        assert spec.cores_per_node == 8
        assert spec.topology == "flat"

    def test_breadboard_is_x86(self):
        spec = breadboard()
        assert spec.process_costs.fork_exec < 0.05

    def test_intrepid_site_policy(self):
        spec = intrepid(2048)
        assert spec.min_alloc_nodes == 512

    def test_scaled_preserves_everything_else(self):
        spec = surveyor().scaled(64)
        assert spec.nodes == 64
        assert spec.cores_per_node == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            generic_cluster(nodes=0)


class TestNode:
    def test_exec_claims_core(self, small_platform):
        node = small_platform.node(0)
        img = ExecutableImage("x", 0)
        node.stage(img)
        during = []

        def body():
            during.append(node.busy_cores)
            yield small_platform.env.timeout(1)

        run_gen(small_platform.env, node.exec_process(img, body))
        assert during == [1]
        assert node.busy_cores == 0

    def test_daemon_does_not_claim_core(self, small_platform):
        node = small_platform.node(0)
        img = ExecutableImage("d", 0)
        node.stage(img)
        during = []

        def body():
            during.append(node.busy_cores)
            yield small_platform.env.timeout(1)

        run_gen(
            small_platform.env,
            node.exec_process(img, body, claim_core=False, count_busy=False),
        )
        assert during == [0]

    def test_core_contention_serializes(self, small_platform):
        spec = generic_cluster(nodes=1, cores_per_node=1)
        platform = Platform(spec)
        node = platform.node(0)
        img = ExecutableImage("x", 0)
        node.stage(img)
        finish = []

        def task():
            def body():
                yield platform.env.timeout(1)
                finish.append(platform.env.now)

            yield from node.exec_process(img, body)

        platform.env.process(task())
        platform.env.process(task())
        platform.env.run()
        assert finish[1] - finish[0] >= 1.0

    def test_busy_gauge_tracks_platform_wide(self, small_platform):
        env = small_platform.env
        img = ExecutableImage("x", 0)
        for node in small_platform.nodes[:2]:
            node.stage(img)

        def body():
            yield env.timeout(2)

        env.process(small_platform.node(0).exec_process(img, body))
        env.process(small_platform.node(1).exec_process(img, body))
        env.run(1)
        assert small_platform.busy_cores.value == 2
        env.run()
        assert small_platform.busy_cores.value == 0

    def test_failed_node_refuses_exec(self, small_platform):
        node = small_platform.node(0)
        node.failed = True
        img = ExecutableImage("x", 0)
        with pytest.raises(RuntimeError):
            run_gen(small_platform.env, node.exec_process(img))


class TestPlatform:
    def test_login_endpoint_past_nodes(self, small_platform):
        assert small_platform.login_endpoint == 4

    def test_torus_platform_topology(self):
        platform = Platform(surveyor(8))
        assert platform.topology.n == 8

    def test_healthy_nodes_excludes_failed(self, small_platform):
        small_platform.node(2).failed = True
        assert len(small_platform.healthy_nodes()) == 3


class TestBatchScheduler:
    def test_grant_after_boot(self, small_platform):
        batch = BatchScheduler(small_platform, boot_delay=7.0)
        alloc = run_gen(small_platform.env, batch.submit(2, walltime=100))
        assert alloc.size == 2
        assert small_platform.env.now == pytest.approx(7.0)
        assert batch.free_nodes == 2

    def test_release_returns_nodes(self, small_platform):
        batch = BatchScheduler(small_platform, boot_delay=0)
        alloc = run_gen(small_platform.env, batch.submit(3, walltime=100))
        batch.release(alloc)
        assert batch.free_nodes == 4
        assert alloc.expired.triggered

    def test_waits_for_free_nodes(self, small_platform):
        env = small_platform.env
        batch = BatchScheduler(small_platform, boot_delay=0)
        grants = []

        def first():
            alloc = yield from batch.submit(3, walltime=100)
            yield env.timeout(10)
            batch.release(alloc)

        def second():
            yield env.timeout(1)
            alloc = yield from batch.submit(3, walltime=100)
            grants.append(env.now)

        env.process(first())
        env.process(second())
        env.run()
        assert grants[0] >= 10

    def test_walltime_expiry_releases(self, small_platform):
        batch = BatchScheduler(small_platform, boot_delay=0)
        alloc = run_gen(small_platform.env, batch.submit(4, walltime=5))
        small_platform.env.run()
        assert alloc.expired.triggered
        assert alloc.expired.value == "walltime"
        assert batch.free_nodes == 4

    def test_policy_minimum_enforced(self):
        platform = Platform(intrepid(1024))
        batch = BatchScheduler(platform, boot_delay=0)
        with pytest.raises(AllocationError):
            run_gen(platform.env, batch.submit(64, walltime=100))

    def test_too_large_rejected(self, small_platform):
        batch = BatchScheduler(small_platform)
        with pytest.raises(AllocationError):
            run_gen(small_platform.env, batch.submit(10, walltime=100))

    def test_bad_walltime_rejected(self, small_platform):
        batch = BatchScheduler(small_platform)
        with pytest.raises(AllocationError):
            run_gen(small_platform.env, batch.submit(1, walltime=0))

    def test_queue_wait_fn_scales_with_size(self, small_platform):
        batch = BatchScheduler(
            small_platform, boot_delay=0, queue_wait_fn=lambda n: 2.0 * n
        )
        run_gen(small_platform.env, batch.submit(3, walltime=10))
        assert small_platform.env.now == pytest.approx(6.0)

    def test_allocation_remaining(self, small_platform):
        batch = BatchScheduler(small_platform, boot_delay=0)
        alloc = run_gen(small_platform.env, batch.submit(1, walltime=100))
        assert alloc.remaining(alloc.start_time + 30) == pytest.approx(70)
        assert alloc.remaining(alloc.start_time + 1000) == 0
