"""Exit-code contract of ``jets lint`` / ``jets lint-trace``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import lint_main, lint_trace_main
from repro.apps.synthetic import BarrierSleepBarrier
from repro.cluster.machine import generic_cluster
from repro.core.jets import Simulation
from repro.core.tasklist import JobSpec, TaskList
from repro.obs import session as obs_session

CLEAN = "x = 1\n"
DIRTY = "import time\n\ndef f():\n    return time.time()\n"


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        assert lint_main([str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_render(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text(DIRTY)
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:4:12: DT001" in out

    def test_min_severity_gates_exit_code(self, tmp_path, capsys):
        path = tmp_path / "warn.py"
        path.write_text("for x in {1, 2}:\n    print(x)\n")
        assert lint_main([str(path)]) == 1  # DT004 is a warning
        assert lint_main([str(path), "--min-severity", "error"]) == 0

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert lint_main([str(path)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        assert lint_main([str(path), "--select", "NOPE1"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("TR001", "TR004", "DT001", "SK001"):
            assert rule_id in out


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A real recorded run (JSONL) from a tiny MPI batch."""
    path = tmp_path_factory.mktemp("traces") / "run.jsonl"
    jobs = [JobSpec(program=BarrierSleepBarrier(0.2), nodes=2, ppn=1)]
    with obs_session(trace_out=str(path)):
        sim = Simulation(generic_cluster(nodes=2, cores_per_node=2), seed=0)
        report = sim.run_standalone(TaskList(jobs))
        assert report.jobs_completed == 1
    return path


class TestLintTrace:
    def test_real_run_is_valid(self, trace_file, capsys):
        assert lint_trace_main([str(trace_file)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_corrupted_run_exits_one(self, trace_file, tmp_path, capsys):
        corrupted = tmp_path / "corrupted.jsonl"
        lines = trace_file.read_text().splitlines()
        # .get: the dump ends with a {"meta": "perf"} trailer line.
        kept = [
            l for l in lines if json.loads(l).get("cat") != "job.grouped"
        ]
        assert len(kept) < len(lines)
        corrupted.write_text("\n".join(kept) + "\n")
        assert lint_trace_main([str(corrupted)]) == 1
        assert "TV004" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert lint_trace_main([str(tmp_path / "nope.jsonl")]) == 2

    def test_empty_file_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert lint_trace_main([str(empty)]) == 2

    def test_max_issues_truncates(self, trace_file, tmp_path, capsys):
        corrupted = tmp_path / "very_corrupted.jsonl"
        lines = trace_file.read_text().splitlines()
        kept = [
            l for l in lines
            if json.loads(l).get("cat") not in ("job.grouped", "worker.start")
        ]
        corrupted.write_text("\n".join(kept) + "\n")
        assert lint_trace_main([str(corrupted), "--max-issues", "1"]) == 1
        out = capsys.readouterr().out
        assert "more issues" in out


def test_jets_cli_dispatches_lint(tmp_path, capsys):
    from repro.core.cli import main

    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    assert main(["lint", str(path)]) == 0
