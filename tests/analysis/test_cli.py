"""Exit-code contract of ``jets lint`` / ``jets lint-trace``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import lint_main, lint_trace_main
from repro.apps.synthetic import BarrierSleepBarrier
from repro.cluster.machine import generic_cluster
from repro.core.jets import Simulation
from repro.core.tasklist import JobSpec, TaskList
from repro.obs import session as obs_session

CLEAN = "x = 1\n"
DIRTY = "import time\n\ndef f():\n    return time.time()\n"


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        assert lint_main([str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_render(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text(DIRTY)
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:4:12: DT001" in out

    def test_min_severity_gates_exit_code(self, tmp_path, capsys):
        path = tmp_path / "warn.py"
        path.write_text("for x in {1, 2}:\n    print(x)\n")
        assert lint_main([str(path)]) == 1  # DT004 is a warning
        assert lint_main([str(path), "--min-severity", "error"]) == 0

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert lint_main([str(path)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        assert lint_main([str(path), "--select", "NOPE1"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("TR001", "TR004", "DT001", "SK001"):
            assert rule_id in out


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A real recorded run (JSONL) from a tiny MPI batch."""
    path = tmp_path_factory.mktemp("traces") / "run.jsonl"
    jobs = [JobSpec(program=BarrierSleepBarrier(0.2), nodes=2, ppn=1)]
    with obs_session(trace_out=str(path)):
        sim = Simulation(generic_cluster(nodes=2, cores_per_node=2), seed=0)
        report = sim.run_standalone(TaskList(jobs))
        assert report.jobs_completed == 1
    return path


class TestLintTrace:
    def test_real_run_is_valid(self, trace_file, capsys):
        assert lint_trace_main([str(trace_file)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_corrupted_run_exits_one(self, trace_file, tmp_path, capsys):
        corrupted = tmp_path / "corrupted.jsonl"
        lines = trace_file.read_text().splitlines()
        # .get: the dump ends with a {"meta": "perf"} trailer line.
        kept = [
            l for l in lines if json.loads(l).get("cat") != "job.grouped"
        ]
        assert len(kept) < len(lines)
        corrupted.write_text("\n".join(kept) + "\n")
        assert lint_trace_main([str(corrupted)]) == 1
        assert "TV004" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert lint_trace_main([str(tmp_path / "nope.jsonl")]) == 2

    def test_empty_file_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert lint_trace_main([str(empty)]) == 2

    def test_max_issues_truncates(self, trace_file, tmp_path, capsys):
        corrupted = tmp_path / "very_corrupted.jsonl"
        lines = trace_file.read_text().splitlines()
        kept = [
            l for l in lines
            if json.loads(l).get("cat") not in ("job.grouped", "worker.start")
        ]
        corrupted.write_text("\n".join(kept) + "\n")
        assert lint_trace_main([str(corrupted), "--max-issues", "1"]) == 1
        out = capsys.readouterr().out
        assert "more issues" in out


def test_jets_cli_dispatches_lint(tmp_path, capsys):
    from repro.core.cli import main

    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    assert main(["lint", str(path)]) == 0


KERNEL_SRC = (
    "class Environment:\n"
    "    def step(self):\n"
    "        self._dispatch()\n"
    "    def _dispatch(self):\n"
    "        handle()\n"
    "def handle():\n"
    "    pass\n"
    "def cold():\n"
    "    pass\n"
)


class TestHotpath:
    @pytest.fixture()
    def kernel_dir(self, tmp_path):
        (tmp_path / "kernel.py").write_text(KERNEL_SRC)
        return tmp_path

    def test_dump_lists_hot_set(self, kernel_dir, capsys):
        from repro.analysis.cli import hotpath_main

        assert hotpath_main(["--path", str(kernel_dir)]) == 0
        out = capsys.readouterr().out
        assert "kernel:Environment.step" in out
        assert "entry:Environment.step" in out
        assert "kernel:handle" in out
        assert "kernel:cold" not in out

    def test_explain_hot_function(self, kernel_dir, capsys):
        from repro.analysis.cli import hotpath_main

        assert hotpath_main(["handle", "--path", str(kernel_dir)]) == 0
        out = capsys.readouterr().out
        assert "HOT" in out and "Environment.step" in out

    def test_cold_function_exits_one(self, kernel_dir, capsys):
        from repro.analysis.cli import hotpath_main

        assert hotpath_main(["cold", "--path", str(kernel_dir)]) == 1
        assert "NOT on the hot path" in capsys.readouterr().out

    def test_unknown_function_exits_two(self, kernel_dir, capsys):
        from repro.analysis.cli import hotpath_main

        assert hotpath_main(["nope", "--path", str(kernel_dir)]) == 2
        assert "no function matches" in capsys.readouterr().err

    def test_json_dump_shape(self, kernel_dir, capsys):
        from repro.analysis.cli import hotpath_main

        assert hotpath_main(
            ["--path", str(kernel_dir), "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "kernel:Environment.step" in doc["hot"]
        assert doc["roots"]["kernel:Environment.step"].startswith("entry:")

    def test_profile_widens_hot_set(self, kernel_dir, tmp_path, capsys):
        from repro.analysis.cli import hotpath_main

        profile = tmp_path / "BENCH_profile.json"
        profile.write_text(json.dumps({
            "workloads": {"wl": [{"id": "kernel:cold", "cumtime": 1.0}]}
        }))
        assert hotpath_main([
            "cold", "--path", str(kernel_dir),
            "--hot-profile", str(profile),
        ]) == 0
        assert "profile" in capsys.readouterr().out

    def test_repo_hot_set_contains_kernel_entries(self, capsys):
        """The acceptance contract: the real src/ hot set holds the
        kernel loop, the store dispatch, and the dispatcher handlers."""
        from pathlib import Path

        import repro

        from repro.analysis.cli import hotpath_main

        src = str(Path(repro.__file__).parent)
        assert hotpath_main(["--path", src]) == 0
        out = capsys.readouterr().out
        for needle in (
            "repro.simkernel.core:Environment.step",
            "repro.simkernel.resources:Store._dispatch",
            "repro.core.dispatcher:JetsDispatcher._handle_worker",
            "repro.core.dispatcher:JetsDispatcher._scheduler_loop",
        ):
            assert needle in out

    def test_jets_cli_dispatches_hotpath(self, kernel_dir, capsys):
        from repro.core.cli import main

        assert main(["hotpath", "--path", str(kernel_dir)]) == 0
        assert "hot path" in capsys.readouterr().out


class TestLintHotProfile:
    def test_bad_profile_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN)
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert lint_main(
            [str(target), "--hot-profile", str(bogus)]
        ) == 2
        assert "hot-profile" in capsys.readouterr().err

    def test_json_findings_carry_hot_path_field(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text(DIRTY)
        assert lint_main([str(path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"]
        assert all("hot_path" in f for f in doc["findings"])

    def test_profile_escalates_and_resets(self, tmp_path, capsys):
        from repro.analysis.perf_rules import hot_profile

        target = tmp_path / "cold.py"
        target.write_text(
            "def cold_loop(ctx):\n"
            "    for _ in range(3):\n"
            "        ctx.stats.counters.add(1)\n"
            "        ctx.stats.counters.add(2)\n"
        )
        profile = tmp_path / "BENCH_profile.json"
        profile.write_text(json.dumps({
            "workloads": {"wl": [{"id": "cold:cold_loop"}]}
        }))
        assert lint_main([
            str(target), "--select", "PF002", "--format", "json",
            "--hot-profile", str(profile),
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        (finding,) = doc["findings"]
        assert finding["severity"] == "error"
        assert finding["hot_path"] is True
        assert hot_profile() is None  # reset after the run
