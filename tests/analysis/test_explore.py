"""The bounded schedule explorer and the SeededOrder permutation hook."""

from __future__ import annotations

from repro.analysis.explore import (
    ExploreConfig,
    explore,
    explore_main,
    run_schedule,
    wire_messages,
)
from repro.simkernel import Environment, SeededOrder


class TestSeededOrder:
    def test_seed_zero_is_fifo_baseline(self):
        order = SeededOrder(0)
        assert [order.tiebreak(None) for _ in range(8)] == [0.0] * 8

    def test_nonzero_seed_permutes_deterministically(self):
        def stream(seed, n=16):
            order = SeededOrder(seed)
            return [order.tiebreak(None) for _ in range(n)]

        a = stream(7)
        assert a == stream(7)
        assert len(set(a)) == 16  # actually varies
        assert all(0.0 <= x < 1.0 for x in a)
        assert a != stream(8)

    def test_default_environment_order_unchanged(self):
        # No order (the production default) must keep the historic FIFO
        # heap behaviour: same-time events run in scheduling order.
        ran: list[int] = []
        env = Environment()

        def proc(i):
            yield env.timeout(1.0)
            ran.append(i)

        for i in range(6):
            env.process(proc(i))
        env.run()
        assert ran == list(range(6))

    def test_seeded_order_permutes_ties(self):
        def run(order):
            ran: list[int] = []
            env = Environment(order=order)

            def proc(i):
                yield env.timeout(1.0)
                ran.append(i)

            for i in range(8):
                env.process(proc(i))
            env.run()
            return ran

        assert run(SeededOrder(3)) != list(range(8))
        assert run(SeededOrder(3)) == run(SeededOrder(3))


class TestRunSchedule:
    def test_fifo_baseline_schedule_passes(self):
        result = run_schedule(ExploreConfig(schedules=1), 0)
        assert result.ok
        assert result.killed_worker is None
        assert result.wire_count > 0

    def test_kill_schedule_passes_and_kills(self):
        result = run_schedule(ExploreConfig(schedules=2), 1)
        assert result.ok
        assert result.killed_worker is not None
        assert 0.0 < result.kill_time < 2.0

    def test_schedules_are_deterministic(self):
        a = run_schedule(ExploreConfig(schedules=4), 3)
        b = run_schedule(ExploreConfig(schedules=4), 3)
        assert (a.seed, a.kill_time, a.wire_count, a.problems) == (
            b.seed,
            b.kill_time,
            b.wire_count,
            b.problems,
        )

    def test_campaign_report(self):
        report = explore(ExploreConfig(schedules=4))
        assert len(report.results) == 4
        assert report.ok
        kills = [r for r in report.results if r.killed_worker is not None]
        assert len(kills) == 2


class TestExploreCli:
    def test_small_campaign_exits_zero(self, capsys):
        assert explore_main(["--schedules", "6"]) == 0
        out = capsys.readouterr().out
        assert "6 schedules" in out
        assert "all passed" in out

    def test_oversized_mpi_config_rejected(self, capsys):
        rc = explore_main(["--schedules", "2", "--mpi-nodes", "4"])
        assert rc == 2


class TestWireConversion:
    def test_unknown_services_dropped(self):
        from repro.netsim.sockets import WireEvent

        events = [
            WireEvent(0.0, "jets", 1, "n0", ("ready", 0), 64),
            WireEvent(0.1, "coasters", 2, "n0", ("hello",), 8),
            WireEvent(0.2, "mpiexec-j1", 3, "n1", ("start",), 512),
        ]
        msgs = wire_messages(events)
        assert [(m.channel, m.kind) for m in msgs] == [
            ("jets", "ready"),
            ("hydra", "start"),
        ]
        assert msgs[0].conn == 1 and msgs[0].nbytes == 64
