"""Runtime trace validation: schema + lifecycle replay (TV001-TV005)."""

from __future__ import annotations

import pytest

from repro.analysis.tracecheck import validate_records
from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.core.jets import Simulation
from repro.core.tasklist import JobSpec, TaskList
from repro.simkernel.monitor import TraceRecord


def rec(t, cat, data=None):
    return TraceRecord(t, cat, data)


def codes(issues):
    return [i.code for i in issues]


class TestSchemaChecks:
    def test_unknown_category_is_tv001(self):
        issues = validate_records([rec(0.0, "job.qeued", {"job": "j"})])
        assert codes(issues) == ["TV001"]

    def test_missing_payload_key_is_tv002(self):
        issues = validate_records([rec(0.0, "fault.kill", {})])
        assert codes(issues) == ["TV002"]
        assert "worker" in issues[0].message

    def test_undeclared_payload_key_is_tv002(self):
        issues = validate_records(
            [rec(0.0, "fault.kill", {"worker": 1, "vibe": "bad"})]
        )
        assert codes(issues) == ["TV002"]
        assert "vibe" in issues[0].message

    def test_counter_prefix_family_accepted(self):
        issues = validate_records(
            [rec(0.0, "counter.tasks", {"counter": "tasks", "value": 3})]
        )
        assert issues == []

    def test_non_monotonic_time_is_tv003(self):
        issues = validate_records(
            [
                rec(1.0, "fault.kill", {"worker": 1}),
                rec(0.5, "fault.kill", {"worker": 2}),
            ]
        )
        assert codes(issues) == ["TV003"]


class TestLifecycleChecks:
    DONE = {
        "job": "job0",
        "attempt": 1,
        "nodes": 1,
        "ppn": 1,
        "duration_hint": 1.0,
        "nominal": 1.0,
    }

    def job(self, event, t, **extra):
        data = {"job": "job0", **extra}
        return rec(t, f"job.{event}", data)

    def test_legal_job_lifecycle_is_clean(self):
        issues = validate_records(
            [
                self.job("submitted", 0.0, mpi=True, nodes=1, ppn=1),
                self.job("queued", 0.1, attempt=1),
                self.job("grouped", 0.2, attempt=1, workers=[0]),
                self.job("mpiexec_spawned", 0.3, attempt=1),
                self.job("pmi_wireup", 0.4),
                self.job("app_running", 0.5),
                rec(1.5, "job.done", self.DONE),
            ]
        )
        assert issues == []

    def test_illegal_transition_is_tv004(self):
        # A corrupted trace: the job runs before it was ever grouped.
        issues = validate_records(
            [
                self.job("submitted", 0.0),
                self.job("queued", 0.1),
                self.job("app_running", 0.5),
                rec(1.5, "job.done", self.DONE),
            ],
            check_schema=False,
        )
        # The bogus jump is flagged, and the entity stays in its last
        # legal state, so the later records cascade as TV004 too.
        assert issues and set(codes(issues)) == {"TV004"}
        assert "queued -> app_running" in issues[0].message

    def test_done_without_any_history_is_tv004(self):
        issues = validate_records(
            [rec(1.0, "job.done", self.DONE)], check_schema=False
        )
        assert codes(issues) == ["TV004"]
        assert "<entry>" in issues[0].message

    def test_missing_id_key_is_tv005(self):
        issues = validate_records(
            [rec(0.0, "worker.start", {"node": 3})], check_schema=False
        )
        assert codes(issues) == ["TV005"]

    def test_resubmission_cycle_is_legal(self):
        issues = validate_records(
            [
                self.job("submitted", 0.0, mpi=True, nodes=1, ppn=1),
                self.job("queued", 0.1, attempt=1),
                self.job("grouped", 0.2, attempt=1, workers=[0]),
                self.job("mpiexec_spawned", 0.3, attempt=1),
                self.job("retry", 0.4, attempt=1, error="worker died"),
                self.job("queued", 0.5, attempt=2),
            ]
        )
        assert issues == []

    def test_flags_disable_their_checks(self):
        bad = [
            rec(0.0, "no.such.category", {"x": 1}),
            rec(1.0, "job.done", self.DONE),
        ]
        assert codes(validate_records(bad, check_lifecycle=False)) == ["TV001"]
        schema_off = validate_records(bad, check_schema=False)
        assert codes(schema_off) == ["TV004"]


class TestRealRuns:
    @pytest.fixture(scope="class")
    def mixed_run(self):
        jobs = [
            JobSpec(program=BarrierSleepBarrier(0.5), nodes=2, ppn=1, mpi=True),
            JobSpec(program=SleepProgram(0.3), nodes=1, mpi=False),
            JobSpec(program=BarrierSleepBarrier(0.2), nodes=1, ppn=2, mpi=True),
        ]
        sim = Simulation(generic_cluster(nodes=4, cores_per_node=2), seed=1)
        report = sim.run_standalone(TaskList(jobs))
        assert report.jobs_completed == 3
        return list(report.platform.trace.records)

    def test_real_run_validates_clean(self, mixed_run):
        assert validate_records(mixed_run) == []

    def test_corrupting_a_real_run_is_flagged(self, mixed_run):
        # Drop every job.grouped record: each MPI job now appears to jump
        # queued -> mpiexec_spawned.
        corrupted = [r for r in mixed_run if r.category != "job.grouped"]
        issues = validate_records(corrupted)
        assert issues and all(c == "TV004" for c in codes(issues))
        assert any("queued -> mpiexec_spawned" in i.message for i in issues)

    def test_fault_run_validates_clean(self):
        """Killed workers/proxies still leave a legal lifecycle: mpiexec
        closes unreported proxies with a status-143 ``proxy.exited`` and
        resubmitted attempts reincarnate them."""
        from repro.core.jets import FaultSpec

        jobs = [
            JobSpec(program=BarrierSleepBarrier(2.0), nodes=2, ppn=1),
            JobSpec(program=BarrierSleepBarrier(1.0), nodes=2, ppn=1),
        ]
        sim = Simulation(generic_cluster(nodes=4, cores_per_node=2), seed=3)
        report = sim.run_standalone(
            TaskList(jobs), faults=FaultSpec(interval=1.5), until=60.0
        )
        records = list(report.platform.trace.records)
        assert any(r.category == "fault.kill" for r in records)
        assert validate_records(records) == []
