"""noqa parsing edge cases, NQ001 gating and file-set expansion."""

from __future__ import annotations

import textwrap

from repro.analysis.framework import (
    iter_python_files,
    lint_source,
    rules_for,
)

DT001_SRC = "import time\nt = time.time(){comment}\n"


def lint(source: str, **kw):
    return lint_source(textwrap.dedent(source), path="noqa_case.py", **kw)


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self):
        findings = lint(DT001_SRC.format(comment="  # repro: noqa"))
        assert findings == []

    def test_rule_list_suppresses_named_rule(self):
        findings = lint(
            DT001_SRC.format(comment="  # repro: noqa[DT001]")
        )
        assert findings == []

    def test_multi_rule_list(self):
        # A used entry keeps the whole comment alive: DT002 never fires
        # here but the DT001 half suppressed a real finding.
        findings = lint(
            DT001_SRC.format(comment="  # repro: noqa[DT001, DT002]")
        )
        assert findings == []

    def test_case_insensitive(self):
        findings = lint(
            DT001_SRC.format(comment="  # REPRO: NOQA[dt001]")
        )
        assert findings == []

    def test_wrong_rule_id_suppresses_nothing(self):
        findings = lint(
            DT001_SRC.format(comment="  # repro: noqa[TR001]")
        )
        # The real finding survives AND the mis-aimed comment is flagged.
        assert rules_of(findings) == {"DT001", "NQ001"}

    def test_project_rule_consumes_noqa(self):
        source = (
            "def worker_a(rng):\n"
            "    return rng.stream('jitter')  # repro: noqa[RS001]\n"
            "def worker_b(rng):\n"
            "    return rng.stream('jitter')\n"
        )
        findings = lint(source)
        # One of the two aliasing sites is suppressed; the comment is
        # used (no NQ001), the other site still reports.
        assert [f.rule for f in findings] == ["RS001"]
        assert findings[0].line == 4


class TestUnusedSuppression:
    def test_unused_noqa_reported(self):
        findings = lint("x = 1  # repro: noqa[DT001]\n")
        (f,) = findings
        assert f.rule == "NQ001"
        assert "unused suppression" in f.message
        assert "DT001" in f.message

    def test_unused_bare_noqa_reported(self):
        (f,) = lint("x = 1  # repro: noqa\n")
        assert f.rule == "NQ001"
        assert "bare" in f.message

    def test_nq001_self_exempt(self):
        assert lint("x = 1  # repro: noqa[NQ001]\n") == []

    def test_gated_off_under_select(self):
        findings = lint(
            "x = 1  # repro: noqa[DT001]\n",
            rules=rules_for(select=["DT001"]),
        )
        assert findings == []

    def test_gated_off_under_ignore(self):
        findings = lint(
            "x = 1  # repro: noqa[DT001]\n",
            rules=rules_for(ignore=["TR001"]),
        )
        assert findings == []

    def test_docstring_mention_is_not_a_suppression(self):
        source = (
            '"""Suppress findings with ``# repro: noqa[DT001]``."""\n'
            "x = 1\n"
        )
        assert lint(source) == []

    def test_string_literal_is_not_a_suppression(self):
        # A string containing the syntax neither suppresses the finding
        # on its own line nor counts as an unused comment.
        source = (
            "import time\n"
            "t = (time.time(), '# repro: noqa')\n"
        )
        assert rules_of(lint(source)) == {"DT001"}


class TestIterPythonFiles:
    def _tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        sub = pkg / "sub"
        sub.mkdir(parents=True)
        (pkg / "a.py").write_text("a = 1\n")
        (pkg / "b.py").write_text("b = 2\n")
        (sub / "c.py").write_text("c = 3\n")
        (pkg / "notes.txt").write_text("not python\n")
        return pkg, sub

    def test_directory_expansion_sorted(self, tmp_path):
        pkg, _ = self._tree(tmp_path)
        names = [p.name for p in iter_python_files([str(pkg)])]
        assert names == ["a.py", "b.py", "c.py"]

    def test_overlapping_dir_and_file_deduped(self, tmp_path):
        pkg, _ = self._tree(tmp_path)
        paths = list(
            iter_python_files([str(pkg), str(pkg / "a.py")])
        )
        assert len(paths) == 3
        assert len(set(paths)) == 3

    def test_nested_dir_overlap_deduped(self, tmp_path):
        pkg, sub = self._tree(tmp_path)
        paths = list(iter_python_files([str(pkg), str(sub)]))
        assert [p.name for p in paths] == ["a.py", "b.py", "c.py"]

    def test_same_file_twice_deduped(self, tmp_path):
        pkg, _ = self._tree(tmp_path)
        target = str(pkg / "a.py")
        assert len(list(iter_python_files([target, target]))) == 1
