"""The declarative state machines and their schema/spans integration."""

from __future__ import annotations

import pytest

from repro.analysis import schema
from repro.analysis.lifecycle import (
    JOB_MACHINE,
    MACHINES,
    PROXY_MACHINE,
    WORKER_MACHINE,
)


class TestMachineConsistency:
    @pytest.mark.parametrize("machine", MACHINES.values(), ids=lambda m: m.entity)
    def test_graph_is_well_formed(self, machine):
        """Every named state exists; transitions reference real states."""
        states = set(machine.states)
        assert machine.initial <= states
        for src, dests in machine.transitions.items():
            assert src in states
            assert set(dests) <= states
        for state in machine.events.values():
            assert state in states

    def test_job_happy_path(self):
        path = [
            "submitted", "queued", "grouped", "mpiexec_spawned",
            "pmi_wireup", "app_running", "done",
        ]
        for a, b in zip(path, path[1:]):
            assert JOB_MACHINE.can(a, b), (a, b)
        assert JOB_MACHINE.is_terminal("done")
        assert JOB_MACHINE.is_terminal("failed")

    def test_job_rejects_skipping_grouping(self):
        assert not JOB_MACHINE.can("queued", "mpiexec_spawned")
        assert not JOB_MACHINE.can("queued", "done")

    def test_worker_idle_busy_cycle(self):
        assert WORKER_MACHINE.can("idle", "busy")
        assert WORKER_MACHINE.can("busy", "idle")
        # Dispatcher-side observations (idle/busy/lost) may trail the
        # pilot's own terminal stop under message faults, but a stopped
        # worker never restarts.
        assert WORKER_MACHINE.can("stopped", "busy")
        assert not WORKER_MACHINE.can("stopped", "started")
        assert not WORKER_MACHINE.can("lost", "busy")

    def test_proxy_is_linear(self):
        assert PROXY_MACHINE.can("launched", "registered")
        assert PROXY_MACHINE.can("registered", "wired")
        assert not PROXY_MACHINE.can("wired", "registered")


class TestSchemaDerivation:
    @pytest.mark.parametrize("machine", MACHINES.values(), ids=lambda m: m.entity)
    def test_every_machine_event_has_a_category_spec(self, machine):
        for event in machine.events:
            category = f"{machine.entity}.{event}"
            assert schema.known_category(category), category

    def test_spans_reexports_machine_states(self):
        from repro.obs import spans

        assert spans.JOB_STATES == JOB_MACHINE.states
        assert spans.WORKER_STATES == WORKER_MACHINE.states
        assert spans.PROXY_STATES == PROXY_MACHINE.states

    def test_prefix_family_requires_keys(self):
        spec = schema.lookup("counter.anything")
        assert spec is not None
        assert {"counter", "value"} <= set(spec.required)
