"""Incremental validators vs post-hoc scans, across both sink kinds.

The trace and protocol oracles were converted from post-hoc full scans
to incremental subscribers so they can ride a windowed streaming sink.
These tests pin the refactor's contract: feeding records one at a time —
including through a StreamingTrace whose window is far smaller than the
stream, so most records are evicted right after fan-out — produces the
exact issue list the legacy whole-trace scan reports.
"""

from __future__ import annotations

from repro.analysis.protocol import (
    SessionValidator,
    WireMessage,
    validate_sessions,
)
from repro.analysis.tracecheck import TraceValidator, validate_records
from repro.simkernel import StreamingTrace, Trace, TraceRecord


def _mixed_stream():
    """A record stream with known-good and known-bad entries mixed in."""
    records = []
    t = 0.0
    for job in range(6):
        records.append(TraceRecord(t, "job.submit", {"job": job}))
        t += 0.5
        records.append(TraceRecord(t, "job.start", {"job": job}))
        t += 0.5
        records.append(TraceRecord(t, "job.done", {"job": job}))
        t += 0.5
    # TV001: unknown category.
    records.append(TraceRecord(t, "job.totally-made-up", {"job": 99}))
    # TV005: lifecycle record without its id key.
    records.append(TraceRecord(t + 0.5, "job.done", {"nope": 1}))
    # TV004: done without submit/start.
    records.append(TraceRecord(t + 1.0, "job.done", {"job": 77}))
    # TV003: time goes backwards.
    records.append(TraceRecord(0.25, "job.submit", {"job": 78}))
    return records


class TestTraceValidatorEquivalence:
    def test_incremental_feed_equals_post_hoc_scan(self):
        records = _mixed_stream()
        post_hoc = validate_records(records)
        incremental = TraceValidator()
        for rec in records:
            incremental.feed(rec)
        assert [
            (i.code, i.index, i.category) for i in incremental.issues
        ] == [(i.code, i.index, i.category) for i in post_hoc]
        assert incremental.records_seen == len(records)
        assert {i.code for i in post_hoc} >= {
            "TV001",
            "TV003",
            "TV004",
            "TV005",
        }

    def test_windowed_sink_fold_matches_in_ram_fold(self, env):
        """Same synthetic stream through both sinks → same verdicts."""
        ram, streaming = Trace(env), StreamingTrace(env, window=3)
        v_ram, v_stream = TraceValidator(), TraceValidator()
        ram.subscribe(v_ram.feed)
        streaming.subscribe(v_stream.feed)
        for i in range(30):
            for sink in (ram, streaming):
                sink.log("job.submit", {"job": i})
                sink.log("job.start", {"job": i})
                if i % 7 == 0:  # TV004: double start
                    sink.log("job.start", {"job": i})
                sink.log("job.done", {"job": i})
        assert [(i.code, i.index) for i in v_stream.issues] == [
            (i.code, i.index) for i in v_ram.issues
        ]
        assert v_stream.issues  # the stream really contained violations
        # Eviction discarded most records, yet the fold saw them all.
        assert streaming.retained == 3
        assert v_stream.records_seen == streaming.total

    def test_check_flags_narrow_the_fold(self):
        records = _mixed_stream()
        schema_only = TraceValidator(check_lifecycle=False)
        lifecycle_only = TraceValidator(check_schema=False)
        for rec in records:
            schema_only.feed(rec)
            lifecycle_only.feed(rec)
        assert all(
            i.code in ("TV001", "TV002", "TV003")
            for i in schema_only.issues
        )
        assert all(
            i.code in ("TV003", "TV004", "TV005")
            for i in lifecycle_only.issues
        )


def _msg(conn, kind, *fields, time=0.0):
    return WireMessage(
        conn=conn,
        channel="jets",
        kind=kind,
        payload=(kind,) + fields,
        sender="test",
        service="jets",
        time=time,
    )


def _jets_messages():
    """A jets-channel session with one protocol violation mixed in."""
    return [
        _msg(1, "register", 0, 0, 2, time=0.0),
        _msg(1, "ready", 0, time=0.5),
        _msg(1, "run_task", {"job": 0}, time=1.0),
        _msg(1, "done", 0, 0, "ok", None, time=1.5),
        _msg(1, "not-a-kind", time=2.0),
        _msg(1, "shutdown", time=2.5),
    ]


class TestSessionValidatorEquivalence:
    def test_incremental_feed_equals_post_hoc_scan(self):
        msgs = _jets_messages()
        post_hoc = validate_sessions(msgs)
        incremental = SessionValidator()
        for msg in msgs:
            incremental.feed(msg)
        assert incremental.finish() == post_hoc
        assert post_hoc  # the stream really contained a violation

    def test_finish_is_stable_across_calls(self):
        incremental = SessionValidator()
        for msg in _jets_messages():
            incremental.feed(msg)
        assert incremental.finish() == incremental.finish()

    def test_clean_session_reports_nothing(self):
        msgs = [m for m in _jets_messages() if m.kind != "not-a-kind"]
        incremental = SessionValidator()
        for msg in msgs:
            incremental.feed(msg)
        assert incremental.finish() == validate_sessions(msgs) == []
