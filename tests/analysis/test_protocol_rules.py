"""The protocol registry, session validator and PR rules (fixtures + src)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import protocol
from repro.analysis.framework import lint_paths, rules_for
from repro.analysis.protocol import WireMessage, validate_sessions, wire_size

from .test_static_rules import lines_for, lint_fixture, mark_lines

SRC = Path(__file__).parents[2] / "src"

PR_RULES = ["PR001", "PR002", "PR003", "PR004", "PR005", "PR006"]


class TestRegistry:
    def test_every_kind_resolvable(self):
        for channel, specs in protocol.CHANNELS.items():
            for kind, spec in specs.items():
                assert protocol.known_kind(kind)
                assert protocol.lookup_message(channel, kind) is spec

    def test_wire_sizes_match_seed_values(self):
        assert wire_size("jets", protocol.REGISTER) == 256
        assert wire_size("jets", protocol.READY) == 64
        assert wire_size("jets", protocol.HEARTBEAT) == 32
        assert wire_size("jets", protocol.DONE, extra=100) == 228
        assert wire_size("jets", protocol.SHUTDOWN, ctrl=512) == 512
        assert wire_size("hydra", protocol.REGISTER) == 512
        assert wire_size("hydra", protocol.COMMIT, extra=4096) == 4096

    def test_wire_size_rejects_misuse(self):
        with pytest.raises(ValueError):
            wire_size("jets", "bogus")
        with pytest.raises(ValueError):
            wire_size("jets", protocol.RUN_TASK)  # ctrl required
        with pytest.raises(ValueError):
            wire_size("jets", protocol.READY, extra=10)  # not variable
        with pytest.raises(ValueError):
            wire_size("hydra", protocol.CLOSED)  # internal mark

    def test_kind_constants_cover_channels(self):
        declared = {
            kind
            for specs in protocol.CHANNELS.values()
            for kind in specs
        }
        assert declared <= set(protocol.KIND_CONSTANTS.values())


def _msg(conn, channel, kind, *rest, service="jets"):
    return WireMessage(
        conn=conn,
        channel=channel,
        kind=kind,
        payload=(kind, *rest),
        service=service,
    )


class TestSessionValidation:
    def test_clean_jets_session(self):
        msgs = [
            _msg(1, "jets", protocol.REGISTER, 0, 0, 2),
            _msg(1, "jets", protocol.READY, 0),
            _msg(1, "jets", protocol.READY, 0),
            _msg(1, "jets", protocol.RUN_TASK, "j0"),
            _msg(1, "jets", protocol.HEARTBEAT, 0),
            _msg(1, "jets", protocol.DONE, 0, "j0", 0, None),
            _msg(1, "jets", protocol.READY, 0),
            _msg(1, "jets", protocol.SHUTDOWN),
        ]
        assert validate_sessions(msgs) == []

    def test_dispatch_without_credit_flagged(self):
        msgs = [
            _msg(1, "jets", protocol.REGISTER, 0, 0, 1),
            _msg(1, "jets", protocol.RUN_TASK, "j0"),
        ]
        problems = validate_sessions(msgs)
        assert any("credit" in p for p in problems)

    def test_unknown_kind_flagged(self):
        problems = validate_sessions([_msg(1, "jets", "bogus")])
        assert any("bogus" in p for p in problems)

    def test_internal_kind_on_wire_flagged(self):
        problems = validate_sessions(
            [_msg(1, "hydra", protocol.CLOSED, service="mpiexec-j0")]
        )
        assert any("internal" in p for p in problems)

    def test_commit_before_all_registers_flagged(self):
        svc = "mpiexec-j0"
        msgs = [
            _msg(1, "hydra", protocol.REGISTER, 0, service=svc),
            _msg(1, "hydra", protocol.START, service=svc),
            _msg(1, "hydra", protocol.PMI_PUT, 0, "k", "v", service=svc),
            _msg(1, "hydra", protocol.COMMIT, 4096, service=svc),
            _msg(2, "hydra", protocol.REGISTER, 1, service=svc),
        ]
        problems = validate_sessions(msgs)
        assert problems == [
            "service [mpiexec-j0]: commit at msg 3 precedes a proxy "
            "register at msg 4 (commit requires every proxy registered)"
        ]

    def test_jets_truncation_is_legal(self):
        # A worker dying between register and first ready truncates the
        # session; that is not a protocol violation.
        msgs = [_msg(1, "jets", protocol.REGISTER, 0, 0, 2)]
        assert validate_sessions(msgs) == []


class TestBadArityFixture:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("protocol_bad_arity.py")

    def test_pr002_send_and_unpack(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PR002-send")
            + mark_lines(source, "PR002-unpack")
        )
        assert lines_for(findings, "PR002") == expected

    def test_pr005_size_discipline(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PR005-hardcoded")
            + mark_lines(source, "PR005-missing")
            + mark_lines(source, "PR005-kind")
        )
        assert lines_for(findings, "PR005") == expected

    def test_no_other_pr_noise(self, linted):
        _, findings = linted
        for rule in ("PR001", "PR003", "PR004", "PR006"):
            assert not lines_for(findings, rule)


class TestUnhandledKindFixture:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("protocol_unhandled_kind.py")

    def test_pr001_unknown_kind(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PR001-send")
            + mark_lines(source, "PR001-compare")
        )
        assert lines_for(findings, "PR001") == expected

    def test_pr003_sent_never_handled(self, linted):
        source, findings = linted
        assert lines_for(findings, "PR003") == set(
            mark_lines(source, "PR003")
        )
        (f,) = [f for f in findings if f.rule == "PR003"]
        assert "done" in f.message

    def test_pr004_handled_never_sent(self, linted):
        source, findings = linted
        assert lines_for(findings, "PR004") == set(
            mark_lines(source, "PR004")
        )
        (f,) = [f for f in findings if f.rule == "PR004"]
        assert "shutdown" in f.message
        assert f.severity == "warning"


class TestStringlyFixture:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("protocol_stringly.py")

    def test_pr006_raw_kinds(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PR006-send")
            + mark_lines(source, "PR006-compare")
        )
        assert lines_for(findings, "PR006") == expected
        for f in findings:
            if f.rule == "PR006":
                assert "protocol.HEARTBEAT" in f.message

    def test_only_pr006_fires(self, linted):
        _, findings = linted
        assert {f.rule for f in findings} == {"PR006"}


class TestClosedWorld:
    def test_repo_is_protocol_clean(self):
        result = lint_paths([str(SRC)], select=PR_RULES)
        assert result.findings == []

    def test_partial_world_suppresses_cross_module_rules(self):
        # The dispatcher alone sends run_task/run_proxy/shutdown and
        # handles ready/done: judged in isolation it would light up
        # PR003/PR004.  A partial role set must never be a closed world.
        result = lint_paths(
            [str(SRC / "repro" / "core" / "dispatcher.py")],
            select=["PR003", "PR004"],
        )
        assert result.findings == []

    def test_complete_world_catches_vocabulary_drift(self):
        # Sanity-check the gate the other way: with all three role
        # modules present the channel worlds are actually judged.
        import ast

        from repro.analysis.framework import Module
        from repro.analysis.protocol_rules import _channel_worlds

        paths = [
            SRC / "repro" / "core" / "dispatcher.py",
            SRC / "repro" / "core" / "worker.py",
            SRC / "repro" / "mpi" / "hydra.py",
        ]
        modules = [
            Module(str(p), p.read_text(), ast.parse(p.read_text()))
            for p in paths
        ]
        worlds = dict(_channel_worlds(modules))
        assert set(worlds) == {"jets", "hydra"}

    def test_rules_registered(self):
        assert {r.id for r in rules_for(PR_RULES)} == set(PR_RULES)
