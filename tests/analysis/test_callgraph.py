"""Call-graph construction, hot-set reachability, and profile ingestion."""

from __future__ import annotations

import ast
import json

import pytest

from repro.analysis.callgraph import (
    CallGraph,
    load_profile,
    module_name_for,
)
from repro.analysis.framework import Module


def module_of(source: str, path: str = "mod.py") -> Module:
    return Module(path, source, ast.parse(source, filename=path))


def graph_of(*sources: str) -> CallGraph:
    modules = [
        module_of(src, f"mod{i}.py") for i, src in enumerate(sources)
    ]
    return CallGraph.build(modules)


class TestModuleNames:
    def test_src_anchored(self):
        assert (
            module_name_for("/x/src/repro/simkernel/core.py")
            == "repro.simkernel.core"
        )

    def test_repro_anchored(self):
        assert module_name_for("repro/core/jets.py") == "repro.core.jets"

    def test_init_drops_stem(self):
        assert module_name_for("/x/src/repro/obs/__init__.py") == "repro.obs"

    def test_bare_file_uses_stem(self):
        assert module_name_for("perf_hazards.py") == "perf_hazards"


class TestEdgeResolution:
    def test_same_module_function_call(self):
        g = graph_of("def helper():\n    pass\n\ndef main():\n    helper()\n")
        assert g.edges["mod0:main"]["mod0:helper"] == "call"

    def test_self_method_resolves_in_class(self):
        g = graph_of(
            "class A:\n"
            "    def f(self):\n"
            "        self.g()\n"
            "    def g(self):\n"
            "        pass\n"
        )
        assert g.edges["mod0:A.f"]["mod0:A.g"] == "method"

    def test_self_method_resolves_through_base(self):
        g = graph_of(
            "class Base:\n"
            "    def g(self):\n"
            "        pass\n"
            "class Child(Base):\n"
            "    def f(self):\n"
            "        self.g()\n"
        )
        assert g.edges["mod0:Child.f"]["mod0:Base.g"] == "method"

    def test_cross_module_cha_by_name(self):
        g = graph_of(
            "def drive(obj):\n    obj.handle()\n",
            "class Handler:\n    def handle(self):\n        pass\n",
        )
        assert g.edges["mod0:drive"]["mod1:Handler.handle"] == "cha"

    def test_builtin_method_names_skipped(self):
        g = graph_of(
            "def drive(q):\n    q.append(1)\n",
            "class Q:\n    def append(self, x):\n        pass\n",
        )
        assert "mod1:Q.append" not in g.edges.get("mod0:drive", {})

    def test_process_factory_edge(self):
        g = graph_of(
            "class Agent:\n"
            "    def start(self, env):\n"
            "        env.process(self._run())\n"
            "    def _run(self):\n"
            "        yield\n"
        )
        assert g.edges["mod0:Agent.start"]["mod0:Agent._run"] == "process"

    def test_constructor_edge_to_init(self):
        g = graph_of(
            "class Thing:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "def build():\n"
            "    return Thing()\n"
        )
        assert g.edges["mod0:build"]["mod0:Thing.__init__"] == "init"

    def test_module_level_call_has_synthetic_caller(self):
        g = graph_of("def f():\n    pass\n\nf()\n")
        assert g.edges["mod0:<module>"]["mod0:f"] == "call"


class TestHotSet:
    KERNEL = (
        "class Environment:\n"
        "    def step(self):\n"
        "        self._dispatch()\n"
        "    def _dispatch(self):\n"
        "        handle_event()\n"
        "def handle_event():\n"
        "    pass\n"
        "def cold_tool():\n"
        "    pass\n"
    )

    def test_reachable_closure(self):
        g = graph_of(self.KERNEL)
        hot = g.hot_set()
        assert "mod0:Environment.step" in hot
        assert "mod0:Environment._dispatch" in hot
        assert "mod0:handle_event" in hot
        assert "mod0:cold_tool" not in hot

    def test_cycles_terminate(self):
        g = graph_of(
            "class Environment:\n"
            "    def step(self):\n"
            "        ping()\n"
            "def ping():\n"
            "    pong()\n"
            "def pong():\n"
            "    ping()\n"
        )
        hot = g.hot_set()
        assert {"mod0:ping", "mod0:pong"} <= hot

    def test_callback_dispatched_from_step(self):
        g = graph_of(
            "class Environment:\n"
            "    def step(self):\n"
            "        pass\n"
            "def install(trace):\n"
            "    def on_record(rec):\n"
            "        pass\n"
            "    trace.subscribe(on_record)\n"
        )
        assert (
            g.edges["mod0:Environment.step"]["mod0:install.on_record"]
            == "dispatch"
        )
        assert "mod0:install.on_record" in g.hot_set()

    def test_no_environment_means_cold_callbacks(self):
        g = graph_of(
            "def install(trace):\n"
            "    def on_record(rec):\n"
            "        pass\n"
            "    trace.subscribe(on_record)\n"
        )
        assert "mod0:install.on_record" not in g.hot_set()

    def test_chain_explains_reachability(self):
        g = graph_of(self.KERNEL)
        chain = g.chain("mod0:handle_event")
        assert chain is not None
        ids = [fid for fid, _ in chain]
        assert ids[0] == "mod0:Environment.step"
        assert ids[-1] == "mod0:handle_event"
        assert chain[0][1] == "entry:Environment.step"

    def test_chain_of_root_is_itself(self):
        g = graph_of(self.KERNEL)
        assert g.chain("mod0:Environment.step") == [
            ("mod0:Environment.step", "entry:Environment.step")
        ]

    def test_chain_none_for_unreachable(self):
        g = graph_of(self.KERNEL)
        assert g.chain("mod0:cold_tool") is None

    def test_resolve_variants(self):
        g = graph_of(self.KERNEL)
        assert g.resolve("mod0:Environment.step") == ["mod0:Environment.step"]
        assert g.resolve("Environment.step") == ["mod0:Environment.step"]
        assert g.resolve("step") == ["mod0:Environment.step"]
        assert g.resolve("nope") == []


class TestProfile:
    def test_round_trip_and_union(self, tmp_path):
        doc = {
            "schema": 1,
            "kind": "profile",
            "workloads": {
                "event_churn": [
                    {"id": "mod0:cold_tool", "cumtime": 1.5},
                    {"id": "other:thing", "cumtime": 0.1},
                ],
            },
        }
        path = tmp_path / "BENCH_profile.json"
        path.write_text(json.dumps(doc))
        ids, loaded = load_profile(str(path))
        assert ids == {"mod0:cold_tool", "other:thing"}
        assert loaded["kind"] == "profile"

        g = graph_of(TestHotSet.KERNEL)
        hot = g.hot_set(ids)
        assert "mod0:cold_tool" in hot
        chain = g.chain("mod0:cold_tool", ids)
        assert chain == [("mod0:cold_tool", "profile")]

    def test_profile_suffix_match(self):
        g = graph_of(TestHotSet.KERNEL)
        matched = g.match_profile(["somewhere.else:cold_tool"])
        assert matched == {"mod0:cold_tool"}

    def test_rejects_non_profile_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"results": {}}))
        with pytest.raises(ValueError):
            load_profile(str(path))
