"""Seeded hot/cold performance hazards for the PF001-PF007 rules.

Loaded as *text* by the lint tests, never imported.  The ``# MARK:``
comments pin the expected finding lines.  ``Environment.step`` matches
the declared kernel entry patterns, so every function it reaches is on
the hot path — hazards there must surface as *errors* tagged
``[hot path]``; the module-level helpers at the bottom are unreachable
from any entry, so the same hazards there stay *warnings*.
"""

import heapq
from dataclasses import dataclass
from heapq import heappush as _push


@dataclass
class Record:
    """Slot-less dataclass: PF004's target when built in a loop."""

    job: str
    t: float


@dataclass(slots=True)
class SlottedRecord:
    """Slotted: instantiating this in a hot loop must stay clean."""

    job: str


class Environment:
    """Fixture kernel: ``step`` is an entry root, so this is hot."""

    def __init__(self, trace, workers):
        self.trace = trace
        self.workers = workers
        self.queue = []
        self.platform = None

    def step(self):
        workers = self.workers
        while self.queue:
            for view in list(workers):  # MARK: PF001-hot
                view.poll()
            total = sum([w.load for w in workers])  # MARK: PF001-reducer
            self._drain(total)

    def _drain(self, total):
        while self.queue:
            self.platform.trace.log("dispatch.a", {})  # MARK: PF002-hot
            self.platform.trace.log("dispatch.b", {})
            self.trace.log("ev", {"msg": f"drained {total}"})  # MARK: PF003-hot
            rec = Record("job", 0.0)  # MARK: PF004-hot
            ok = SlottedRecord("job")  # slotted: must stay clean
            heapq.heappush(self.queue, (total, rec))  # MARK: PF007-hot
            self.queue.pop()
            try:  # MARK: PF005-hot
                self._place(rec, ok)
            except KeyError:
                break

    def _place(self, rec, ok):
        active = [w.job for w in self.workers]
        while self.queue:
            if rec.job in active:  # MARK: PF006-hot
                return
            self.queue.pop()

    def _guarded_recv(self, sock):
        # try-around-yield in a hot loop is the sanctioned cancellation
        # idiom: PF005 must stay quiet here.
        while True:
            try:
                msg = yield sock.recv()
            except ConnectionError:
                break
            self.queue.append(msg)


# -- cold: same hazards, unreachable from any entry -> warnings ----------


def cold_copy_loop(jobs, names):
    out = []
    for job in jobs:
        out.append(tuple(names))  # MARK: PF001-cold
    return out


def cold_attr_loop(ctx):
    for _ in range(3):
        ctx.stats.counters.add(1)  # MARK: PF002-cold
        ctx.stats.counters.add(2)


def cold_trace_format(trace, status):
    trace.log("job.done", {"msg": "done: %s" % status})  # MARK: PF003-cold


def cold_records(rows):
    out = []
    for row in rows:
        out.append(Record(row, 0.0))  # MARK: PF004-cold
    return out


def cold_retry(items):
    # Cold try-per-item is the normal recovery idiom; PF005 is scoped
    # to hot functions and must not fire anywhere in this function.
    for item in items:
        try:
            item.execute()
        except ValueError:
            pass


def cold_heap_schedule(pending, job):
    # A private time-ordered heap outside the kernel scheduler; the
    # aliased `from heapq import heappush as _push` form must be
    # tracked just like the attribute form.
    _push(pending, (job.t, job))  # MARK: PF007-cold
    return heapq.heappop(pending)  # MARK: PF007-cold


def cold_membership(jobs):
    seen = list(jobs)
    for job in jobs:
        if job in seen:  # MARK: PF006-cold
            continue
    return seen
