"""Lint fixture: seeded trace-schema violations (TR001-TR004).

Loaded as *text* by the analysis tests — never imported.  Each violation
line carries a ``MARK:`` comment the tests use to locate it, so the
assertions survive edits to this file.
"""


class Thing:
    def __init__(self, trace):
        self.trace = trace

    def ok(self):
        self.trace.log("job.queued", {"job": "job0", "attempt": 1})

    def typo_category(self):
        self.trace.log("job.qeued", {"job": "job0"})  # MARK: TR001

    def missing_key(self):
        self.trace.log("fault.kill", {})  # MARK: TR002

    def no_payload_at_all(self):
        self.trace.log("fault.kill")  # MARK: TR002-nopayload

    def extra_key(self):
        self.trace.log(
            "job.queued", {"job": "j", "attempt": 1, "vibe": 1}  # MARK: TR003
        )

    def dynamic(self, state):
        self.trace.log(f"worker.{state}", {"worker": 1})  # MARK: TR004

    def concatenated(self, state):
        self.trace.log("worker." + state, {"worker": 1})  # MARK: TR004-concat

    def branched_ok(self, ok):
        # A conditional between two literal categories is fine.
        self.trace.log(
            "job.done" if ok else "job.failed",
            {
                "job": "j",
                "attempt": 1,
                "nodes": 1,
                "ppn": 1,
                "duration_hint": 0.0,
                "nominal": 0.0,
            },
        )

    def suppressed(self, state):
        self.trace.log(f"worker.{state}", {"worker": 1})  # repro: noqa[TR004,PF003]

    def suppressed_bare(self, state):
        self.trace.log(f"worker.{state}", {"worker": 1})  # repro: noqa

    def wrong_rule_suppressed(self, state):
        self.trace.log(f"worker.{state}", {"worker": 1})  # repro: noqa[TR001]  # MARK: TR004-wrongnoqa
