"""Lint fixture: seeded simulation-kernel misuse (SK001-SK003).

Loaded as text by the analysis tests — never imported.
"""


def not_a_generator(env):
    env.timeout(1.0)


def proper_process(env):
    yield env.timeout(1.0)


def spawn(env):
    env.process(not_a_generator(env))  # MARK: SK001
    env.process(proper_process(env))  # fine


def reentrant(env):
    yield env.timeout(1.0)
    env.run()  # MARK: SK002
    yield env.timeout(1.0)


def stepper(env):
    yield env.timeout(0.5)
    env.step()  # MARK: SK002-step


def double_fire(env):
    ev = env.event()
    ev.succeed(1)
    ev.succeed(2)  # MARK: SK003
    ev2 = env.event()
    ev2.succeed()
    ev2 = env.event()  # rebound: the next succeed is a fresh event
    ev2.succeed()
    ev3 = env.event()
    ev3.succeed()
    ev3.fail(RuntimeError("boom"))  # MARK: SK003-fail
