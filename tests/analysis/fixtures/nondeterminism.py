"""Lint fixture: seeded determinism violations (DT001-DT004).

Loaded as text by the analysis tests — never imported.
"""

import datetime
import random
import time
from datetime import datetime as dt
from random import random as rnd
from time import monotonic

import numpy as np


def wall_clock():
    a = time.time()  # MARK: DT001
    b = monotonic()  # MARK: DT001-imported
    c = datetime.datetime.now()  # MARK: DT001-datetime
    d = dt.utcnow()  # MARK: DT001-aliased
    time.sleep(0.1)  # MARK: DT001-sleep
    return a, b, c, d


def global_random():
    x = random.random()  # MARK: DT002
    y = rnd()  # MARK: DT002-imported
    return x, y


def numpy_random():
    rng = np.random.default_rng()  # MARK: DT003
    good = np.random.default_rng(42)  # seeded: fine
    z = np.random.rand(3)  # MARK: DT003-global
    return rng, good, z


def set_order(items):
    for x in {1, 2, 3}:  # MARK: DT004
        print(x)
    ys = [y for y in set(items)]  # MARK: DT004-comprehension
    return ys


def suppressed():
    return time.time()  # repro: noqa[DT001]


def fine(clock):
    # Simulated time through the kernel is the sanctioned clock.
    return clock.now
