"""Lint fixture: seeded protocol arity/size violations (PR002, PR005).

Loaded as *text* by the analysis tests — never imported.  Each violation
line carries a ``MARK:`` comment the tests use to locate it.  The send
and handle kind sets are kept identical so the standalone PR003/PR004
closed-world checks stay quiet.
"""

from repro.analysis import protocol as wire


class BadSender:
    def __init__(self, sock, ctrl):
        self.sock = sock
        self.ctrl = ctrl

    def ok_send(self):
        yield self.sock.send(
            (wire.READY, 7), wire.wire_size(wire.CHANNEL_JETS, wire.READY)
        )

    def short_done(self):
        yield self.sock.send((wire.DONE, 7, "job0"), wire.wire_size(wire.CHANNEL_JETS, wire.DONE))  # MARK: PR002-send

    def hard_coded_size(self):
        yield self.sock.send((wire.HEARTBEAT, 7), 32)  # MARK: PR005-hardcoded

    def missing_size(self):
        yield self.sock.send((wire.DONE, 7, "job0", 0, None))  # MARK: PR005-missing

    def size_of_other_kind(self):
        yield self.sock.send((wire.READY, 7), wire.wire_size(wire.CHANNEL_JETS, wire.HEARTBEAT))  # MARK: PR005-kind


class BadReceiver:
    def handle(self, msg):
        kind = msg.payload[0]
        if kind == wire.DONE:
            _, worker, job = msg.payload  # MARK: PR002-unpack
        elif kind == wire.READY:
            _, worker = msg.payload
        elif kind == wire.HEARTBEAT:
            pass
