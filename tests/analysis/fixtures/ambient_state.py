"""Lint fixture: ambient-state hazards (DT005).

Loaded as text by the analysis tests — never imported.
"""

import os
import time
from os import environ, getenv
from time import perf_counter


def env_seed():
    a = os.environ.get("JETS_SEED", "0")  # MARK: DT005
    b = os.environ["JETS_SEED"]  # MARK: DT005-subscript
    c = os.getenv("JETS_DEBUG")  # MARK: DT005-getenv
    d = environ.get("HOME")  # MARK: DT005-imported
    e = getenv("JETS_TRACE")  # MARK: DT005-fromimport
    return a, b, c, d, e


def clock_refs():
    clock = time.monotonic  # MARK: DT005-bareref
    timer = perf_counter  # MARK: DT005-barename
    return clock, timer


def suppressed():
    return os.environ.get("JETS_BENCH_SPILL")  # repro: noqa[DT005]


def explicit_ok(seed, clock):
    # Configuration threaded as arguments: the sanctioned shape.
    return seed, clock()
