"""Lint fixture: seeded one-sided protocol vocabulary (PR001, PR003, PR004).

Loaded as *text* by the analysis tests — never imported.  The module
models both sides of a private channel (sends *and* handle sites), so
the closed-world rules judge it standalone.
"""

from repro.analysis import protocol as wire


class OneSidedSender:
    def __init__(self, sock):
        self.sock = sock

    def announce(self):
        yield self.sock.send(
            (wire.READY, 3), wire.wire_size(wire.CHANNEL_JETS, wire.READY)
        )

    def report(self):
        yield self.sock.send((wire.DONE, 3, "job0", 0, None), wire.wire_size(wire.CHANNEL_JETS, wire.DONE))  # MARK: PR003

    def misspelled(self):
        yield self.sock.send(("redy", 3), 64)  # MARK: PR001-send


class OneSidedReceiver:
    def handle(self, msg):
        kind = msg.payload[0]
        if kind == wire.READY:
            return True
        if kind == "redy":  # MARK: PR001-compare
            return True
        if kind == wire.SHUTDOWN:  # MARK: PR004
            return False
        return False
