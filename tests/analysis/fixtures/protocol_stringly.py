"""Lint fixture: seeded stringly-typed message kinds (PR006).

Loaded as *text* by the analysis tests — never imported.  Everything is
protocol-consistent except that known kinds are spelled as raw string
literals instead of the registry constants.
"""

from repro.analysis import protocol as wire


class StringlySender:
    def __init__(self, sock):
        self.sock = sock

    def ok(self):
        yield self.sock.send(
            (wire.HEARTBEAT, 1),
            wire.wire_size(wire.CHANNEL_JETS, wire.HEARTBEAT),
        )

    def raw_head(self):
        yield self.sock.send(("heartbeat", 1), wire.wire_size(wire.CHANNEL_JETS, wire.HEARTBEAT))  # MARK: PR006-send


class StringlyReceiver:
    def handle(self, msg):
        if msg.payload[0] == "heartbeat":  # MARK: PR006-compare
            return True
        return False
