"""Lint fixture: happens-before and RNG-sharing hazards (HB*/RS*).

Loaded as text by the analysis tests — never imported.
"""


def run_one(env, name):
    yield env.timeout(1.0)


class Tally:
    """Two callback methods read-modify-write one attribute."""

    def __init__(self, env, trace):
        self.env = env
        self.trace = trace
        self.total = 0
        env.process(self.producer())
        env.process(self.consumer())

    def producer(self):
        yield self.env.timeout(1.0)
        self.total += 1  # MARK: HB001

    def consumer(self):
        yield self.env.timeout(1.0)
        self.total += 1


class Ordered:
    """Writes from one callback only: no finding."""

    def __init__(self, env):
        self.env = env
        self.value = 0
        env.process(self.only_writer())

    def only_writer(self):
        yield self.env.timeout(1.0)
        self.value = 1
        self.value += 1


def closure_race(env):
    shared = {}

    def writer_a():
        yield env.timeout(1.0)
        shared["x"] = 1  # MARK: HB001-closure

    def writer_b():
        yield env.timeout(1.0)
        shared["x"] = 2

    def reader():
        yield env.timeout(2.0)
        return shared["x"]

    env.process(writer_a())
    env.process(writer_b())
    env.process(reader())


def closure_local_ok(env):
    def worker():
        local = {}
        yield env.timeout(1.0)
        local["x"] = 1  # local dict: not shared

    env.process(worker())


def loop_capture(env, jobs, done):
    for job in jobs:
        done.callbacks.append(lambda ev: print(job))  # MARK: HB002


def loop_capture_def(env, jobs, results):
    for job in jobs:
        def finish(ev):  # MARK: HB002-def
            results.append(job)

        done = env.event()
        done.callbacks.append(finish)


def loop_bound_ok(env, jobs, done):
    for job in jobs:
        done.callbacks.append(lambda ev, job=job: print(job))  # bound: fine


class WorkerA:
    def run(self, rng):
        return rng.stream("jitter").random()  # MARK: RS001


class WorkerB:
    def run(self, rng):
        return rng.stream("jitter").random()  # MARK: RS001


def distinct_stream_ok(rng, name):
    return rng.stream(f"jitter-{name}").random()  # per-entity: fine


def schedule_from_set(env, names):
    ready = {n for n in names}
    for name in ready:  # MARK: RS002-resolved
        env.process(run_one(env, name))


def schedule_from_set_literal(env):
    for name in {"a", "b"}:  # MARK: RS002
        env.process(run_one(env, name))


def schedule_sorted_ok(env, names):
    ready = set(names)
    for name in sorted(ready):
        env.process(run_one(env, name))


def iterate_without_schedule_ok(names):
    seen = []
    for name in sorted(set(names)):
        seen.append(name)
    return seen
