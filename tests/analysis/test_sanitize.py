"""The jets sanitize / jets lint CLI surfaces (exit codes and formats)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import lint_main, rule_catalog, sanitize_main
from repro.analysis.framework import all_rules

FIXTURES = Path(__file__).parent / "fixtures"
DIRTY = str(FIXTURES / "nondeterminism.py")


class TestSanitizeFixture:
    def test_self_test_passes(self, capsys):
        assert sanitize_main(["--fixture", "--schedules", "6"]) == 0
        out = capsys.readouterr().out
        assert "candidate:" in out
        assert "outcome-changing" in out
        assert "fixture ok" in out


class TestSanitizeStatic:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        rc = sanitize_main([str(tmp_path), "--static-only"])
        assert rc == 0
        assert "jets sanitize: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        rc = sanitize_main([DIRTY, "--static-only"])
        assert rc == 1
        assert "static layer" in capsys.readouterr().out

    def test_mutually_exclusive_layers_exit_two(self, capsys):
        rc = sanitize_main(["--static-only", "--dynamic-only"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err


@pytest.mark.slow
class TestSanitizeDynamic:
    def test_control_plane_clean(self, capsys):
        rc = sanitize_main(["--dynamic-only", "--schedules", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dynamic layer — 1 schedules, 0 race candidate(s)" in out
        assert "jets sanitize: clean" in out


class TestLintJson:
    def test_document_shape_and_exit(self, capsys):
        rc = lint_main([DIRTY, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["files"] == 1
        assert doc["errors"] == []
        assert doc["findings"]
        keys = {
            "path", "line", "col", "rule", "severity", "message",
            "hot_path",
        }
        assert all(set(f) == keys for f in doc["findings"])

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        rc = lint_main([str(clean), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["findings"] == []

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        rc = lint_main([str(bad), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert doc["errors"] and "syntax error" in doc["errors"][0]


class TestLintSelectIgnore:
    def test_select_restricts_rules(self, capsys):
        lint_main([DIRTY, "--select", "DT001", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in doc["findings"]} == {"DT001"}

    def test_ignore_drops_rule(self, capsys):
        lint_main([DIRTY, "--ignore", "DT001", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        found = {f["rule"] for f in doc["findings"]}
        assert found and "DT001" not in found

    def test_select_and_ignore_compose(self, capsys):
        lint_main(
            [DIRTY, "--select", "DT001,DT002", "--ignore", "DT002",
             "--format", "json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in doc["findings"]} <= {"DT001"}

    def test_unknown_select_exits_two(self, capsys):
        rc = lint_main([DIRTY, "--select", "ZZ999"])
        assert rc == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_unknown_ignore_exits_two(self, capsys):
        rc = lint_main([DIRTY, "--ignore", "ZZ999"])
        assert rc == 2
        assert "unknown rule ids" in capsys.readouterr().err


class TestExplainAndCatalog:
    def test_explain_known_rule(self, capsys):
        assert lint_main(["--explain", "dt001"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("DT001 [")
        assert "flagged:" in out and "fixed:" in out

    def test_explain_unknown_rule(self, capsys):
        assert lint_main(["--explain", "ZZ999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_catalog_lists_every_rule(self, capsys):
        assert lint_main(["--catalog"]) == 0
        out = capsys.readouterr().out
        assert "| Rule | Severity | Checks |" in out
        for cls in all_rules():
            assert f"| {cls.id} |" in out

    def test_catalog_table_shape(self):
        lines = rule_catalog().splitlines()
        assert len(lines) == 2 + len(all_rules())
        assert all(line.startswith("| ") for line in lines)

    def test_readme_catalog_in_sync(self):
        readme = (
            Path(__file__).resolve().parents[2] / "README.md"
        ).read_text()
        start = readme.index("<!-- rule-catalog:start -->")
        end = readme.index("<!-- rule-catalog:end -->")
        embedded = readme[start:end].split("-->", 1)[1].strip()
        assert embedded == rule_catalog(), (
            "README rule catalog is stale — regenerate with "
            "`jets lint --catalog`"
        )
