"""The HB*/RS* race rules and DT005 against their seeded fixtures."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.framework import Dataflow

from .test_static_rules import lines_for, lint_fixture, mark_lines


class TestRaceRules:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("race_hazards.py")

    def test_hb001_attribute_writes(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "HB001")
            + mark_lines(source, "HB001-closure")
        )
        assert lines_for(findings, "HB001") == expected

    def test_hb001_names_both_callbacks(self, linted):
        _, findings = linted
        messages = [f.message for f in findings if f.rule == "HB001"]
        attr = [m for m in messages if "'total'" in m]
        assert attr and "consumer" in attr[0] and "producer" in attr[0]

    def test_hb001_single_writer_clean(self, linted):
        source, findings = linted
        start = source.splitlines().index("class Ordered:") + 1
        hb = lines_for(findings, "HB001")
        assert not [ln for ln in hb if start < ln <= start + 12]

    def test_hb002_loop_captures(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "HB002") + mark_lines(source, "HB002-def")
        )
        assert lines_for(findings, "HB002") == expected

    def test_hb002_bound_default_clean(self, linted):
        source, findings = linted
        bound = [
            i for i, line in enumerate(source.splitlines(), 1)
            if "job=job" in line
        ]
        assert bound and not [
            f for f in findings if f.rule == "HB002" and f.line in bound
        ]

    def test_rs001_stream_aliasing(self, linted):
        source, findings = linted
        assert lines_for(findings, "RS001") == set(
            mark_lines(source, "RS001")
        )

    def test_rs001_fstring_stream_clean(self, linted):
        source, findings = linted
        distinct = [
            i for i, line in enumerate(source.splitlines(), 1)
            if "jitter-{name}" in line
        ]
        assert distinct and not [
            f for f in findings if f.rule == "RS001" and f.line in distinct
        ]

    def test_rs002_set_into_schedule(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "RS002")
            + mark_lines(source, "RS002-resolved")
        )
        assert lines_for(findings, "RS002") == expected

    def test_rs002_sorted_and_unscheduled_clean(self, linted):
        source, findings = linted
        lines = source.splitlines()
        ok_start = lines.index("def schedule_sorted_ok(env, names):") + 1
        assert not [
            f for f in findings
            if f.rule == "RS002" and f.line > ok_start
        ]

    def test_rs002_mentions_binding_site(self, linted):
        source, findings = linted
        (resolved_line,) = mark_lines(source, "RS002-resolved")
        (f,) = [
            f for f in findings
            if f.rule == "RS002" and f.line == resolved_line
        ]
        assert "bound to a set at line" in f.message


class TestAmbientState:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("ambient_state.py")

    def test_dt005_environ_reads(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "DT005")
            + mark_lines(source, "DT005-subscript")
            + mark_lines(source, "DT005-getenv")
            + mark_lines(source, "DT005-imported")
            + mark_lines(source, "DT005-fromimport")
            + mark_lines(source, "DT005-bareref")
            + mark_lines(source, "DT005-barename")
        )
        assert lines_for(findings, "DT005") == expected

    def test_dt005_is_warning(self, linted):
        _, findings = linted
        dt005 = [f for f in findings if f.rule == "DT005"]
        assert dt005 and all(f.severity == "warning" for f in dt005)

    def test_noqa_suppresses_dt005(self, linted):
        source, findings = linted
        noqa = [
            i for i, line in enumerate(source.splitlines(), 1)
            if "noqa[DT005]" in line
        ]
        assert noqa and not [f for f in findings if f.line in noqa]

    def test_explicit_argument_shape_clean(self, linted):
        source, findings = linted
        start = source.splitlines().index(
            "def explicit_ok(seed, clock):"
        ) + 1
        assert not [f for f in findings if f.line > start]


def test_dt001_flags_sleep():
    source, findings = lint_fixture("nondeterminism.py")
    sleep_lines = set(mark_lines(source, "DT001-sleep"))
    assert sleep_lines and sleep_lines <= lines_for(findings, "DT001")


class TestDataflow:
    def test_callback_detection_process_and_registrations(self):
        tree = ast.parse(
            "def gen(env):\n"
            "    yield env.timeout(1)\n"
            "def plain():\n"
            "    pass\n"
            "def on_record(rec):\n"
            "    pass\n"
            "def handler(ev):\n"
            "    pass\n"
            "def main(env, trace, done):\n"
            "    env.process(gen(env))\n"
            "    trace.subscribe(on_record)\n"
            "    done.callbacks.append(handler)\n"
        )
        df = Dataflow(tree)
        names = {getattr(n, "name", "?") for n in df.callbacks}
        assert names == {"gen", "on_record", "handler"}

    def test_self_method_callback_resolution(self):
        tree = ast.parse(
            "class Agent:\n"
            "    def start(self, env):\n"
            "        env.process(self.run())\n"
            "    def run(self):\n"
            "        yield 1\n"
            "    def helper(self):\n"
            "        pass\n"
        )
        df = Dataflow(tree)
        names = {getattr(n, "name", "?") for n in df.callbacks}
        assert names == {"run"}

    def test_def_use_chains(self):
        tree = ast.parse(
            "x = 1\n"
            "def f():\n"
            "    y = x + 1\n"
            "    return y\n"
        )
        df = Dataflow(tree)
        func = tree.body[1]
        assert df.defs(tree, "x") and not df.defs(func, "x")
        assert df.defs(func, "y")
        use = df.uses(func, "x")
        assert use and df.reaching_defs(use[0], "x") == df.defs(tree, "x")

    def test_scope_and_class_resolution(self):
        tree = ast.parse(
            "class C:\n"
            "    def m(self):\n"
            "        z = 1\n"
            "        return z\n"
        )
        df = Dataflow(tree)
        cls = tree.body[0]
        method = cls.body[0]
        assign = method.body[0]
        assert df.scope_of(assign) is method
        assert df.class_of(assign) is cls
        assert df.class_of(tree) is None
