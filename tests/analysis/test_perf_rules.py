"""The PF001-PF007 hot-path perf rules against their seeded fixture.

``perf_hazards.py`` plants every pattern twice: once reachable from its
fixture ``Environment.step`` (hot → error, ``[hot path]`` tag) and once
in module-level helpers no entry reaches (cold → warning).
"""

from __future__ import annotations

import pytest

from repro.analysis.perf_rules import set_hot_profile

from .test_static_rules import lines_for, lint_fixture, mark_lines

PF_RULES = ["PF001", "PF002", "PF003", "PF004", "PF005", "PF006", "PF007"]


def severities_at(findings, rule, lines):
    return {f.severity for f in findings if f.rule == rule and f.line in lines}


class TestPerfRules:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("perf_hazards.py", select=PF_RULES)

    # -- each rule fires exactly on its seeded lines -----------------------

    def test_pf001_lines(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PF001-hot")
            + mark_lines(source, "PF001-reducer")
            + mark_lines(source, "PF001-cold")
        )
        assert lines_for(findings, "PF001") == expected

    def test_pf002_lines(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PF002-hot") + mark_lines(source, "PF002-cold")
        )
        assert lines_for(findings, "PF002") == expected

    def test_pf003_lines(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PF003-hot") + mark_lines(source, "PF003-cold")
        )
        assert lines_for(findings, "PF003") == expected

    def test_pf004_lines(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PF004-hot") + mark_lines(source, "PF004-cold")
        )
        assert lines_for(findings, "PF004") == expected

    def test_pf005_hot_only(self, linted):
        source, findings = linted
        # Fires on the hot try, not on cold_retry nor on the
        # try-around-yield in _guarded_recv.
        assert lines_for(findings, "PF005") == set(
            mark_lines(source, "PF005-hot")
        )

    def test_pf006_lines(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PF006-hot") + mark_lines(source, "PF006-cold")
        )
        assert lines_for(findings, "PF006") == expected

    def test_pf007_lines(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "PF007-hot") + mark_lines(source, "PF007-cold")
        )
        assert lines_for(findings, "PF007") == expected

    def test_pf007_tuple_entry_called_out(self, linted):
        source, findings = linted
        tuple_pushes = set(
            mark_lines(source, "PF007-hot")
            + mark_lines(source, "PF007-cold")[:1]  # the _push line
        )
        for f in findings:
            if f.rule != "PF007":
                continue
            assert ("tuple entry" in f.message) == (f.line in tuple_pushes)

    # -- severity escalation on the hot path -------------------------------

    @pytest.mark.parametrize(
        "rule,hot_mark,cold_mark",
        [
            ("PF001", "PF001-hot", "PF001-cold"),
            ("PF002", "PF002-hot", "PF002-cold"),
            ("PF003", "PF003-hot", "PF003-cold"),
            ("PF004", "PF004-hot", "PF004-cold"),
            ("PF006", "PF006-hot", "PF006-cold"),
            ("PF007", "PF007-hot", "PF007-cold"),
        ],
    )
    def test_hot_error_cold_warning(self, linted, rule, hot_mark, cold_mark):
        source, findings = linted
        hot_lines = set(mark_lines(source, hot_mark))
        cold_lines = set(mark_lines(source, cold_mark))
        assert severities_at(findings, rule, hot_lines) == {"error"}
        assert severities_at(findings, rule, cold_lines) == {"warning"}

    def test_hot_findings_tagged(self, linted):
        _, findings = linted
        for f in findings:
            assert f.hot == (f.severity == "error")
            assert f.hot == f.message.endswith("[hot path]")

    def test_slotted_dataclass_clean(self, linted):
        source, findings = linted
        slotted = [
            i for i, line in enumerate(source.splitlines(), 1)
            if "SlottedRecord(" in line
        ]
        assert slotted
        assert not lines_for(findings, "PF004") & set(slotted)

    # -- measured profile widens the hot set -------------------------------

    def test_hot_profile_escalates_cold_function(self):
        set_hot_profile(["perf_hazards:cold_attr_loop"])
        try:
            source, findings = lint_fixture("perf_hazards.py", select=PF_RULES)
        finally:
            set_hot_profile(None)
        cold = set(mark_lines(source, "PF002-cold"))
        assert severities_at(findings, "PF002", cold) == {"error"}
        # Other cold functions stay warnings.
        assert severities_at(
            findings, "PF003", set(mark_lines(source, "PF003-cold"))
        ) == {"warning"}
