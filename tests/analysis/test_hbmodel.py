"""Dynamic happens-before layer: provenance hook, vector clocks, digest."""

from __future__ import annotations

import pytest

from repro.analysis.explore import ExploreConfig, run_schedule
from repro.analysis.hbmodel import HappensBeforeChecker, seeded_race_demo
from repro.obs.export import CanonicalDigest
from repro.simkernel import Environment, SeededOrder, Trace
from repro.simkernel.monitor import TraceRecord


class TestProvenanceHook:
    def test_hook_sees_cause_event_pairs(self):
        env = Environment()
        edges = []
        env.set_provenance(
            lambda cause, event, when: edges.append((cause, event, when))
        )

        def child(env):
            yield env.timeout(1.0)

        def parent(env):
            yield env.timeout(1.0)
            env.process(child(env))

        env.process(parent(env))
        env.run()
        # Every scheduled event is reported; the child process's initial
        # event must carry a cause from inside parent's delivery chain.
        assert edges and all(len(e) == 3 for e in edges)
        causes = [c for c, _, _ in edges]
        assert any(c is None for c in causes)  # root scheduling
        assert any(c is not None for c in causes)  # chained scheduling

    def test_hook_install_and_clear_restores_fast_path(self):
        env = Environment()
        assert env._fast
        env.set_provenance(lambda *a: None)
        assert not env._fast
        env.set_provenance(None)
        assert env._fast

    def test_fast_path_stays_off_with_order_installed(self):
        env = Environment(order=SeededOrder(3))
        assert not env._fast
        env.set_provenance(lambda *a: None)
        env.set_provenance(None)
        assert not env._fast

    def test_cause_cleared_between_runs(self):
        env = Environment()
        env.set_provenance(lambda *a: None)

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert env._cause is None


class TestHappensBeforeChecker:
    def test_demo_race_detected(self):
        _, _, checker = seeded_race_demo(checker=True)
        candidates = checker.finish()
        assert len(candidates) == 1
        (cand,) = candidates
        assert cand.family == "counter"
        assert cand.entity == "shared"
        assert cand.time == 1.0
        assert "unordered" in cand.render()

    def test_demo_outcome_flips_under_permutation(self):
        finals = set()
        for seed in range(8):
            order = SeededOrder(seed) if seed else None
            _, trace, _ = seeded_race_demo(order=order)
            (final,) = [
                r for r in trace.records if r.category == "counter.final"
            ]
            finals.add(final.data["value"])
        assert finals == {1, 2}

    def test_ordered_chain_not_flagged(self):
        env = Environment()
        trace = Trace(env)
        checker = HappensBeforeChecker(env).attach(trace)

        def first(env):
            yield env.timeout(1.0)
            trace.log("counter.a", {"counter": "c", "value": 1})
            # Scheduling second from inside first's delivery creates a
            # provenance edge, so second's same-entity access is ordered
            # even though it lands at the same timestamp.
            env.process(second(env))

        def second(env):
            trace.log("counter.b", {"counter": "c", "value": 2})
            yield env.timeout(0.1)

        env.process(first(env))
        env.run()
        assert checker.finish() == []

    def test_different_timestamps_not_flagged(self):
        env = Environment()
        trace = Trace(env)
        checker = HappensBeforeChecker(env).attach(trace)

        def writer(env, at, value):
            yield env.timeout(at)
            trace.log("counter.w", {"counter": "c", "value": value})

        env.process(writer(env, 1.0, 1))
        env.process(writer(env, 2.0, 2))
        env.run()
        assert checker.finish() == []

    def test_candidates_deduplicate_and_count(self):
        env = Environment()
        trace = Trace(env)
        checker = HappensBeforeChecker(env).attach(trace)

        def writer(env, value):
            yield env.timeout(1.0)
            trace.log("counter.w", {"counter": "c", "value": value})

        for value in range(3):
            env.process(writer(env, value))
        env.run()
        candidates = checker.finish()
        assert len(candidates) == 1
        assert candidates[0].count == 2  # three unordered writers

    def test_detach_restores_kernel_state(self):
        env = Environment()
        trace = Trace(env)
        checker = HappensBeforeChecker(env).attach(trace)
        assert not env._fast
        checker.detach()
        assert env._fast
        assert not trace._subscribers


class TestCanonicalDigest:
    def _records(self, *specs):
        return [TraceRecord(t, cat, data) for t, cat, data in specs]

    def _digest(self, records):
        d = CanonicalDigest()
        for rec in records:
            d.feed(rec)
        return d.hexdigest()

    def test_same_timestamp_order_insensitive(self):
        a = self._records(
            (1.0, "counter.x", {"counter": "x", "value": 1}),
            (1.0, "counter.y", {"counter": "y", "value": 2}),
            (2.0, "counter.z", {"counter": "z", "value": 3}),
        )
        b = [a[1], a[0], a[2]]
        assert self._digest(a) == self._digest(b)

    def test_cross_timestamp_order_sensitive(self):
        a = self._records(
            (1.0, "counter.x", {"counter": "x", "value": 1}),
            (2.0, "counter.y", {"counter": "y", "value": 2}),
        )
        b = self._records(
            (1.0, "counter.y", {"counter": "y", "value": 2}),
            (2.0, "counter.x", {"counter": "x", "value": 1}),
        )
        assert self._digest(a) != self._digest(b)

    def test_payload_change_changes_digest(self):
        a = self._records((1.0, "counter.x", {"counter": "x", "value": 1}))
        b = self._records((1.0, "counter.x", {"counter": "x", "value": 2}))
        assert self._digest(a) != self._digest(b)


@pytest.mark.slow
class TestExploreIntegration:
    CONFIG = ExploreConfig(
        schedules=2, faults=False, serial_tasks=2, mpi_tasks=1
    )

    def test_checker_rides_schedule_without_perturbing_it(self):
        plain = run_schedule(self.CONFIG, 0)
        checkers = []

        def attach(env, platform):
            checkers.append(
                HappensBeforeChecker(env).attach(
                    platform.trace, platform.network
                )
            )

        observed = run_schedule(self.CONFIG, 0, attach=attach)
        assert plain.ok and observed.ok
        # Observation-only: the digest (and thus the whole trace) is
        # identical with the checker attached.
        assert plain.digest == observed.digest
        assert checkers and checkers[0].records > 0

    def test_control_plane_has_no_race_candidates(self):
        candidates = []

        def attach(env, platform):
            checker = HappensBeforeChecker(env).attach(
                platform.trace, platform.network
            )
            candidates.append(checker)

        for index in range(2):
            result = run_schedule(self.CONFIG, index, attach=attach)
            assert result.ok, result.problems
        assert all(not c.finish() for c in candidates)

    def test_digest_populated_per_schedule(self):
        result = run_schedule(self.CONFIG, 0)
        assert len(result.digest) == 64
