"""The static rule sets against fixture modules with seeded violations."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.analysis.framework import rules_for

FIXTURES = Path(__file__).parent / "fixtures"


def mark_lines(source: str, mark: str) -> list[int]:
    """1-based line numbers carrying ``# MARK: <mark>`` comments."""
    return [
        i
        for i, line in enumerate(source.splitlines(), 1)
        if f"# MARK: {mark}" in line and line.split("# MARK:")[0].strip()
    ]


def lint_fixture(name: str, select=None):
    source = (FIXTURES / name).read_text()
    return source, lint_source(
        source, path=name, rules=rules_for(select) if select else None
    )


def lines_for(findings, rule: str) -> set[int]:
    return {f.line for f in findings if f.rule == rule}


class TestTraceRules:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("bad_trace_logging.py")

    def test_tr001_unknown_category(self, linted):
        source, findings = linted
        assert lines_for(findings, "TR001") == set(mark_lines(source, "TR001"))
        (f,) = [f for f in findings if f.rule == "TR001"]
        assert "job.qeued" in f.message
        assert f.severity == "error"

    def test_tr002_missing_key(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "TR002") + mark_lines(source, "TR002-nopayload")
        )
        assert lines_for(findings, "TR002") == expected

    def test_tr003_extra_key(self, linted):
        source, findings = linted
        assert lines_for(findings, "TR003") == set(mark_lines(source, "TR003"))
        (f,) = [f for f in findings if f.rule == "TR003"]
        assert "vibe" in f.message

    def test_tr004_dynamic_category(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "TR004")
            + mark_lines(source, "TR004-concat")
            + mark_lines(source, "TR004-wrongnoqa")
        )
        assert lines_for(findings, "TR004") == expected

    def test_branched_literal_category_is_clean(self, linted):
        source, findings = linted
        start = source.splitlines().index("    def branched_ok(self, ok):") + 1
        assert not [f for f in findings if start < f.line <= start + 14]

    def test_noqa_suppresses_only_matching_rule(self, linted):
        source, findings = linted
        suppressed = [
            i
            for i, line in enumerate(source.splitlines(), 1)
            if "noqa[TR004]" in line or "# repro: noqa" == line.split("#", 1)[-1].strip()
        ]
        for line in suppressed:
            assert not [f for f in findings if f.line == line]


class TestDeterminismRules:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("nondeterminism.py")

    def test_dt001_wall_clock(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "DT001")
            + mark_lines(source, "DT001-imported")
            + mark_lines(source, "DT001-datetime")
            + mark_lines(source, "DT001-aliased")
        )
        assert lines_for(findings, "DT001") == expected

    def test_dt002_global_random(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "DT002") + mark_lines(source, "DT002-imported")
        )
        assert lines_for(findings, "DT002") == expected

    def test_dt003_unseeded_numpy(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "DT003") + mark_lines(source, "DT003-global")
        )
        assert lines_for(findings, "DT003") == expected

    def test_seeded_default_rng_is_clean(self, linted):
        source, findings = linted
        seeded = [
            i
            for i, line in enumerate(source.splitlines(), 1)
            if "default_rng(42)" in line
        ]
        assert seeded and not [f for f in findings if f.line in seeded]

    def test_dt004_set_iteration(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "DT004")
            + mark_lines(source, "DT004-comprehension")
        )
        assert lines_for(findings, "DT004") == expected
        assert all(
            f.severity == "warning" for f in findings if f.rule == "DT004"
        )

    def test_noqa_suppresses_dt001(self, linted):
        source, findings = linted
        noqa = [
            i
            for i, line in enumerate(source.splitlines(), 1)
            if "noqa[DT001]" in line
        ]
        assert noqa and not [f for f in findings if f.line in noqa]


class TestSimkernelRules:
    @pytest.fixture(scope="class")
    def linted(self):
        return lint_fixture("simkernel_misuse.py")

    def test_sk001_non_generator_process(self, linted):
        source, findings = linted
        assert lines_for(findings, "SK001") == set(mark_lines(source, "SK001"))

    def test_sk002_run_inside_process(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "SK002") + mark_lines(source, "SK002-step")
        )
        assert lines_for(findings, "SK002") == expected

    def test_sk003_double_trigger(self, linted):
        source, findings = linted
        expected = set(
            mark_lines(source, "SK003") + mark_lines(source, "SK003-fail")
        )
        assert lines_for(findings, "SK003") == expected

    def test_rebound_event_not_flagged(self, linted):
        source, findings = linted
        rebind = source.splitlines().index(
            "    ev2 = env.event()  # rebound: the next succeed is a fresh event"
        ) + 1
        assert not [f for f in findings if f.line == rebind + 1]


class TestRuleSelection:
    def test_select_runs_only_named_rules(self):
        _, findings = lint_fixture("nondeterminism.py", select=["DT004"])
        assert findings and {f.rule for f in findings} == {"DT004"}

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule ids"):
            rules_for(["ZZ999"])

    def test_at_least_five_distinct_rules_fire_on_fixtures(self):
        fired = set()
        for name in (
            "bad_trace_logging.py",
            "nondeterminism.py",
            "simkernel_misuse.py",
        ):
            _, findings = lint_fixture(name)
            fired |= {f.rule for f in findings}
        assert len(fired) >= 5, fired


def test_repo_sources_lint_clean():
    """The shipped tree has no un-suppressed findings (acceptance gate)."""
    from repro.analysis import lint_paths

    src = Path(__file__).parents[2] / "src"
    result = lint_paths([str(src)])
    assert not result.errors, result.errors
    assert not result.findings, "\n".join(f.render() for f in result.findings)
