"""Byte-level determinism regression: same seed → identical trace dump.

The kernel's contract ("two runs with the same seed produce identical
traces") is asserted elsewhere on derived metrics; this pins it at the
strongest level — the exported JSONL files are byte-identical — using the
Fig. 6 sequential-task experiment as the driver.
"""

from __future__ import annotations

import itertools

import pytest

import repro.core.tasklist as tasklist
import repro.core.worker as worker
from repro.experiments import fig06_sequential
from repro.obs import session as obs_session


def _reset_id_counters():
    """Fresh module-global id streams, as in a new interpreter.

    Worker and job ids come from ``itertools.count()`` module globals, so
    a second run in one process would otherwise start numbering where the
    first stopped and trivially differ.
    """
    worker._worker_seq = itertools.count()
    tasklist._spec_seq = itertools.count()


def _run_once(path):
    _reset_id_counters()
    with obs_session(trace_out=str(path)):
        rows = fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=7)
    assert rows[0]["completed"] == 8
    return path.read_bytes()


def test_fig06_trace_is_byte_identical_across_runs(tmp_path):
    first = _run_once(tmp_path / "a.jsonl")
    second = _run_once(tmp_path / "b.jsonl")
    assert first == second
    assert first  # non-empty: the dump actually captured the run


def test_different_seeds_differ(tmp_path):
    """Sanity for the test itself: the dump is seed-sensitive."""
    _reset_id_counters()
    with obs_session(trace_out=str(tmp_path / "a.jsonl")):
        fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=7)
    _reset_id_counters()
    with obs_session(trace_out=str(tmp_path / "b.jsonl")):
        fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=8)
    a = (tmp_path / "a.jsonl").read_bytes()
    b = (tmp_path / "b.jsonl").read_bytes()
    assert a != b


def test_fig10_fault_trace_is_byte_identical_across_runs(tmp_path):
    """The recovery knobs default off-or-equivalent: the Fig. 10 fault run
    (fixed fault cadence) must still replay byte-for-byte."""
    from repro.experiments import fig10_faults

    def once(path):
        _reset_id_counters()
        with obs_session(trace_out=str(path)):
            result = fig10_faults.run(
                workers=8, fault_interval=5.0, task_duration=1.0, seed=0
            )
        assert result["faults"] > 0
        return path.read_bytes()

    first = once(tmp_path / "a.jsonl")
    second = once(tmp_path / "b.jsonl")
    assert first == second
    assert first
