"""Byte-level determinism regression: same seed → identical trace dump.

The kernel's contract ("two runs with the same seed produce identical
traces") is asserted elsewhere on derived metrics; this pins it at the
strongest level — the exported JSONL files are byte-identical — using the
Fig. 6 sequential-task experiment as the driver.
"""

from __future__ import annotations

import hashlib
import itertools
import json

import pytest

import repro.core.tasklist as tasklist
import repro.core.worker as worker
from repro.experiments import fig06_sequential
from repro.obs import session as obs_session

#: Golden SHA-256 of the record lines (perf trailer excluded) of the
#: seed traces below, captured from the pre-optimization kernel.  The
#: slotted events, relay path, batched pops, and trace index must not
#: move a byte; if one of these digests changes, the kernel's scheduling
#: semantics changed — not just its speed.
_FIG06_SHA = "1cc95a417d87167bdb77c9627d8bcf020db12c0ea5931f0916ba4e7aed5f0374"
_FIG10_SHA = "cf7f3642d25a4839ad956ea9d0116b3de670ad1e231ad3af971c1e4cf2fb7010"

#: Kernel-event budget for the fig06 seed run (484 at capture time).
#: Headroom covers small legitimate changes; a fast path that silently
#: doubles event traffic (e.g. re-introducing per-callback bridge
#: events) blows it.
_FIG06_EVENT_BUDGET = 550


def _record_sha(path) -> str:
    """SHA-256 over the dump's record lines, skipping meta trailers."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for line in fh:
            if json.loads(line).get("meta"):
                continue
            h.update(line)
    return h.hexdigest()


def _reset_id_counters():
    """Fresh module-global id streams, as in a new interpreter.

    Worker and job ids come from ``itertools.count()`` module globals, so
    a second run in one process would otherwise start numbering where the
    first stopped and trivially differ.
    """
    worker._worker_seq = itertools.count()
    tasklist._spec_seq = itertools.count()


def _run_once(path):
    _reset_id_counters()
    with obs_session(trace_out=str(path)):
        rows = fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=7)
    assert rows[0]["completed"] == 8
    return path.read_bytes()


def test_fig06_trace_is_byte_identical_across_runs(tmp_path):
    first = _run_once(tmp_path / "a.jsonl")
    second = _run_once(tmp_path / "b.jsonl")
    assert first == second
    assert first  # non-empty: the dump actually captured the run


def test_fig06_trace_matches_golden_sha(tmp_path):
    """The dump matches the pre-fast-path kernel byte-for-byte."""
    _run_once(tmp_path / "a.jsonl")
    assert _record_sha(tmp_path / "a.jsonl") == _FIG06_SHA


def test_fig06_event_count_budget():
    """The optimized kernel does not inflate event traffic."""
    _reset_id_counters()
    with obs_session() as scope:
        fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=7)
    events = sum(t.env.events_processed for _lbl, t, _reg in scope.runs)
    assert 0 < events <= _FIG06_EVENT_BUDGET


def test_different_seeds_differ(tmp_path):
    """Sanity for the test itself: the dump is seed-sensitive."""
    _reset_id_counters()
    with obs_session(trace_out=str(tmp_path / "a.jsonl")):
        fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=7)
    _reset_id_counters()
    with obs_session(trace_out=str(tmp_path / "b.jsonl")):
        fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=8)
    a = (tmp_path / "a.jsonl").read_bytes()
    b = (tmp_path / "b.jsonl").read_bytes()
    assert a != b


def test_fig10_fault_trace_is_byte_identical_across_runs(tmp_path):
    """The recovery knobs default off-or-equivalent: the Fig. 10 fault run
    (fixed fault cadence) must still replay byte-for-byte."""
    from repro.experiments import fig10_faults

    def once(path):
        _reset_id_counters()
        with obs_session(trace_out=str(path)):
            result = fig10_faults.run(
                workers=8, fault_interval=5.0, task_duration=1.0, seed=0
            )
        assert result["faults"] > 0
        return path.read_bytes()

    first = once(tmp_path / "a.jsonl")
    second = once(tmp_path / "b.jsonl")
    assert first == second
    assert first
    assert _record_sha(tmp_path / "a.jsonl") == _FIG10_SHA
