"""Tests for torus/flat topologies."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.topology import SwitchedFlat, Torus3D, torus_dims_for


class TestTorus3D:
    def test_coords_roundtrip(self):
        t = Torus3D((4, 2, 3))
        for node in range(t.n):
            assert t.node_id(t.coords(node)) == node

    def test_hops_zero_for_self(self):
        t = Torus3D((2, 2, 2))
        assert t.hops(3, 3) == 0

    def test_hops_symmetric(self):
        t = Torus3D((4, 4, 2))
        for a, b in [(0, 5), (3, 30), (7, 7), (1, 31)]:
            assert t.hops(a, b) == t.hops(b, a)

    def test_wraparound_distance(self):
        t = Torus3D((8, 1, 1))
        # 0 and 7 are adjacent through the wrap link.
        assert t.hops(0, 7) == 1
        assert t.hops(0, 4) == 4

    def test_hops_match_networkx_shortest_paths(self):
        t = Torus3D((3, 3, 2))
        g = t.graph()
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for a in range(t.n):
            for b in range(t.n):
                assert t.hops(a, b) == lengths[a][b], (a, b)

    def test_out_of_range_rejected(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(ValueError):
            t.hops(0, 8)
        with pytest.raises(ValueError):
            t.coords(9)

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Torus3D((0, 2, 2))


class TestSwitchedFlat:
    def test_two_hops_between_distinct(self):
        t = SwitchedFlat(10)
        assert t.hops(0, 9) == 2
        assert t.hops(4, 4) == 0

    def test_needs_positive_size(self):
        with pytest.raises(ValueError):
            SwitchedFlat(0)


class TestTorusDimsFor:
    @given(n=st.integers(min_value=1, max_value=4096))
    @settings(max_examples=80, deadline=None)
    def test_dims_multiply_to_n(self, n):
        dims = torus_dims_for(n)
        assert dims[0] * dims[1] * dims[2] == n

    def test_power_of_two_near_cubic(self):
        dims = torus_dims_for(512)
        assert sorted(dims) == [8, 8, 8]

    def test_bgp_rack(self):
        x, y, z = torus_dims_for(1024)
        assert x * y * z == 1024
        assert max(x, y, z) / min(x, y, z) <= 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            torus_dims_for(0)
