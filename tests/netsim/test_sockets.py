"""Tests for the socket layer: connect, messaging, ordering, close."""

import pytest

from repro.netsim.fabric import ETHERNET, Fabric
from repro.netsim.sockets import ConnectionClosed, Network
from repro.simkernel import Environment


def make_net():
    env = Environment()
    return env, Network(env, Fabric(env, ETHERNET))


class TestConnect:
    def test_handshake_and_roundtrip(self):
        env, net = make_net()
        log = []

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            msg = yield sock.recv()
            log.append(msg.payload)
            yield sock.send("reply", 64)

        def client():
            sock = yield from net.connect(0, 1, "svc")
            yield sock.send("hello", 64)
            reply = yield sock.recv()
            log.append(reply.payload)

        env.process(server())
        p = env.process(client())
        env.run(p)
        assert log == ["hello", "reply"]

    def test_connect_refused_without_listener(self):
        env, net = make_net()

        def client():
            try:
                yield from net.connect(0, 1, "nothing")
            except ConnectionClosed:
                return "refused"

        p = env.process(client())
        env.run()
        assert p.value == "refused"

    def test_handshake_costs_time(self):
        env, net = make_net()
        net.listen(1, "svc")

        def client():
            yield from net.connect(0, 1, "svc")
            return env.now

        p = env.process(client())
        env.run(p)
        assert p.value > 0

    def test_duplicate_bind_rejected(self):
        env, net = make_net()
        net.listen(1, "svc")
        with pytest.raises(ValueError):
            net.listen(1, "svc")

    def test_listener_close_unbinds(self):
        env, net = make_net()
        lis = net.listen(1, "svc")
        lis.close()
        net.listen(1, "svc")  # rebind allowed


class TestMessaging:
    def test_fifo_ordering_mixed_sizes(self):
        """A large message sent first cannot be overtaken by a small one."""
        env, net = make_net()
        received = []

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            for _ in range(2):
                msg = yield sock.recv()
                received.append(msg.payload)

        def client():
            sock = yield from net.connect(0, 1, "svc")
            sock.send("big", 8 << 20)
            sock.send("small", 1)
            yield env.timeout(0)

        env.process(server())
        env.process(client())
        env.run()
        assert received == ["big", "small"]

    def test_bigger_messages_take_longer(self):
        env, net = make_net()
        times = {}

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            t0 = env.now
            yield sock.recv()
            times["arrival"] = env.now - t0

        def client(nbytes):
            sock = yield from net.connect(0, 1, "svc")
            yield sock.send("x", nbytes)

        for nbytes in (1, 1 << 20):
            env, net = make_net()
            env.process(server())
            env.process(client(nbytes))
            env.run()
            times[nbytes] = times["arrival"]
        assert times[1 << 20] > times[1]

    def test_bidirectional_independent(self):
        env, net = make_net()
        out = []

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            yield sock.send("s1", 10)
            msg = yield sock.recv()
            out.append(msg.payload)

        def client():
            sock = yield from net.connect(0, 1, "svc")
            yield sock.send("c1", 10)
            msg = yield sock.recv()
            out.append(msg.payload)

        env.process(server())
        env.process(client())
        env.run()
        assert sorted(out) == ["c1", "s1"]


class TestClose:
    def test_recv_on_closed_peer_fails_after_drain(self):
        env, net = make_net()
        result = {}

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            msg = yield sock.recv()
            result["msg"] = msg.payload
            try:
                yield sock.recv()
            except ConnectionClosed:
                result["closed"] = True

        def client():
            sock = yield from net.connect(0, 1, "svc")
            yield sock.send("last", 10)
            sock.close()

        env.process(server())
        env.process(client())
        env.run()
        assert result == {"msg": "last", "closed": True}

    def test_send_on_closed_socket_fails(self):
        env, net = make_net()

        def client():
            sock = yield from net.connect(0, 1, "svc")
            sock.close()
            try:
                yield sock.send("x", 1)
            except ConnectionClosed:
                return "send failed"

        net.listen(1, "svc")
        p = env.process(client())
        env.run(p)
        assert p.value == "send failed"

    def test_double_close_is_noop(self):
        env, net = make_net()
        net.listen(1, "svc")

        def client():
            sock = yield from net.connect(0, 1, "svc")
            sock.close()
            sock.close()
            return sock.closed

        p = env.process(client())
        env.run(p)
        assert p.value is True


class TestImpairment:
    def test_dropped_send_never_arrives_and_remover_restores(self):
        env, net = make_net()
        received = []
        dropping = {"on": True}

        def hook(op, src, dst, service, nbytes):
            if op == "send" and dropping["on"]:
                return ("drop",)
            return None

        remove = net.add_impairment(hook)

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            while True:
                msg = yield sock.recv()
                received.append(msg.payload)

        def client():
            sock = yield from net.connect(0, 1, "svc")
            yield sock.send("lost", 10)
            dropping["on"] = False
            remove()
            yield sock.send("kept", 10)
            yield env.timeout(1.0)

        env.process(server())
        p = env.process(client())
        env.run(p)
        assert received == ["kept"]

    def test_delay_adds_latency(self):
        def arrival_time(extra):
            env, net = make_net()
            if extra:
                net.add_impairment(
                    lambda op, *a: ("delay", extra) if op == "send" else None
                )
            times = {}

            def server():
                lis = net.listen(1, "svc")
                sock = yield lis.accept()
                yield sock.recv()
                times["t"] = env.now

            def client():
                sock = yield from net.connect(0, 1, "svc")
                yield sock.send("x", 10)

            env.process(server())
            env.process(client())
            env.run()
            return times["t"]

        base = arrival_time(0.0)
        slow = arrival_time(0.5)
        assert slow == pytest.approx(base + 0.5)

    def test_delayed_first_message_cannot_be_overtaken(self):
        env, net = make_net()
        count = {"sends": 0}
        received = []

        def hook(op, src, dst, service, nbytes):
            if op == "send":
                count["sends"] += 1
                if count["sends"] == 1:
                    return ("delay", 0.5)
            return None

        net.add_impairment(hook)

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            for _ in range(2):
                msg = yield sock.recv()
                received.append(msg.payload)

        def client():
            sock = yield from net.connect(0, 1, "svc")
            sock.send("first", 10)
            sock.send("second", 10)
            yield env.timeout(1.0)

        env.process(server())
        env.process(client())
        env.run()
        assert received == ["first", "second"]

    def test_dropped_connect_refused_after_handshake_wait(self):
        env, net = make_net()
        net.listen(1, "svc")
        net.add_impairment(
            lambda op, *a: ("drop",) if op == "connect" else None
        )

        def client():
            t0 = env.now
            try:
                yield from net.connect(0, 1, "svc")
            except ConnectionClosed:
                return env.now - t0

        p = env.process(client())
        env.run(p)
        assert p.value is not None
        assert p.value > 0  # the connector waited the handshake out

    def test_dropped_close_leaves_zombie_peer(self):
        env, net = make_net()
        net.add_impairment(
            lambda op, *a: ("drop",) if op == "close" else None
        )
        state = {}

        def server():
            lis = net.listen(1, "svc")
            sock = yield lis.accept()
            state["sock"] = sock
            try:
                yield sock.recv()
                state["got"] = True
            except ConnectionClosed:
                state["closed"] = True

        def client():
            sock = yield from net.connect(0, 1, "svc")
            sock.close()

        env.process(server())
        env.process(client())
        env.run()
        # The close notification was lost: the peer never learns.
        assert "closed" not in state and "got" not in state
        assert not state["sock"].closed
