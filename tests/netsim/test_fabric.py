"""Tests for fabric cost models."""

import pytest

from repro.netsim.fabric import (
    ETHERNET,
    NATIVE_BGP,
    TCP_ZEPTO_BGP,
    Fabric,
    FabricSpec,
)
from repro.netsim.topology import Torus3D
from repro.simkernel import Environment


class TestFabricSpec:
    def test_transfer_time_monotonic_in_size(self):
        for spec in (NATIVE_BGP, TCP_ZEPTO_BGP, ETHERNET):
            times = [spec.transfer_time(n) for n in (0, 1, 1024, 1 << 20)]
            assert times == sorted(times)
            assert all(t > 0 for t in times)

    def test_transfer_time_monotonic_in_hops(self):
        assert NATIVE_BGP.transfer_time(0, hops=8) > NATIVE_BGP.transfer_time(
            0, hops=1
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NATIVE_BGP.transfer_time(-1)

    def test_paper_fig8_shape_small_messages(self):
        """TCP latency is more than an order of magnitude above native."""
        native = NATIVE_BGP.transfer_time(1)
        tcp = TCP_ZEPTO_BGP.transfer_time(1)
        assert tcp > 10 * native

    def test_paper_fig8_shape_bandwidth(self):
        """Large-message bandwidth: native faster, but same order."""
        n = 4 << 20
        bw_native = n / NATIVE_BGP.transfer_time(n)
        bw_tcp = n / TCP_ZEPTO_BGP.transfer_time(n)
        assert bw_native > bw_tcp > bw_native / 4

    def test_segmentation_cost_applies(self):
        spec = FabricSpec(
            name="t", latency=1e-6, bandwidth=1e9,
            segment_bytes=1000, per_segment_cost=1e-5,
        )
        one_seg = spec.transfer_time(999)
        two_seg = spec.transfer_time(1001)
        assert two_seg - one_seg > 0.9e-5


class TestFabric:
    def test_hops_with_topology(self):
        env = Environment()
        topo = Torus3D((2, 2, 2))
        fabric = Fabric(env, NATIVE_BGP, topo)
        assert fabric.hops(0, 0) == 0
        assert fabric.hops(0, 7) == topo.hops(0, 7)

    def test_external_endpoint_uses_external_hops(self):
        env = Environment()
        topo = Torus3D((2, 2, 2))
        fabric = Fabric(env, NATIVE_BGP, topo, external_hops=6)
        assert fabric.hops(0, 8) == 6  # login host = id 8, outside torus
        assert fabric.hops(8, 3) == 6

    def test_no_topology_single_hop(self):
        env = Environment()
        fabric = Fabric(env, ETHERNET)
        assert fabric.hops(0, 99) == 1

    def test_loopback_cheap(self):
        env = Environment()
        fabric = Fabric(env, TCP_ZEPTO_BGP)
        assert fabric.transfer_time(3, 3, 1 << 20) < fabric.transfer_time(
            3, 4, 1 << 20
        )

    def test_rtt_sums_both_ways(self):
        env = Environment()
        fabric = Fabric(env, ETHERNET)
        assert fabric.rtt(0, 1, 100) == pytest.approx(
            fabric.transfer_time(0, 1, 100) + fabric.transfer_time(1, 0, 0)
        )

    def test_transfer_generator_advances_clock(self):
        env = Environment()
        fabric = Fabric(env, ETHERNET)

        def proc():
            yield from fabric.transfer(0, 1, 1 << 20)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(fabric.transfer_time(0, 1, 1 << 20))

    def test_delivery_event_carries_value(self):
        env = Environment()
        fabric = Fabric(env, ETHERNET)

        def proc():
            v = yield fabric.delivery(0, 1, 10, value="payload")
            return v

        p = env.process(proc())
        env.run()
        assert p.value == "payload"
