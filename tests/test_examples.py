"""The shipped examples must keep running (they are living documentation)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "fault_tolerance",
        "compare_launchers",
        "swift_script",
        "rem_workflow",
        "parameter_sweep",
    ],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main() if hasattr(module, "main") else None
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something
