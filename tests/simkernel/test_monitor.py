"""Tests for Trace, Counter, Gauge, IntervalLog instrumentation."""

import pytest

from repro.simkernel import Counter, Gauge, IntervalLog, Trace


class TestTrace:
    def test_log_records_time_and_category(self, env):
        trace = Trace(env)

        def proc():
            trace.log("a", 1)
            yield env.timeout(2)
            trace.log("b", {"x": 2})

        env.process(proc())
        env.run()
        assert len(trace) == 2
        assert trace.select("a")[0].time == 0
        assert trace.select("b")[0].data == {"x": 2}
        assert trace.times("b") == [2]

    def test_select_filters(self, env):
        trace = Trace(env)
        trace.log("x")
        trace.log("y")
        trace.log("x")
        assert len(trace.select("x")) == 2
        assert trace.select("z") == []


class TestCounter:
    def test_incr(self):
        c = Counter("n")
        assert c.incr() == 1
        assert c.incr(4) == 5
        assert c.value == 5


class TestGauge:
    def test_step_integral(self, env):
        g = Gauge(env, 0)

        def proc():
            yield env.timeout(2)
            g.set(10)
            yield env.timeout(3)
            g.set(0)
            yield env.timeout(1)

        env.process(proc())
        env.run()
        assert g.integral() == pytest.approx(30.0)
        assert g.mean() == pytest.approx(5.0)
        assert g.max() == 10

    def test_add(self, env):
        g = Gauge(env, 1)
        g.add(2)
        g.add(-1)
        assert g.value == 2

    def test_partial_window_integral(self, env):
        g = Gauge(env, 4)

        def proc():
            yield env.timeout(10)
            g.set(0)
            yield env.timeout(10)

        env.process(proc())
        env.run()
        assert g.integral(5, 15) == pytest.approx(4 * 5)
        assert g.mean(5, 15) == pytest.approx(2.0)

    def test_empty_window(self, env):
        g = Gauge(env, 1)
        assert g.integral(5, 5) == 0.0
        assert g.mean(3, 3) == 0.0


class TestIntervalLog:
    def test_busy_time(self):
        log = IntervalLog()
        log.add(0, 5)
        log.add(3, 7)
        assert log.busy_time() == pytest.approx(9.0)

    def test_invalid_interval(self):
        log = IntervalLog()
        with pytest.raises(ValueError):
            log.add(5, 3)

    def test_concurrency_series(self):
        log = IntervalLog()
        log.add(0, 4)
        log.add(2, 6)
        series = dict(log.concurrency_series())
        assert series[0] == 1
        assert series[2] == 2
        assert series[4] == 1
        assert series[6] == 0

    def test_span_and_durations(self):
        log = IntervalLog()
        log.add(1, 3, "a")
        log.add(2, 10, "b")
        assert log.span() == (1, 10)
        assert sorted(log.durations()) == [2, 8]

    def test_empty_span(self):
        assert IntervalLog().span() == (0.0, 0.0)

class TestTracePrefixSelect:
    def test_prefix_matches_category_family(self, env):
        trace = Trace(env)
        trace.log("job.queued")
        trace.log("job.done")
        trace.log("jobless")
        trace.log("worker.idle")
        assert len(trace.select("job.", prefix=True)) == 2
        assert trace.times("job.", prefix=True) == [0, 0]

    def test_exact_match_stays_default(self, env):
        trace = Trace(env)
        trace.log("job.queued")
        trace.log("job.queued.extra")
        assert len(trace.select("job.queued")) == 1
        assert len(trace.select("job.queued", prefix=True)) == 2


class TestCounterTraceHookup:
    def test_connect_mirrors_increments(self, env):
        trace = Trace(env)
        c = Counter("ops").connect(trace)
        assert c.connected

        def proc():
            c.incr()
            yield env.timeout(1)
            c.incr(2)

        env.process(proc())
        env.run()
        recs = trace.select("counter.ops")
        assert [(r.time, r.data["value"]) for r in recs] == [(0, 1), (1, 3)]
        assert recs[0].data["counter"] == "ops"

    def test_custom_category(self, env):
        trace = Trace(env)
        c = Counter("n", trace=trace, category="my.cat")
        c.incr()
        assert len(trace.select("my.cat")) == 1

    def test_unconnected_counter_does_not_log(self, env):
        c = Counter("quiet")
        assert not c.connected
        c.incr()  # no trace attached; must not raise


class TestGaugeCoalescing:
    def test_same_timestamp_keeps_last_value(self, env):
        g = Gauge(env, 0)
        g.set(5)
        g.set(7)  # same sim time: replaces, not appends
        assert g.series() == [(0, 7)]

    def test_distinct_timestamps_append(self, env):
        g = Gauge(env, 0)

        def proc():
            g.set(1)
            yield env.timeout(2)
            g.set(2)
            g.set(3)

        env.process(proc())
        env.run()
        assert g.series() == [(0, 1), (2, 3)]

    def test_integral_unaffected_by_transients(self, env):
        g = Gauge(env, 0)

        def proc():
            g.set(100)  # transient at t=0...
            g.set(2)    # ...settles to 2 in the same instant
            yield env.timeout(5)

        env.process(proc())
        env.run()
        assert g.integral() == pytest.approx(10.0)


class TestTraceIndex:
    """The per-category index must agree with a linear scan."""

    def _fill(self, env):
        trace = Trace(env)

        def proc():
            for i in range(30):
                trace.log(f"job.s{i % 3}", {"i": i})
                trace.log("worker.tick", i)
                yield env.timeout(1)

        env.process(proc())
        env.run()
        return trace

    def test_select_matches_linear_scan(self, env):
        trace = self._fill(env)
        for cat in ("job.s0", "job.s1", "worker.tick", "nope"):
            expected = [r for r in trace.records if r.category == cat]
            assert trace.select(cat) == expected

    def test_prefix_select_matches_linear_scan_in_time_order(self, env):
        trace = self._fill(env)
        expected = [
            r for r in trace.records if r.category.startswith("job.")
        ]
        assert trace.select("job.", prefix=True) == expected
        assert trace.times("job.", prefix=True) == [r.time for r in expected]

    def test_select_any_merges_in_record_order(self, env):
        trace = self._fill(env)
        picked = ("worker.tick", "job.s2")
        expected = [r for r in trace.records if r.category in picked]
        assert trace.select_any(picked) == expected

    def test_categories_in_first_appearance_order(self, env):
        trace = self._fill(env)
        assert trace.categories() == [
            "job.s0", "worker.tick", "job.s1", "job.s2"
        ]
        assert trace.categories("job.") == ["job.s0", "job.s1", "job.s2"]

    def test_index_stays_live_after_new_logs(self, env):
        trace = Trace(env)
        trace.log("a", 1)
        assert len(trace.select("a")) == 1  # query builds/uses the index...
        trace.log("a", 2)  # ...and later logs still land in it
        assert [r.data for r in trace.select("a")] == [1, 2]

    def test_categories_are_interned(self, env):
        trace = Trace(env)
        trace.log("job." + "dispatch", None)  # dynamically-built string
        trace.log("job." + "dispatch", None)
        a, b = (r.category for r in trace.records)
        assert a is b


class TestGaugeWindowedIntegral:
    """The bisect-windowed integral must equal the full-scan answer."""

    def _reference(self, samples, t0, t1):
        # Mirrors the historical full-scan formulation: the last sample
        # extends to the window end (the gauge holds its value).
        total = 0.0
        for (ta, va), (tb, _vb) in zip(samples, samples[1:]):
            lo, hi = max(ta, t0), min(tb, t1)
            if hi > lo:
                total += va * (hi - lo)
        ta, va = samples[-1]
        lo = max(ta, t0)
        if t1 > lo:
            total += va * (t1 - lo)
        return total

    def _fill(self, env, n=40):
        g = Gauge(env, 0)

        def proc():
            for i in range(n):
                g.set((i * 7) % 11)
                yield env.timeout(1.5)

        env.process(proc())
        env.run()
        return g

    def test_windows_match_full_scan(self, env):
        g = self._fill(env)
        samples = g.series()
        now = env.now
        windows = [
            (0.0, now), (3.0, 9.0), (2.25, 2.26), (0.0, 0.0),
            (10.0, 55.0), (-5.0, 3.0), (now - 1.0, now + 10.0),
        ]
        for t0, t1 in windows:
            assert g.integral(t0, t1) == pytest.approx(
                self._reference(samples, t0, t1)
            ), (t0, t1)

    def test_window_before_first_sample_is_zero(self, env):
        g = Gauge(env, 0)

        def proc():
            yield env.timeout(5)
            g.set(3)
            yield env.timeout(5)

        env.process(proc())
        env.run()
        # Gauge records its initial value at construction time (t=0),
        # so the early window integrates the initial 0.
        assert g.integral(0.0, 4.0) == pytest.approx(0.0)
        assert g.integral(6.0, 8.0) == pytest.approx(6.0)

    def test_degenerate_and_inverted_windows(self, env):
        g = self._fill(env, n=5)
        assert g.integral(3.0, 3.0) == 0.0
        assert g.integral(9.0, 2.0) == 0.0
