"""Property-based tests (hypothesis) for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Environment, Gauge, IntervalLog, Resource, Store


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    """Completion times observed by processes never go backwards."""
    env = Environment()
    seen = []

    def waiter(d):
        yield env.timeout(d)
        seen.append(env.now)

    for d in delays:
        env.process(waiter(d))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(
    holds=st.lists(
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        min_size=1,
        max_size=25,
    ),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    """At no instant do more than `capacity` holders exist."""
    env = Environment()
    res = Resource(env, capacity)
    violations = []

    def proc(hold):
        with res.request() as req:
            yield req
            if res.count > capacity:
                violations.append(res.count)
            yield env.timeout(hold)

    for h in holds:
        env.process(proc(h))
    env.run()
    assert not violations
    assert res.count == 0  # everything released


@given(
    items=st.lists(st.integers(), min_size=1, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_store_conserves_items(items):
    """Everything put into a store comes out exactly once, in order."""
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for it in items:
            yield store.put(it)

    def consumer():
        for _ in items:
            v = yield store.get()
            out.append(v)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == items


@given(
    spans=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=50, allow_nan=False),
            st.floats(min_value=0, max_value=50, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_interval_log_concurrency_consistent_with_busy_time(spans):
    """Integrating the concurrency step series equals total busy time."""
    log = IntervalLog()
    for a, b in spans:
        lo, hi = min(a, b), max(a, b)
        log.add(lo, hi)
    series = log.concurrency_series()
    integral = 0.0
    for (t0, v0), (t1, _v1) in zip(series, series[1:]):
        integral += v0 * (t1 - t0)
    assert abs(integral - log.busy_time()) < 1e-6
    assert series[-1][1] == 0  # all intervals eventually close


@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10, allow_nan=False),
            st.floats(min_value=-5, max_value=5, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_gauge_integral_matches_manual_sum(steps):
    """Gauge integration equals the hand-computed rectangle sum."""
    env = Environment()
    g = Gauge(env, 0.0)
    expected = 0.0
    now = 0.0
    level = 0.0

    def proc():
        nonlocal expected, now, level
        for dt, delta in steps:
            yield env.timeout(dt)
            expected += level * dt
            now += dt
            level += delta
            g.add(delta)

    env.process(proc())
    env.run()
    assert abs(g.integral(0.0, now) - expected) < 1e-6
