"""Tests for the DES kernel: events, processes, conditions, interrupts."""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class TestEvent:
    def test_succeed_carries_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_failed_event_raises_in_process(self, env):
        ev = env.event()
        caught = []

        def proc():
            try:
                yield ev
            except ValueError as exc:
                caught.append(exc)

        env.process(proc())
        ev.fail(ValueError("boom"))
        env.run()
        assert len(caught) == 1


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        def proc():
            yield env.timeout(3.5)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 3.5

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_value_passthrough(self, env):
        def proc():
            v = yield env.timeout(1, value="hello")
            return v

        p = env.process(proc())
        env.run()
        assert p.value == "hello"

    def test_timeouts_fire_in_order(self, env):
        order = []

        def waiter(d, tag):
            yield env.timeout(d)
            order.append(tag)

        env.process(waiter(3, "c"))
        env.process(waiter(1, "a"))
        env.process(waiter(2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_by_creation(self, env):
        order = []

        def waiter(tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abc":
            env.process(waiter(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        p = env.process(proc())
        env.run()
        assert p.value == "done"

    def test_process_is_waitable_event(self, env):
        def inner():
            yield env.timeout(2)
            return 10

        def outer():
            v = yield env.process(inner())
            return v + 1

        p = env.process(outer())
        env.run()
        assert p.value == 11

    def test_yield_from_composition(self, env):
        def inner():
            yield env.timeout(1)
            return 5

        def outer():
            v = yield from inner()
            yield env.timeout(1)
            return v * 2

        p = env.process(outer())
        env.run()
        assert p.value == 10
        assert env.now == 2

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_raises_in_process(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_propagates_to_run(self, env):
        def proc():
            yield env.timeout(1)
            raise RuntimeError("kaboom")

        env.process(proc())
        with pytest.raises(RuntimeError, match="kaboom"):
            env.run()

    def test_exception_caught_by_waiter_is_defused(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("inner")

        def waiter():
            try:
                yield env.process(bad())
            except RuntimeError:
                return "handled"

        p = env.process(waiter())
        env.run()
        assert p.value == "handled"

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(5)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yield_already_processed_event(self, env):
        ev = env.event()
        ev.succeed(7)

        def proc():
            yield env.timeout(1)
            v = yield ev  # already processed by now
            return v

        p = env.process(proc())
        env.run()
        assert p.value == 7


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                causes.append(i.cause)
                return "interrupted"

        def killer(p):
            yield env.timeout(1)
            p.interrupt("die")

        p = env.process(victim())
        env.process(killer(p))
        result = env.run(p)
        assert result == "interrupted"
        assert causes == ["die"]
        assert env.now == 1  # the stale timeout has not fired yet

    def test_interrupt_terminated_raises(self, env):
        def victim():
            yield env.timeout(1)

        p = env.process(victim())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def victim():
            yield env.timeout(0)
            me = env.active_process
            me.interrupt()

        env.process(victim())
        with pytest.raises(SimulationError):
            env.run()

    def test_stale_target_after_interrupt_ignored(self, env):
        """The original wait target firing later must not resume the process."""
        log = []

        def victim():
            try:
                yield env.timeout(10)
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(50)
            log.append(("done", env.now))

        def killer(p):
            yield env.timeout(2)
            p.interrupt()

        p = env.process(victim())
        env.process(killer(p))
        env.run()
        assert log == [("interrupted", 2), ("done", 52)]


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc():
            e1, e2 = env.timeout(1), env.timeout(3)
            yield env.all_of([e1, e2])
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 3

    def test_any_of_fires_on_first(self, env):
        def proc():
            e1, e2 = env.timeout(5), env.timeout(2)
            result = yield env.any_of([e1, e2])
            return env.now, e2 in result

        p = env.process(proc())
        env.run(10)
        assert p.value == (2, True)

    def test_all_of_empty_fires_immediately(self, env):
        def proc():
            yield env.all_of([])
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 0

    def test_all_of_fails_on_member_failure(self, env):
        def bad():
            yield env.timeout(1)
            raise ValueError("member")

        def proc():
            try:
                yield env.all_of([env.process(bad()), env.timeout(10)])
            except ValueError:
                return "failed"

        p = env.process(proc())
        env.run(20)
        assert p.value == "failed"

    def test_condition_value_maps_events(self, env):
        def proc():
            e1 = env.timeout(1, value="a")
            e2 = env.timeout(2, value="b")
            result = yield env.all_of([e1, e2])
            return sorted(result.values())

        p = env.process(proc())
        env.run()
        assert p.value == ["a", "b"]


class TestRun:
    def test_run_until_time(self, env):
        def proc():
            while True:
                yield env.timeout(1)

        env.process(proc())
        env.run(until=5.5)
        assert env.now == 5.5

    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(2)
            return "finished"

        p = env.process(proc())
        assert env.run(p) == "finished"

    def test_run_until_past_rejected(self, env):
        env.process(iter_timeout(env))
        env.run(5)
        with pytest.raises(ValueError):
            env.run(1)

    def test_run_exhausts_events(self, env):
        def proc():
            yield env.timeout(7)

        env.process(proc())
        env.run()
        assert env.now == 7
        assert env.peek() == float("inf")

    def test_run_until_unreachable_event_raises(self, env):
        ev = env.event()  # never triggered

        def proc():
            yield env.timeout(1)

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run(ev)

    def test_determinism(self):
        """Identical setups produce identical completion traces."""

        def build():
            e = Environment()
            log = []

            def worker(tag, d):
                yield e.timeout(d)
                log.append((tag, e.now))

            for i in range(20):
                e.process(worker(i, (i * 7) % 5 + 0.5))
            e.run()
            return log

        assert build() == build()


def iter_timeout(env):
    yield env.timeout(10)


class TestRelay:
    """Late callbacks on already-processed events (the relay path)."""

    def test_late_callback_delivers_origin(self, env):
        ev = env.event()
        ev.succeed(42)
        env.run()
        assert ev.processed
        seen = []
        ev._add_callback(seen.append)
        env.run()
        # The listener receives the origin (with its value), not the
        # internal relay event.
        assert seen == [ev]
        assert seen[0].value == 42

    def test_late_callback_fires_at_current_time(self, env):
        ev = env.event()
        ev.succeed()
        env.run()
        fired_at = []
        ev._add_callback(lambda e: fired_at.append(env.now))
        env.process(iter_timeout(env))  # something later on the heap
        env.run()
        assert fired_at == [0]

    def test_late_listener_on_defused_failure_does_not_reraise(self, env):
        """Regression: the relay must copy the origin's ``_defused``.

        A failed event whose exception was already caught is settled; a
        late passive listener must not make the scheduler re-raise it.
        """
        ev = env.event()
        caught = []

        def first():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(exc)

        env.process(first())
        ev.fail(RuntimeError("boom"))
        env.run()
        assert len(caught) == 1
        seen = []
        ev._add_callback(seen.append)
        env.run()  # must not raise RuntimeError("boom") again
        assert seen == [ev]

    def test_listener_defusing_during_relay_suppresses_reraise(self, env):
        """A late process that catches the failure defuses the relay too."""
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            env.run()
        assert ev.processed and not ev._defused
        caught = []

        def late():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(exc)

        env.process(late())
        env.run()  # the catch above must settle the relay as well
        assert len(caught) == 1

    def test_late_listener_ignoring_failure_still_raises(self, env):
        """An un-handled relayed failure keeps crashing the run."""
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            env.run()
        ev._add_callback(lambda e: None)  # looks, does not catch
        with pytest.raises(RuntimeError):
            env.run()
