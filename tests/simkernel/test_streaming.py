"""StreamingTrace: retention windows, spill segments, subscriber contract.

The bounded-memory sink must be a drop-in for the in-RAM ``Trace`` at the
subscriber and archival layers: every record reaches subscribers exactly
once (before any eviction), and a fully-spilled JSONL file is
byte-identical to an in-RAM dump of the same log sequence.  The query
surface intentionally differs — it answers over the retained window only
— and these tests pin that boundary too.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.simkernel import Environment, StreamingTrace, Trace
from repro.obs.export import to_jsonl

#: Categories used by the synthetic streams below (schema validity is
#: irrelevant at this layer; the sink never inspects payloads).
_CATS = ("job.submit", "job.done", "worker.beat")


def _log_n(sink, n, with_time=False):
    """Log ``n`` synthetic records; optionally advance sim time per record."""
    if not with_time:
        for i in range(n):
            sink.log(_CATS[i % len(_CATS)], {"i": i})
        return

    def proc():
        for i in range(n):
            sink.log(_CATS[i % len(_CATS)], {"i": i})
            yield sink.env.timeout(0.5)

    sink.env.process(proc())
    sink.env.run()


class TestWindowRetention:
    def test_window_never_exceeds_high_water(self, env):
        t = StreamingTrace(env, window=16)
        for i in range(100):
            t.log("job.submit", {"i": i})
            assert t.retained <= 16
        assert t.retained == 16
        assert t.total == 100
        assert len(t) == 100  # __len__ is the all-time count

    def test_eviction_is_oldest_first_no_gap_no_dup(self, env):
        t = StreamingTrace(env, window=8)
        _log_n(t, 50)
        kept = [r.data["i"] for r in t.records]
        assert kept == list(range(42, 50))

    def test_drop_counting_without_spill(self, env):
        t = StreamingTrace(env, window=10)
        _log_n(t, 25)
        assert t.dropped == 15
        assert t.total == t.retained + t.dropped

    def test_counts_and_categories_survive_eviction(self, env):
        t = StreamingTrace(env, window=2)
        _log_n(t, 30)
        assert sum(t.counts().values()) == 30
        assert t.counts()["job.submit"] == 10
        assert t.counts("job.")["job.done"] == 10
        assert "worker.beat" not in t.counts("job.")
        # First-appearance order, even though the early records are gone.
        assert t.categories() == list(_CATS)
        assert t.categories("worker.") == ["worker.beat"]

    def test_query_surface_is_window_only(self, env):
        t = StreamingTrace(env, window=6)
        _log_n(t, 30)
        window = t.records
        assert t.select("job.submit") == [
            r for r in window if r.category == "job.submit"
        ]
        assert t.select("job.", prefix=True) == [
            r for r in window if r.category.startswith("job.")
        ]
        assert t.select_any(["job.done", "worker.beat"]) == [
            r for r in window if r.category in ("job.done", "worker.beat")
        ]
        assert t.times("worker.beat") == [
            r.time for r in window if r.category == "worker.beat"
        ]

    def test_select_any_preserves_log_order_across_categories(self, env):
        t = StreamingTrace(env, window=64)
        _log_n(t, 30, with_time=True)
        merged = t.select_any(["job.submit", "job.done"])
        assert [r.data["i"] for r in merged] == sorted(
            r.data["i"] for r in merged
        )
        assert merged == t.select("job.", prefix=True)

    def test_window_floor_is_one(self, env):
        t = StreamingTrace(env, window=0)
        _log_n(t, 5)
        assert t.high_water == 1
        assert t.retained == 1
        assert t.records[0].data["i"] == 4


class TestSpill:
    def _mirror(self, env, n, tmp_path, window=8, with_time=True):
        """Drive an in-RAM Trace and a spilling StreamingTrace in lockstep."""
        ram = Trace(env)
        spill = tmp_path / "stream.jsonl"
        st = StreamingTrace(
            env, window=window, spill=str(spill), run=0, truncate=True
        )

        def proc():
            for i in range(n):
                cat = _CATS[i % len(_CATS)]
                ram.log(cat, {"i": i})
                st.log(cat, {"i": i})
                yield env.timeout(0.25)

        env.process(proc())
        env.run()
        return ram, st, spill

    def test_spill_is_byte_identical_to_in_ram_dump(self, env, tmp_path):
        ram, st, spill = self._mirror(env, 100, tmp_path)
        perf = st.perf()
        st.close(perf=perf)
        dump = tmp_path / "ram.jsonl"
        with open(dump, "w") as fh:
            to_jsonl(ram, fh, run=0, perf=perf)
        assert spill.read_bytes() == dump.read_bytes()
        assert st.spilled == 100
        assert st.dropped == 0

    def test_trailer_is_last_line_and_tagged(self, env, tmp_path):
        _ram, st, spill = self._mirror(env, 20, tmp_path)
        st.close(perf=st.perf())
        lines = spill.read_text().splitlines()
        assert len(lines) == 21
        trailer = json.loads(lines[-1])
        assert trailer["meta"] == "perf"
        assert trailer["run"] == 0
        assert trailer["records"] == 20
        assert all("meta" not in json.loads(ln) for ln in lines[:-1])

    def test_segments_flush_during_the_run(self, env, tmp_path):
        spill = tmp_path / "seg.jsonl"
        st = StreamingTrace(
            env, window=4, spill=str(spill), truncate=True, segment_records=8
        )
        _log_n(st, 40)
        st.flush()
        # Evicted records are already on disk mid-run (the file is a
        # valid, growing JSONL prefix), window still retained.
        on_disk = spill.read_text().splitlines()
        assert len(on_disk) == st.spilled == 36
        assert [json.loads(ln)["data"]["i"] for ln in on_disk] == list(
            range(36)
        )
        assert st.retained == 4

    def test_close_drains_window_and_is_idempotent(self, env, tmp_path):
        spill = tmp_path / "d.jsonl"
        st = StreamingTrace(env, window=64, spill=str(spill), truncate=True)
        _log_n(st, 10)
        assert st.retained == 10
        st.close(perf={"records": 10})
        st.close(perf={"records": 999})  # no-op: no second trailer
        lines = spill.read_text().splitlines()
        assert len(lines) == 11
        assert json.loads(lines[-1])["records"] == 10
        assert st.retained == 0

    def test_late_records_after_close_are_counted_not_written(
        self, env, tmp_path
    ):
        spill = tmp_path / "l.jsonl"
        st = StreamingTrace(env, window=4, spill=str(spill), truncate=True)
        _log_n(st, 6)
        st.close(perf=st.perf())
        st.log("worker.stop", {"worker": 1})
        st.log("worker.stop", {"worker": 2})
        assert st.late == 2
        assert st.total == 6
        assert len(spill.read_text().splitlines()) == 7

    def test_append_mode_stacks_runs_in_one_file(self, env, tmp_path):
        spill = tmp_path / "multi.jsonl"
        first = StreamingTrace(
            env, window=4, spill=str(spill), run=0, truncate=True
        )
        _log_n(first, 6)
        first.close(perf=first.perf())
        second = StreamingTrace(
            env, window=4, spill=str(spill), run=1, truncate=False
        )
        _log_n(second, 4)
        second.close(perf=second.perf())
        runs = [json.loads(ln).get("run") for ln in spill.read_text().splitlines()]
        assert runs == [0] * 7 + [1] * 5

    def test_label_lands_on_every_record_line(self, env, tmp_path):
        spill = tmp_path / "lbl.jsonl"
        st = StreamingTrace(
            env, window=2, spill=str(spill), run=0, label="fig06",
            truncate=True,
        )
        _log_n(st, 5)
        st.close(perf=st.perf())
        lines = [json.loads(ln) for ln in spill.read_text().splitlines()]
        assert all(ln["label"] == "fig06" for ln in lines[:-1])


class TestSubscriberContract:
    def test_every_record_delivered_exactly_once_across_eviction(self, env):
        t = StreamingTrace(env, window=4)
        seen: list[int] = []
        t.subscribe(lambda rec: seen.append(rec.data["i"]))
        _log_n(t, 200)
        assert seen == list(range(200))

    def test_subscriber_sees_record_before_eviction(self, env):
        t = StreamingTrace(env, window=1)
        observed: list[bool] = []
        # With window=1 the record that triggers eviction is itself
        # retained; the *previous* record is evicted only after this
        # one's fan-out — so the newest record is always in the window
        # when the subscriber runs.
        t.subscribe(lambda rec: observed.append(t.window[-1] is rec))
        _log_n(t, 20)
        assert all(observed)

    def test_unsubscribe_stops_delivery(self, env):
        t = StreamingTrace(env, window=8)
        seen: list[int] = []
        fn = t.subscribe(lambda rec: seen.append(rec.data["i"]))
        _log_n(t, 3)
        t.unsubscribe(fn)
        _log_n(t, 3)
        assert seen == [0, 1, 2]

    def test_in_ram_and_streaming_fan_out_identically(self, env):
        ram, st = Trace(env), StreamingTrace(env, window=2)
        ram_seen: list[tuple] = []
        st_seen: list[tuple] = []
        ram.subscribe(lambda r: ram_seen.append((r.time, r.category, r.data)))
        st.subscribe(lambda r: st_seen.append((r.time, r.category, r.data)))
        for i in range(50):
            ram.log(_CATS[i % 3], {"i": i})
            st.log(_CATS[i % 3], {"i": i})
        assert ram_seen == st_seen


class TestBoundedMemory:
    def _alloc_peak(self, make_sink, n) -> int:
        env = Environment()
        sink = make_sink(env)
        tracemalloc.start()
        try:
            _log_n(sink, n)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_streaming_peak_is_flat_while_in_ram_grows(self):
        stream_small = self._alloc_peak(
            lambda env: StreamingTrace(env, window=256), 20_000
        )
        stream_large = self._alloc_peak(
            lambda env: StreamingTrace(env, window=256), 40_000
        )
        ram_large = self._alloc_peak(lambda env: Trace(env), 40_000)
        # Doubling the stream leaves the streaming peak essentially
        # unchanged (window-bounded), while the in-RAM sink retains
        # every record and dwarfs it.
        assert stream_large < stream_small * 1.5
        assert ram_large > stream_large * 5
