"""Tests for deterministic named RNG streams."""

from repro.simkernel import RngRegistry
from repro.simkernel.rng import hash_name


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("faults").random(5).tolist()
        b = RngRegistry(7).stream("faults").random(5).tolist()
        assert a == b

    def test_streams_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(5).tolist()
        b = reg.stream("b").random(5).tolist()
        assert a != b

    def test_consuming_one_stream_leaves_others_untouched(self):
        reg1 = RngRegistry(3)
        reg1.stream("noise").random(100)
        after = reg1.stream("faults").random(3).tolist()
        reg2 = RngRegistry(3)
        fresh = reg2.stream("faults").random(3).tolist()
        assert after == fresh

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(5).tolist()
        b = RngRegistry(2).stream("x").random(5).tolist()
        assert a != b

    def test_reset(self):
        reg = RngRegistry(5)
        first = reg.stream("s").random(3).tolist()
        reg.reset()
        again = reg.stream("s").random(3).tolist()
        assert first == again


class TestHashName:
    def test_stable_values(self):
        # FNV-1a must not depend on the process hash seed.
        assert hash_name("abc") == hash_name("abc")
        assert hash_name("abc") != hash_name("abd")

    def test_known_value(self):
        # Pin one value so accidental algorithm changes are caught
        # (changing it would silently re-seed every experiment).
        assert hash_name("") == 2166136261
