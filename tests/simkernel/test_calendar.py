"""Edge cases of the calendar-queue scheduler.

The FIFO engine keeps events in per-timestamp buckets of int handles
with a heap of unique bucket times as the sorted overflow; these tests
pin down its boundary behavior — negative delays, float-precision time
keys, rollover past sparse far-future horizons, handle-table recycling
(including after condition defusal), and coexistence with the legacy
5-tuple heap engine used under a :class:`SchedulingOrder`.
"""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    Environment,
    SchedulingOrder,
    SeededOrder,
    SimulationError,
)


def _table_is_clean(env: Environment) -> bool:
    """Every handle slot is recycled: no event outlives its delivery."""
    live = [s for s in env._table if s is not None]
    return not live and len(env._free) == len(env._table)


class TestNegativeDelay:
    def test_timeout_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-0.5)

    def test_timeout_negative_delay_rejected_mid_run(self, env):
        seen = []

        def proc(env):
            yield env.timeout(1.0)
            try:
                yield env.timeout(-1e-9)
            except ValueError:
                seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [1.0]

    def test_negative_delay_rejected_under_order_too(self):
        env = Environment(order=SchedulingOrder())
        with pytest.raises(ValueError):
            env.timeout(-2.0)


class TestFloatPrecisionTies:
    def test_accumulated_and_direct_times_are_distinct_buckets(self):
        """0.1 + 0.2 != 0.3 in floats: the calendar must not merge them.

        The bucket key is the exact float timestamp — the same tie
        criterion the legacy heap's ``==`` comparison used — so two
        events whose times differ in the last ulp fire in float order,
        not insertion order.
        """
        env = Environment()
        order = []

        def late(env):  # scheduled first, fires second (0.1+0.2 > 0.3)
            yield env.timeout(0.1)
            yield env.timeout(0.2)
            order.append(("late", env.now))

        def early(env):
            yield env.timeout(0.3)
            order.append(("early", env.now))

        env.process(late(env))
        env.process(early(env))
        env.run()
        assert [name for name, _t in order] == ["early", "late"]
        times = [t for _name, t in order]
        assert times[0] == 0.3 and times[1] == 0.1 + 0.2
        assert times[0] != times[1]

    def test_equal_float_times_share_a_bucket_fifo(self):
        env = Environment()
        order = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        # 0.5 + 0.25 is exact in binary; both land in the 0.75 bucket
        # and fire in schedule order.
        env.process(proc(env, "a", 0.75))
        env.process(proc(env, "b", 0.5 + 0.25))
        env.run()
        assert order == ["a", "b"]
        assert not env._buckets and not env._times

    def test_peek_reports_earliest_bucket(self, env):
        env.timeout(2.0)
        env.timeout(1.0)
        env.timeout(3.0)
        assert env.peek() == pytest.approx(1.0)
        env.run()
        assert env.peek() == float("inf")


class TestHorizonRollover:
    def test_sparse_far_future_times_fire_in_order(self):
        """Far-apart irregular timestamps exercise the overflow heap."""
        env = Environment()
        fired = []
        delays = [9000.0, 1.0, 123456.789, 7.25, 31557600.0, 0.125]

        def proc(env, d):
            yield env.timeout(d)
            fired.append(env.now)

        for d in delays:
            env.process(proc(env, d))
        env.run()
        assert fired == sorted(delays)
        assert env.now == max(delays)
        assert _table_is_clean(env)

    def test_dense_near_and_sparse_far_interleave(self):
        env = Environment()
        fired = []

        def near(env):
            for _ in range(100):
                yield env.timeout(0.5)
                fired.append(env.now)

        def far(env):
            yield env.timeout(40.0)
            fired.append(env.now)

        env.process(near(env))
        env.process(far(env))
        env.run()
        assert fired == sorted(fired)
        assert fired.count(40.0) == 2  # near's 80th tick ties with far
        assert not env._buckets and not env._times

    def test_run_until_between_buckets_advances_clock(self):
        env = Environment()
        ticks = []

        def proc(env):
            while True:
                yield env.timeout(10.0)
                ticks.append(env.now)

        env.process(proc(env))
        env.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]
        assert env.now == 35.0
        # The 40.0 bucket is still pending; resuming picks it up.
        env.run(until=45.0)
        assert ticks[-1] == 40.0


class TestHandleRecycling:
    def test_slots_recycled_after_run(self):
        env = Environment()

        def worker(env):
            for _ in range(50):
                ev = env.event()
                ev.succeed()
                yield ev
                yield env.timeout(0.25)

        for _ in range(8):
            env.process(worker(env))
        env.run()
        assert _table_is_clean(env)
        # Steady-state table stays small: slots recycle instead of grow.
        assert len(env._table) < 8 * 50

    def test_allof_defusal_recycles_slots(self):
        env = Environment()
        outcome = []

        def failer(env):
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        def waiter(env):
            procs = [env.process(failer(env)) for _ in range(3)]
            try:
                yield AllOf(env, procs)
            except RuntimeError:
                outcome.append("failed")
            # Remaining failures are already-defused stale wakeups.
            yield env.timeout(5.0)

        env.process(waiter(env))
        env.run()
        assert outcome == ["failed"]
        assert _table_is_clean(env)

    def test_anyof_defusal_recycles_slots(self):
        env = Environment()
        got = []

        def quick(env):
            yield env.timeout(1.0)
            return "quick"

        def slow(env):
            yield env.timeout(3.0)
            return "slow"

        def waiter(env):
            winner = yield AnyOf(
                env, [env.process(quick(env)), env.process(slow(env))]
            )
            got.append(sorted(winner.values()))

        env.process(waiter(env))
        env.run()
        assert got == [["quick"]]
        assert _table_is_clean(env)

    def test_late_listener_pair_slots_recycled(self):
        env = Environment()
        hits = []

        def proc(env):
            ev = env.event()
            ev.succeed("v")
            yield ev
            # ev is processed now: late listeners ride the urgent lane
            # as callback pairs (or a relay outside fast mode).
            ev._add_callback(lambda e: hits.append(e.value))
            ev._add_callback(lambda e: hits.append(e.value))
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert hits == ["v", "v"]
        assert _table_is_clean(env)


class TestEngineCoexistence:
    @staticmethod
    def _workload(env):
        log = []

        def worker(env, i):
            for r in range(10):
                yield env.timeout((i % 3) * 0.5)
                ev = env.event()
                ev.succeed((i, r))
                got = yield ev
                log.append((env.now, got))

        for i in range(6):
            env.process(worker(env, i))
        env.run()
        return log, env.events_processed

    def test_seed_zero_order_matches_calendar_engine(self):
        """SeededOrder(0) (legacy heap, FIFO tiebreak) == calendar FIFO."""
        fifo_log, fifo_events = self._workload(Environment())
        heap_log, heap_events = self._workload(
            Environment(order=SeededOrder(0))
        )
        assert fifo_log == heap_log
        assert fifo_events == heap_events

    def test_seeded_permutations_replay_exactly(self):
        logs = {}
        for seed in (7, 7, 19):
            log, _events = self._workload(
                Environment(order=SeededOrder(seed))
            )
            logs.setdefault(seed, []).append(log)
        assert logs[7][0] == logs[7][1]  # same seed: identical replay
        # Different seeds permute simultaneous events but process the
        # same multiset of deliveries.
        assert sorted(logs[7][0]) == sorted(logs[19][0])

    def test_order_routes_to_heap_engine(self):
        env = Environment(order=SeededOrder(3))
        env.timeout(1.0)
        assert env._heap and not env._buckets
        env.run()
        assert not env._heap

    def test_fifo_routes_to_calendar_engine(self, env):
        env.timeout(1.0)
        assert env._buckets and not env._heap
        env.run()
        assert not env._buckets
