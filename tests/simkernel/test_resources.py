"""Tests for Resource, Store, PriorityStore, FilterStore, Container."""

import pytest

from repro.simkernel import (
    Container,
    FilterStore,
    PriorityStore,
    Resource,
    Store,
)


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, 0)

    def test_grant_within_capacity_immediate(self, env):
        res = Resource(env, 2)
        got = []

        def proc(tag):
            req = res.request()
            yield req
            got.append((tag, env.now))
            yield env.timeout(1)
            res.release(req)

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert [t for _tag, t in got] == [0, 0]

    def test_fifo_queueing(self, env):
        res = Resource(env, 1)
        order = []

        def proc(tag, hold):
            with res.request() as req:
                yield req
                order.append(tag)
                yield env.timeout(hold)

        for tag in "abc":
            env.process(proc(tag, 1))
        env.run()
        assert order == ["a", "b", "c"]

    def test_count_and_queue_length(self, env):
        res = Resource(env, 1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def waiter():
            with res.request() as req:
                yield req

        env.process(holder())
        env.process(waiter())
        env.run(1)
        assert res.count == 1
        assert res.queue_length == 1

    def test_release_pending_cancels(self, env):
        res = Resource(env, 1)

        def holder():
            with res.request() as r:
                yield r
                yield env.timeout(10)

        env.process(holder())
        env.run(1)
        req = res.request()
        res.release(req)  # cancel before grant
        assert res.queue_length == 0

    def test_context_manager_releases(self, env):
        res = Resource(env, 1)

        def proc():
            with res.request() as req:
                yield req
                yield env.timeout(1)

        env.process(proc())
        env.run()
        assert res.count == 0


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def proc():
            yield store.put("x")
            item = yield store.get()
            return item

        p = env.process(proc())
        env.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter():
            item = yield store.get()
            return env.now, item

        def putter():
            yield env.timeout(3)
            yield store.put("late")

        p = env.process(getter())
        env.process(putter())
        env.run()
        assert p.value == (3, "late")

    def test_fifo_item_order(self, env):
        store = Store(env)
        out = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                out.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            times.append(env.now)
            yield store.put("b")
            times.append(env.now)

        def consumer():
            yield env.timeout(4)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [0, 4]

    def test_cancel_get(self, env):
        store = Store(env)
        get_ev = store.get()
        store.cancel_get(get_ev)
        store.put("x")
        env.run()
        assert store.items == ["x"]
        assert not get_ev.triggered

    def test_len_and_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2
        assert store.items == [1, 2]


class TestPriorityStore:
    def test_orders_items(self, env):
        store = PriorityStore(env)
        out = []

        def proc():
            for item in [(3, "c"), (1, "a"), (2, "b")]:
                yield store.put(item)
            for _ in range(3):
                item = yield store.get()
                out.append(item[1])

        env.process(proc())
        env.run()
        assert out == ["a", "b", "c"]

    def test_blocking_get_receives_minimum(self, env):
        store = PriorityStore(env)

        def getter():
            item = yield store.get()
            return item

        def putter():
            yield env.timeout(1)
            yield store.put(5)
            yield store.put(2)

        p = env.process(getter())
        env.process(putter())
        env.run()
        # The blocked getter receives the first put (5); a second get
        # would receive 2.  This matches store-dispatch-on-put semantics.
        assert p.value == 5


class TestFilterStore:
    def test_filtered_get(self, env):
        store = FilterStore(env)

        def proc():
            yield store.put(("a", 1))
            yield store.put(("b", 2))
            item = yield store.get(lambda it: it[0] == "b")
            return item

        p = env.process(proc())
        env.run()
        assert p.value == ("b", 2)
        assert store.items == [("a", 1)]

    def test_unmatched_get_waits(self, env):
        store = FilterStore(env)

        def getter():
            item = yield store.get(lambda it: it == "wanted")
            return env.now, item

        def putter():
            yield store.put("other")
            yield env.timeout(2)
            yield store.put("wanted")

        p = env.process(getter())
        env.process(putter())
        env.run()
        assert p.value == (2, "wanted")

    def test_multiple_getters_matched_independently(self, env):
        store = FilterStore(env)
        out = {}

        def getter(key):
            item = yield store.get(lambda it, key=key: it[0] == key)
            out[key] = item[1]

        env.process(getter("x"))
        env.process(getter("y"))

        def putter():
            yield env.timeout(1)
            yield store.put(("y", 20))
            yield store.put(("x", 10))

        env.process(putter())
        env.run()
        assert out == {"x": 10, "y": 20}


class TestContainer:
    def test_put_get_levels(self, env):
        c = Container(env, capacity=10, init=5)

        def proc():
            yield c.get(3)
            yield c.put(6)
            return c.level

        p = env.process(proc())
        env.run()
        assert p.value == 8

    def test_get_blocks_until_available(self, env):
        c = Container(env, capacity=10)

        def getter():
            yield c.get(4)
            return env.now

        def putter():
            yield env.timeout(2)
            yield c.put(4)

        p = env.process(getter())
        env.process(putter())
        env.run()
        assert p.value == 2

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=5, init=5)

        def putter():
            yield c.put(1)
            return env.now

        def getter():
            yield env.timeout(3)
            yield c.get(2)

        p = env.process(putter())
        env.process(getter())
        env.run()
        assert p.value == 3

    def test_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=6)
        c = Container(env, capacity=5)
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)
