"""Tests for the MiniMD molecular dynamics engine (real physics)."""

import numpy as np
import pytest

from repro.apps.md_engine import MiniMD


class TestSetup:
    def test_density_sets_box(self):
        md = MiniMD(n_atoms=64, density=0.5)
        assert md.box == pytest.approx((64 / 0.5) ** (1 / 3))

    def test_atoms_inside_box(self):
        md = MiniMD(n_atoms=50)
        assert np.all(md.x >= 0) and np.all(md.x < md.box)

    def test_zero_net_momentum(self):
        md = MiniMD(n_atoms=64, seed=3)
        assert np.allclose(md.v.sum(axis=0), 0, atol=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            MiniMD(n_atoms=1)
        with pytest.raises(ValueError):
            MiniMD(n_atoms=10, density=-1)
        with pytest.raises(ValueError):
            MiniMD(n_atoms=10, temperature=0)


class TestDynamics:
    def test_nve_conserves_energy(self):
        """Pure velocity Verlet (gamma=0) conserves total energy well."""
        md = MiniMD(n_atoms=32, density=0.5, dt=0.002, gamma=0.0, seed=1)
        md.step(20)  # settle off the lattice
        e0 = md.total_energy()
        md.step(200)
        e1 = md.total_energy()
        assert abs(e1 - e0) / max(1.0, abs(e0)) < 0.02

    def test_positions_wrapped_periodically(self):
        md = MiniMD(n_atoms=32, seed=2)
        md.step(100)
        assert np.all(md.x >= 0) and np.all(md.x < md.box)

    def test_thermostat_tracks_target_temperature(self):
        md = MiniMD(n_atoms=64, temperature=1.2, gamma=2.0, dt=0.004, seed=4)
        md.step(300)
        temps = []
        for _ in range(30):
            md.step(10)
            temps.append(md.instantaneous_temperature())
        assert np.mean(temps) == pytest.approx(1.2, rel=0.2)

    def test_steps_counted(self):
        md = MiniMD(n_atoms=27)
        md.step(7)
        assert md.steps_taken == 7

    def test_forces_are_newtonian(self):
        """Pair forces cancel: net force is ~zero."""
        md = MiniMD(n_atoms=32, seed=5)
        md.step(10)
        f, _pe = md._forces()
        assert np.allclose(f.sum(axis=0), 0, atol=1e-8)

    def test_deterministic_given_seed(self):
        a = MiniMD(n_atoms=27, seed=9)
        b = MiniMD(n_atoms=27, seed=9)
        a.step(50)
        b.step(50)
        assert np.allclose(a.x, b.x)
        assert a.potential_energy() == pytest.approx(b.potential_energy())


class TestRemSupport:
    def test_set_temperature_rescales_velocities(self):
        md = MiniMD(n_atoms=64, temperature=1.0, seed=6)
        ke0 = md.kinetic_energy()
        md.set_temperature(2.0)
        assert md.kinetic_energy() == pytest.approx(2 * ke0)
        assert md.temperature == 2.0

    def test_set_temperature_without_rescale(self):
        md = MiniMD(n_atoms=64, temperature=1.0, seed=6)
        ke0 = md.kinetic_energy()
        md.set_temperature(2.0, rescale=False)
        assert md.kinetic_energy() == pytest.approx(ke0)

    def test_invalid_temperature_rejected(self):
        md = MiniMD(n_atoms=27)
        with pytest.raises(ValueError):
            md.set_temperature(0)

    def test_snapshot_restore_roundtrip(self):
        md = MiniMD(n_atoms=27, seed=7)
        md.step(20)
        snap = md.snapshot()
        pe = md.potential_energy()
        md.step(50)
        assert md.potential_energy() != pytest.approx(pe, abs=1e-12)
        md.restore(snap)
        assert md.potential_energy() == pytest.approx(pe)
        assert np.allclose(md.x, snap.positions)

    def test_snapshot_is_independent_copy(self):
        md = MiniMD(n_atoms=27, seed=8)
        snap = md.snapshot().copy()
        md.step(10)
        assert not np.allclose(md.x, snap.positions)

    def test_restore_size_mismatch_rejected(self):
        md = MiniMD(n_atoms=27)
        other = MiniMD(n_atoms=64)
        with pytest.raises(ValueError):
            md.restore(other.snapshot())
