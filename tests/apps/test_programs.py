"""Tests for synthetic programs and the NAMD cost model."""

import numpy as np
import pytest

from repro.apps.namd import NamdCostModel, NamdProgram, namd_factory
from repro.apps.synthetic import (
    BarrierSleepBarrier,
    NoopProgram,
    PingPongProgram,
    SleepProgram,
    SwiftSyntheticTask,
    default_registry,
)
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.mpi.comm import SimComm
from repro.mpi.app import RankContext


def run_program(program, n_ranks=2, nodes=None):
    """Run a program's ranks directly over a SimComm (no JETS)."""
    platform = Platform(generic_cluster(nodes=max(2, n_ranks)))
    env = platform.env
    endpoints = list(range(n_ranks))
    comm = SimComm(env, platform.fabric, endpoints)
    results = [None] * n_ranks
    procs = []

    def body(rank):
        ctx = RankContext(
            env=env,
            comm=comm,
            rank=rank,
            size=n_ranks,
            node=platform.node(rank % platform.spec.nodes),
            job_id="t",
        )
        results[rank] = yield from program.run(ctx)

    for r in range(n_ranks):
        procs.append(env.process(body(r)))
    env.run(env.all_of(procs))
    return env, results


class TestSyntheticPrograms:
    def test_noop_returns_immediately(self):
        env, results = run_program(NoopProgram(), n_ranks=1)
        assert env.now == 0.0
        assert results == [None]

    def test_sleep_durations(self):
        env, results = run_program(SleepProgram(2.5), n_ranks=1)
        assert env.now == pytest.approx(2.5)
        assert results == [0]

    def test_sleep_rejects_negative(self):
        with pytest.raises(ValueError):
            SleepProgram(-1)

    def test_barrier_sleep_barrier_synchronizes(self):
        env, results = run_program(BarrierSleepBarrier(1.0), n_ranks=4)
        assert env.now >= 1.0
        assert results == [0, 1, 2, 3]
        assert env.now < 1.5  # overheads are small

    def test_swift_synthetic_writes_to_shared_fs(self):
        prog = SwiftSyntheticTask(0.5)
        platform = Platform(generic_cluster(nodes=2))
        env = platform.env
        comm = SimComm(env, platform.fabric, [0, 1])
        procs = []
        for r in range(2):
            ctx = RankContext(
                env=env, comm=comm, rank=r, size=2,
                node=platform.node(r), job_id="t",
            )
            procs.append(env.process(prog.run(ctx)))
        env.run(env.all_of(procs))
        assert platform.shared_fs.bytes_written == 2 * prog.WRITE_BYTES

    def test_pingpong_returns_series(self):
        prog = PingPongProgram(sizes=[64, 4096], reps=3)
        env, results = run_program(prog, n_ranks=2)
        series = results[0]
        assert len(series) == 2
        assert series[0][0] == 64
        assert series[1][1] > series[0][1] * 0  # times positive
        assert all(t > 0 for _n, t in series)

    def test_pingpong_needs_two_ranks(self):
        with pytest.raises(ValueError):
            run_program(PingPongProgram(sizes=[64]), n_ranks=1)

    def test_default_registry_commands(self):
        reg = default_registry()
        assert set(reg) >= {"noop", "sleep", "mpi-bench", "swift-synth", "namd2.sh"}
        prog = reg["sleep"](["1.5"])
        assert prog.nominal_duration == 1.5


class TestNamdCostModel:
    def test_reference_calibration(self):
        """44,992 atoms × 10 steps ≈ 100 s on 4 BG/P processors."""
        model = NamdCostModel()
        assert model.base_wall_time(4) == pytest.approx(100.0, rel=0.03)

    def test_scaling_with_procs(self):
        model = NamdCostModel()
        assert model.base_wall_time(8) < model.base_wall_time(4)
        # Imperfect: 2x procs gives < 2x speedup.
        assert model.base_wall_time(4) / model.base_wall_time(8) < 2.0

    def test_cpu_speed_scales(self):
        slow = NamdCostModel()
        fast = NamdCostModel(cpu_speed=8.0)
        assert fast.base_wall_time(1) == pytest.approx(
            slow.base_wall_time(1) / 8.0
        )

    def test_wall_time_deterministic_per_tag(self):
        model = NamdCostModel()
        assert model.wall_time(4, "x") == model.wall_time(4, "x")
        assert model.wall_time(4, "x") != model.wall_time(4, "y")

    def test_distribution_matches_fig11(self):
        model = NamdCostModel()
        walls = np.array([model.wall_time(4, f"i{i}") for i in range(800)])
        bulk = np.mean((walls >= 100) & (walls <= 120))
        assert bulk > 0.5
        assert walls.max() < 175
        assert walls.max() > 130
        assert walls.min() > 95

    def test_procs_validation(self):
        with pytest.raises(ValueError):
            NamdCostModel().base_wall_time(0)


class TestNamdProgram:
    def test_factory_parses_args(self):
        prog = namd_factory(["in.pdb", "out.log"])
        assert prog.input_name == "in.pdb"
        assert prog.output_name == "out.log"

    def test_run_returns_energy_and_wall(self):
        prog = NamdProgram("seg.pdb", model=NamdCostModel(cpu_speed=100))
        env, results = run_program(prog, n_ranks=4)
        payload = results[0]
        assert set(payload) == {"energy", "wall"}
        assert payload["wall"] > 0
        assert results[1] is None  # only rank 0 reports

    def test_io_charged_to_shared_fs(self):
        prog = NamdProgram("io.pdb", model=NamdCostModel(cpu_speed=100))
        platform = Platform(generic_cluster(nodes=2))
        env = platform.env
        comm = SimComm(env, platform.fabric, [0, 1])
        procs = []
        for r in range(2):
            ctx = RankContext(
                env=env, comm=comm, rank=r, size=2,
                node=platform.node(r), job_id="t",
            )
            procs.append(env.process(prog.run(ctx)))
        env.run(env.all_of(procs))
        assert platform.shared_fs.bytes_read == prog.model.input_bytes
        assert platform.shared_fs.bytes_written == prog.model.output_bytes

    def test_nominal_duration_is_4proc_wall(self):
        prog = NamdProgram("n.pdb")
        assert prog.nominal_duration == prog.wall_time(4)
