"""Tests for replica-exchange logic: Metropolis rule, ladder, REM driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rem import (
    ReplicaExchangeMD,
    TemperatureLadder,
    exchange_delta,
    should_exchange,
)


class TestExchangeDelta:
    def test_symmetric_zero_for_equal_energies(self):
        assert exchange_delta(-5.0, 1.0, -5.0, 2.0) == pytest.approx(0.0)

    def test_favourable_swap_negative_delta(self):
        # Hot replica (t=2) has LOWER energy than cold (t=1): swapping is
        # always accepted (delta <= 0).
        delta = exchange_delta(-3.0, 1.0, -8.0, 2.0)
        assert delta <= 0
        assert should_exchange(-3.0, 1.0, -8.0, 2.0, u=0.999)

    def test_unfavourable_swap_requires_luck(self):
        delta = exchange_delta(-8.0, 1.0, -3.0, 2.0)
        assert delta > 0
        p = np.exp(-delta)
        assert should_exchange(-8.0, 1.0, -3.0, 2.0, u=p * 0.9)
        assert not should_exchange(-8.0, 1.0, -3.0, 2.0, u=min(p * 1.1, 0.999))

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            exchange_delta(0, -1, 0, 1)

    def test_u_validation(self):
        with pytest.raises(ValueError):
            should_exchange(0, 1, 0, 2, u=1.5)

    @given(
        e_i=st.floats(-100, 100),
        e_j=st.floats(-100, 100),
        t_i=st.floats(0.1, 10),
        t_j=st.floats(0.1, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_pair_order_invariance(self, e_i, e_j, t_i, t_j):
        """Δ(i,j) = Δ(j,i): a swap is one joint move, so the acceptance
        probability must not depend on which replica is listed first."""
        d1 = exchange_delta(e_i, t_i, e_j, t_j)
        d2 = exchange_delta(e_j, t_j, e_i, t_i)
        assert d1 == pytest.approx(d2, abs=1e-9)

    @given(
        e=st.floats(-100, 100),
        t_i=st.floats(0.1, 10),
        t_j=st.floats(0.1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_equal_energies_always_accepted(self, e, t_i, t_j):
        """Equal energies give Δ=0 — the swap is free and always taken."""
        assert should_exchange(e, t_i, e, t_j, u=0.0)
        assert should_exchange(e, t_i, e, t_j, u=0.999)


class TestTemperatureLadder:
    def test_geometric_spacing(self):
        ladder = TemperatureLadder(1.0, 8.0, 4)
        ratios = [
            ladder[i + 1] / ladder[i] for i in range(3)
        ]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_endpoints(self):
        ladder = TemperatureLadder(0.5, 2.0, 5)
        assert ladder[0] == pytest.approx(0.5)
        assert ladder[4] == pytest.approx(2.0)
        assert len(ladder) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            TemperatureLadder(1.0, 2.0, 1)
        with pytest.raises(ValueError):
            TemperatureLadder(2.0, 1.0, 4)


class TestReplicaExchangeMD:
    @pytest.fixture(scope="class")
    def rem(self):
        rem = ReplicaExchangeMD(
            n_replicas=4, n_atoms=27, steps_per_segment=8, seed=2
        )
        rem.run(8)
        return rem

    def test_temperature_multiset_preserved(self, rem):
        """Exchanges permute the ladder; no temperature is lost/duplicated."""
        current = sorted(rem.ladder_temperatures())
        original = sorted(rem.ladder.temperatures)
        assert np.allclose(current, original)

    def test_rung_assignment_is_permutation(self, rem):
        assert sorted(rem.rung_of_replica) == list(range(4))

    def test_rung_matches_temperature(self, rem):
        for rep, rung in enumerate(rem.rung_of_replica):
            assert rem.replicas[rep].temperature == pytest.approx(
                rem.ladder[rung]
            )

    def test_some_exchanges_attempted(self, rem):
        assert len(rem.exchanges) > 0
        assert 0.0 <= rem.acceptance_rate() <= 1.0

    def test_energy_history_recorded(self, rem):
        assert len(rem.energy_history) == 8
        assert all(len(e) == 4 for e in rem.energy_history)

    def test_accepted_record_consistency(self, rem):
        """Every record's Metropolis exponent is finite and the decision
        respects delta<=0 ⇒ accepted."""
        for rec in rem.exchanges:
            assert np.isfinite(rec.delta)
            if rec.delta <= 0:
                assert rec.accepted

    def test_needs_two_replicas(self):
        with pytest.raises(ValueError):
            ReplicaExchangeMD(n_replicas=1)

    def test_parity_alternates(self):
        rem = ReplicaExchangeMD(
            n_replicas=4, n_atoms=27, steps_per_segment=2, seed=3
        )
        rem.segment()
        rem.exchange_round()
        rem.segment()
        rem.exchange_round()
        rounds = {}
        for rec in rem.exchanges:
            rounds.setdefault(rec.round, []).append(rec.pair)
        # Round 0 pairs rungs (0,1),(2,3): 2 attempts; round 1 pairs (1,2).
        assert len(rounds[0]) == 2
        assert len(rounds[1]) == 1

    def test_deterministic(self):
        def once():
            rem = ReplicaExchangeMD(
                n_replicas=3, n_atoms=27, steps_per_segment=4, seed=11
            )
            rem.run(4)
            return rem.acceptance_rate(), rem.rung_of_replica

        assert once() == once()
