"""Tests for the process model and ZeptoOS configuration."""

import pytest

from repro.cluster.machine import generic_cluster, surveyor
from repro.cluster.platform import Platform
from repro.oslayer.process import ExecutableImage, ProcessCostSpec
from repro.oslayer.zeptoos import (
    CNK_DEFAULT,
    LINUX,
    NodeCapabilityError,
    ZEPTO_TUNED,
)
from tests.conftest import run_gen


class TestExecutableImage:
    def test_total_bytes_includes_libraries(self):
        img = ExecutableImage(
            "app", 100, libraries=(ExecutableImage("lib", 50),)
        )
        assert img.total_bytes() == 150

    def test_nested_libraries(self):
        inner = ExecutableImage("inner", 10)
        mid = ExecutableImage("mid", 20, libraries=(inner,))
        top = ExecutableImage("top", 30, libraries=(mid,))
        assert top.total_bytes() == 60


class TestLoadExecutable:
    def test_staged_image_loads_from_ramfs(self):
        platform = Platform(generic_cluster(nodes=1))
        node = platform.node(0)
        img = ExecutableImage("fast", 1 << 20)
        node.stage(img)
        t = run_gen(
            platform.env, node.exec_process(img)
        )
        # RAM-FS load: time is dominated by fork_exec, not the read.
        assert platform.env.now < node.process_costs.fork_exec * 2

    def test_unstaged_image_reads_shared_fs(self):
        platform = Platform(generic_cluster(nodes=1))
        node = platform.node(0)
        img = ExecutableImage("slow", 64 << 20)
        run_gen(platform.env, node.exec_process(img))
        assert platform.shared_fs.bytes_read == 64 << 20

    def test_libraries_loaded_too(self):
        platform = Platform(generic_cluster(nodes=1))
        node = platform.node(0)
        img = ExecutableImage(
            "app", 1 << 20, libraries=(ExecutableImage("lib", 2 << 20),)
        )
        run_gen(platform.env, node.exec_process(img))
        assert platform.shared_fs.bytes_read == 3 << 20

    def test_staging_halves_subsequent_loads(self):
        platform = Platform(generic_cluster(nodes=1))
        node = platform.node(0)
        img = ExecutableImage(
            "app", 8 << 20, libraries=(ExecutableImage("lib", 8 << 20),)
        )
        node.stage(img)
        run_gen(platform.env, node.exec_process(img))
        assert platform.shared_fs.bytes_read == 0


class TestZeptoConfig:
    def test_cnk_has_no_sockets(self):
        with pytest.raises(NodeCapabilityError):
            CNK_DEFAULT.require_sockets()
        with pytest.raises(NodeCapabilityError):
            CNK_DEFAULT.require_ip()

    def test_zepto_tuned_supports_ip(self):
        ZEPTO_TUNED.require_sockets()
        ZEPTO_TUNED.require_ip()

    def test_linux_supports_ip(self):
        LINUX.require_ip()

    def test_surveyor_uses_zepto(self):
        spec = surveyor(4)
        assert spec.os_config.posix_sockets
        assert spec.os_config.ramfs
        assert spec.os_config.boot_overhead > 0


class TestProcessCostSpec:
    def test_fork_jitter_deterministic_per_seed(self):
        def run_once(seed):
            platform = Platform(generic_cluster(nodes=1), seed=seed)
            node = platform.node(0)
            img = ExecutableImage("x", 1024)
            node.stage(img)
            run_gen(platform.env, node.exec_process(img))
            return platform.env.now

        assert run_once(1) == run_once(1)
        assert run_once(1) != run_once(2)

    def test_zero_jitter_exact_cost(self):
        spec = generic_cluster(nodes=1)
        from dataclasses import replace

        spec = replace(
            spec, process_costs=ProcessCostSpec(fork_exec=0.01, fork_jitter=0.0)
        )
        platform = Platform(spec)
        node = platform.node(0)
        img = ExecutableImage("x", 0)
        node.stage(img)
        run_gen(platform.env, node.exec_process(img))
        assert platform.env.now == pytest.approx(0.01, abs=1e-4)
