"""Tests for shared/local filesystem models."""

import pytest

from repro.oslayer.filesystem import (
    GPFS,
    PVFS,
    RAMFS_SPEC,
    FilesystemSpec,
    LocalRamFS,
    SharedFilesystem,
)
from repro.simkernel import Environment


class TestSharedFilesystem:
    def test_read_takes_modelled_time(self, env):
        fs = SharedFilesystem(env, GPFS)

        def proc():
            yield from fs.read(1 << 20)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(fs.estimate(1 << 20))
        assert fs.bytes_read == 1 << 20

    def test_contention_slows_concurrent_clients(self, env):
        fs = SharedFilesystem(env, GPFS)
        finish = []

        def reader():
            yield from fs.read(8 << 20)
            finish.append(env.now)

        for _ in range(16):
            env.process(reader())
        env.run()
        contended = max(finish)

        env2 = Environment()
        fs2 = SharedFilesystem(env2, GPFS)

        def single():
            yield from fs2.read(8 << 20)
            return env2.now

        p = env2.process(single())
        env2.run()
        assert contended > p.value * 1.3

    def test_contention_capped(self, env):
        spec = FilesystemSpec(
            name="t", metadata_latency=0, latency=0, bandwidth=1e6,
            contention_alpha=10.0, contention_cap=5.0,
        )
        fs = SharedFilesystem(env, spec)
        fs._active = 100
        assert fs._factor() == 5.0

    def test_active_client_count_restored_on_completion(self, env):
        fs = SharedFilesystem(env, PVFS)

        def reader():
            yield from fs.read(1024)

        env.process(reader())
        env.process(reader())
        env.run()
        assert fs.active_clients == 0

    def test_write_accounting(self, env):
        fs = SharedFilesystem(env, PVFS)

        def writer():
            yield from fs.write(2048)

        env.process(writer())
        env.run()
        assert fs.bytes_written == 2048


class TestLocalRamFS:
    def test_store_and_read(self, env):
        ram = LocalRamFS(env)
        ram.store("libfoo", 4096)
        assert ram.has("libfoo")
        assert ram.size("libfoo") == 4096
        assert ram.files() == ["libfoo"]

        def proc():
            yield from ram.read("libfoo")
            return env.now

        p = env.process(proc())
        env.run()
        assert 0 < p.value < 1e-3  # RAM-fast

    def test_missing_file_raises(self, env):
        ram = LocalRamFS(env)
        with pytest.raises(KeyError):
            ram.size("nope")

    def test_negative_size_rejected(self, env):
        ram = LocalRamFS(env)
        with pytest.raises(ValueError):
            ram.store("x", -1)

    def test_ramfs_much_faster_than_gpfs(self, env):
        ram = LocalRamFS(env)
        ram.store("bin", 1 << 20)
        shared = SharedFilesystem(env, GPFS)
        assert shared.estimate(1 << 20) > 5 * (
            RAMFS_SPEC.metadata_latency
            + RAMFS_SPEC.latency
            + (1 << 20) / RAMFS_SPEC.bandwidth
        )
