"""Reduced-scale runs of every experiment harness, with the paper's
qualitative claims asserted where the reduced scale supports them."""

import pytest

from repro.experiments import (
    ablations,
    capacity,
    fig06_sequential,
    fig07_cluster,
    fig08_pingpong,
    fig09_bgp,
    fig10_faults,
    fig11_namd_dist,
    fig12_namd_util,
    fig15_swift_synthetic,
    fig18_rem,
)


class TestFig06:
    def test_rate_grows_with_allocation(self):
        rows = fig06_sequential.run(node_sizes=(16, 64), tasks_per_node=8)
        assert rows[1]["rate"] > rows[0]["rate"]
        assert all(r["completed"] == r["nodes"] * 8 for r in rows)

    def test_rate_below_ideal(self):
        rows = fig06_sequential.run(node_sizes=(16,), tasks_per_node=8)
        assert rows[0]["rate"] <= rows[0]["ideal"]


class TestFig07:
    def test_jets_beats_shellscript(self):
        rows = fig07_cluster.run(alloc_sizes=(8, 16), jobs_per_node=4)
        fig07_cluster.verify(rows)


class TestFig08:
    def test_pingpong_shape(self):
        rows = fig08_pingpong.run()
        fig08_pingpong.verify(rows)

    def test_latency_grows_with_size(self):
        rows = fig08_pingpong.run(sizes=[64, 1 << 20])
        assert rows[1]["tcp_us"] > rows[0]["tcp_us"]
        assert rows[1]["native_us"] > rows[0]["native_us"]


class TestFig09:
    def test_small_grid(self):
        rows = fig09_bgp.run(
            alloc_sizes=(32,), task_sizes=(4, 8), tasks_per_node=4
        )
        assert all(0.5 < r["util"] <= 1.0 for r in rows)
        assert all(r["wireup_ms"] > 0 for r in rows)


class TestFig10:
    def test_fault_run(self):
        result = fig10_faults.run(workers=8, fault_interval=4.0, sample_dt=4.0)
        fig10_faults.verify(result)


class TestFig11:
    def test_distribution(self):
        result = fig11_namd_dist.run(n_jobs=400)
        fig11_namd_dist.verify(result)


class TestFig12:
    def test_small_namd_batch(self):
        rows = fig12_namd_util.run(
            alloc_sizes=(32,), executions_per_node=4, keep_platform=True
        )
        assert rows[0]["util"] > 0.8
        load = fig12_namd_util.load_level(rows[0]["report"])
        fig12_namd_util.verify_load(load, 32)


class TestFig15:
    def test_grid_runs(self):
        rows = fig15_swift_synthetic.run(
            alloc_sizes=(8,), nodes_per_job=(1, 2), ppns=(1, 4),
            jobs_per_node=4,
        )
        assert all(r["util"] > 0 for r in rows)
        fig15_swift_synthetic.verify(rows)


class TestFig18:
    def test_serial_and_mpi(self):
        serial = fig18_rem.run_serial(alloc_sizes=(4, 8), n_exchanges=2)
        mpi = fig18_rem.run_mpi(alloc_sizes=(8, 16), n_exchanges=2)
        assert all(0 < r["util"] <= 1.0 for r in serial + mpi)
        assert all(r["failures"] == 0 for r in serial + mpi)
        assert serial[0]["segments"] == 2 * 4 * 2


class TestCapacity:
    def test_scaled_requirement(self):
        result = capacity.run(scale=32, rounds=2)
        capacity.verify(result)


class TestAblations:
    def test_staging(self):
        rows = ablations.run_staging(nodes=8, jobs=16)
        assert len(rows) == 2

    def test_scheduling(self):
        rows = ablations.run_scheduling(nodes=8)
        assert {r["policy"] for r in rows} == {"fifo", "priority", "backfill"}

    def test_grouping(self):
        rows = ablations.run_grouping(nodes=27, jobs=12)
        assert {r["grouping"] for r in rows} == {"fifo", "topology"}

    def test_spectrum(self):
        rows = ablations.run_spectrum(workers=16)
        assert rows[1]["t_first_worker"] < rows[0]["t_first_worker"]

    def test_dispatcher_sensitivity(self):
        rows = ablations.run_dispatcher_sensitivity(
            nodes=32, spawn_factors=(1.0, 16.0)
        )
        assert rows[-1]["util"] <= rows[0]["util"]


class TestMpiio:
    def test_crossover(self):
        from repro.experiments import mpiio

        rows = mpiio.run(alphas=(0.0, 1.0), rounds=4)
        mpiio.verify(rows)
