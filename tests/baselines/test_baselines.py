"""Tests for the baseline systems JETS is compared against."""

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.baselines.falkon import FalkonSimulation, FalkonUnsupportedError
from repro.baselines.ips import IpsUnsupportedError, run_ips_batch
from repro.baselines.shellscript import run_shellscript_batch
from repro.cluster.machine import breadboard, generic_cluster, surveyor
from repro.core.jets import JetsConfig, Simulation, service_config_for
from repro.core.tasklist import JobSpec, TaskList


def mpi_jobs(count, nodes=4, duration=1.0):
    return [
        JobSpec(
            program=BarrierSleepBarrier(duration), nodes=nodes, ppn=1, mpi=True
        )
        for _ in range(count)
    ]


class TestShellScript:
    def test_runs_all_jobs(self):
        report = run_shellscript_batch(
            breadboard(8), mpi_jobs(4), allocation_nodes=8
        )
        assert report.jobs_completed == 4
        assert 0 < report.utilization < 1

    def test_serial_execution_wastes_idle_nodes(self):
        """4-node jobs on a 32-node allocation: ≤ 1/8 utilization."""
        report = run_shellscript_batch(
            breadboard(32), mpi_jobs(6, nodes=4), allocation_nodes=32
        )
        assert report.utilization < 0.15

    def test_jets_beats_shellscript(self):
        machine = breadboard(16)
        shell = run_shellscript_batch(
            machine, mpi_jobs(8, nodes=4), allocation_nodes=16
        )
        sim = Simulation(
            machine, JetsConfig(service=service_config_for(machine))
        )
        jets = sim.run_standalone(
            TaskList(mpi_jobs(8, nodes=4)), allocation_nodes=16
        )
        assert jets.utilization > 2 * shell.utilization


class TestIps:
    def test_refuses_bgp(self):
        with pytest.raises(IpsUnsupportedError):
            run_ips_batch(surveyor(16), mpi_jobs(2))

    def test_runs_concurrently_on_x86(self):
        report = run_ips_batch(
            breadboard(16), mpi_jobs(8, nodes=4, duration=2.0),
            allocation_nodes=16,
        )
        assert report.jobs_completed == 8
        # Concurrent (4 groups): span ~2 batches, far below 8 serial runs.
        assert report.span < 4 * 2.0 + 4

    def test_mispredictions_recorded(self):
        report = run_ips_batch(
            breadboard(8), mpi_jobs(40, nodes=1, duration=0.1),
            allocation_nodes=8, seed=3,
        )
        assert report.mispredictions > 0

    def test_jets_beats_ips_on_short_tasks(self):
        machine = breadboard(16)
        ips = run_ips_batch(
            machine, mpi_jobs(16, nodes=4, duration=1.0), allocation_nodes=16
        )
        sim = Simulation(
            machine, JetsConfig(service=service_config_for(machine))
        )
        jets = sim.run_standalone(
            TaskList(mpi_jobs(16, nodes=4, duration=1.0)), allocation_nodes=16
        )
        assert jets.utilization > ips.utilization


class TestFalkon:
    def test_rejects_mpi_jobs(self):
        falkon = FalkonSimulation(generic_cluster(nodes=4))
        with pytest.raises(FalkonUnsupportedError):
            falkon.run_batch(mpi_jobs(1))

    def test_runs_serial_batch(self):
        falkon = FalkonSimulation(generic_cluster(nodes=4))
        jobs = [
            JobSpec(program=SleepProgram(0.5), nodes=1, mpi=False)
            for _ in range(8)
        ]
        report = falkon.run_batch(jobs)
        assert report.jobs_completed == 8

    def test_serial_rate_comparable_to_jets(self):
        """Falkon was state of the art for serial MTC; our model gives it
        the same pilot architecture, so rates match JETS closely."""
        machine = generic_cluster(nodes=4, cores_per_node=2)
        jobs = lambda: [
            JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False)
            for _ in range(40)
        ]
        falkon = FalkonSimulation(machine).run_batch(jobs())
        jets = Simulation(machine).run_standalone(TaskList(jobs()))
        assert falkon.task_rate == pytest.approx(jets.task_rate, rel=0.2)
