"""Tests for the Swift-script surface syntax (@app, foreach, FileArray)."""

import pytest

from repro.apps.synthetic import SleepProgram, SwiftSyntheticTask
from repro.cluster.batch import BatchScheduler
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.tasklist import JobSpec
from repro.swift.coasters import CoastersConfig, CoasterService
from repro.swift.dataflow import SwiftEngine, WorkflowError
from repro.swift.language import FileArray, SwiftScript
from repro.swift.provider import CoastersProvider


@pytest.fixture
def script_stack():
    platform = Platform(generic_cluster(nodes=4, cores_per_node=2))
    batch = BatchScheduler(platform, boot_delay=0)
    service = CoasterService(platform, batch, CoastersConfig(workers=4))
    service.start()
    engine = SwiftEngine(platform, CoastersProvider(service))
    return platform, engine, SwiftScript(engine)


class TestApp:
    def test_app_call_returns_future(self, script_stack):
        platform, engine, lang = script_stack

        @lang.app
        def task(i):
            return JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False)

        out = task(3)
        assert not out.is_set
        platform.env.run(engine.drained())
        assert out.is_set

    def test_future_arguments_create_dependencies(self, script_stack):
        platform, engine, lang = script_stack
        order = []

        @lang.app
        def stage(tag, upstream=None):
            order.append(tag)
            return JobSpec(program=SleepProgram(0.3), nodes=1, mpi=False)

        first = stage("a")
        stage("b", upstream=first)
        platform.env.run(engine.drained())
        assert order == ["a", "b"]

    def test_positional_future_resolved_to_value(self, script_stack):
        platform, engine, lang = script_stack
        seen = {}

        @lang.app
        def consumer(value):
            seen["value"] = value
            return JobSpec(program=SleepProgram(0.1), nodes=1, mpi=False)

        producer_out = engine.future("p")
        consumer(producer_out)

        def setter():
            yield platform.env.timeout(1)
            producer_out.set("payload")

        platform.env.process(setter())
        platform.env.run(engine.drained())
        assert seen["value"] == "payload"

    def test_non_jobspec_return_recorded_as_failure(self, script_stack):
        platform, engine, lang = script_stack

        @lang.app
        def broken():
            return "not a job"

        out = broken()
        platform.env.run(engine.drained())
        assert engine.failures and "broken" in engine.failures[0]
        assert out.is_set and out.value is None  # downstream can drain


class TestForeach:
    def test_fig14_style_loop(self, script_stack):
        """The paper's Fig. 14 synthetic-workload script shape."""
        platform, engine, lang = script_stack

        @lang.app
        def synthetic(i, duration=0.5, nodes=2, ppn=1):
            return JobSpec(
                program=SwiftSyntheticTask(duration), nodes=nodes, ppn=ppn,
                mpi=True,
            )

        outs = lang.foreach(range(6), synthetic)
        platform.env.run(engine.drained())
        assert len(outs) == 6
        assert all(o.is_set for o in outs)

    def test_iterations_run_concurrently(self, script_stack):
        platform, engine, lang = script_stack

        @lang.app
        def sleepy(i):
            return JobSpec(program=SleepProgram(1.0), nodes=1, mpi=False)

        lang.foreach(range(8), sleepy)
        platform.env.run(engine.drained())
        # 8 × 1-s tasks on 8 slots: far less than serial time.
        assert platform.env.now < 4.0


class TestFileArray:
    def test_lazy_creation_and_assignment(self, script_stack):
        _platform, engine, lang = script_stack
        arr = lang.array("c")
        fut = arr[1, 2]  # referenced before assignment
        assert not fut.is_set
        arr[1, 2] = "value"
        assert arr[1, 2].value == "value"
        assert (1, 2) in arr
        assert len(arr) == 1

    def test_double_assignment_rejected(self, script_stack):
        _platform, engine, lang = script_stack
        arr = lang.array()
        arr[0] = 1
        with pytest.raises(WorkflowError):
            arr[0] = 2

    def test_assigned_snapshot(self, script_stack):
        _platform, engine, lang = script_stack
        arr = lang.array()
        arr[0] = "x"
        _ = arr[1]  # created but unset
        assert arr.assigned() == {0: "x"}

    def test_array_wires_dataflow(self, script_stack):
        platform, engine, lang = script_stack
        arr = lang.array("o")

        @lang.app
        def stage(i, prev=None):
            return JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False)

        # Chain through the array: stage i consumes o[i-1], produces o[i].
        prev = None
        for i in range(3):
            out = stage(i, prev=prev, outputs=[arr[i]])
            prev = arr[i]
        platform.env.run(engine.drained())
        assert len(arr.assigned()) == 3
