"""Tests for the Fig. 17 REM dataflow over the Swift engine."""

import pytest

from repro.cluster.batch import BatchScheduler
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.apps.namd import NamdCostModel
from repro.swift.coasters import CoastersConfig, CoasterService
from repro.swift.dataflow import SwiftEngine
from repro.swift.provider import CoastersProvider, LoginProvider
from repro.swift.rem_workflow import RemWorkflowConfig, run_rem_workflow

FAST_MODEL = NamdCostModel(cpu_speed=200.0)  # tiny segments for tests


def run_workflow(cfg, workers=4):
    platform = Platform(generic_cluster(nodes=workers, cores_per_node=4))
    batch = BatchScheduler(platform, boot_delay=0)
    svc = CoasterService(
        platform,
        batch,
        CoastersConfig(workers=workers, worker_slots=1 if cfg.serial else None),
    )
    svc.start()
    engine = SwiftEngine(platform, CoastersProvider(svc))
    result = run_rem_workflow(
        engine, cfg, exchange_provider=LoginProvider(platform), model=FAST_MODEL
    )
    platform.env.run(engine.drained())
    return platform, svc, result


class TestStructure:
    def test_all_segments_run(self):
        cfg = RemWorkflowConfig(
            n_replicas=4, n_exchanges=3, nodes_per_segment=2, ppn=1
        )
        _plat, _svc, result = run_workflow(cfg)
        assert result.segments_run == 4 * 3
        assert not result.failures

    def test_exchange_counts_follow_parity(self):
        """Round parity alternates pairs: R=4 gives 2,1,2 attempts."""
        cfg = RemWorkflowConfig(
            n_replicas=4, n_exchanges=3, nodes_per_segment=1, ppn=1
        )
        _plat, _svc, result = run_workflow(cfg)
        assert result.exchanges_attempted == 2 + 1 + 2

    def test_serial_mode_runs_one_process_segments(self):
        cfg = RemWorkflowConfig(n_replicas=4, n_exchanges=2, serial=True)
        _plat, svc, result = run_workflow(cfg)
        assert result.segments_run == 8
        namd_jobs = [
            c for c in svc.dispatcher.completed
            if c.ok and c.job.program.image.name == "namd2"
        ]
        assert all(c.job.world_size == 1 for c in namd_jobs)

    def test_acceptance_rate_is_sane(self):
        cfg = RemWorkflowConfig(n_replicas=6, n_exchanges=4, serial=True)
        _plat, _svc, result = run_workflow(cfg, workers=6)
        assert 0.0 <= result.acceptance_rate <= 1.0
        assert result.exchanges_attempted > 0

    def test_segment_walls_recorded(self):
        cfg = RemWorkflowConfig(n_replicas=2, n_exchanges=2, serial=True)
        _plat, _svc, result = run_workflow(cfg, workers=2)
        assert len(result.segment_walls) == result.segments_run
        assert all(w > 0 for w in result.segment_walls)


class TestDependencies:
    def test_segment_j_waits_for_exchange_round(self):
        """A replica's round-2 segment starts only after a round-1
        exchange involving it completed."""
        cfg = RemWorkflowConfig(
            n_replicas=2, n_exchanges=2, nodes_per_segment=1, ppn=1
        )
        platform, svc, result = run_workflow(cfg)
        dispatches = {}
        for c in svc.dispatcher.completed:
            if not c.ok:
                continue
            name = getattr(c.job.program, "input_name", None)
            if name:
                dispatches[name] = (c.t_dispatched, c.t_done)
        # r0s2 must start after r0s1 AND r1s1 finished (the exchange
        # couples both trajectories).
        assert dispatches["r0s2"][0] > dispatches["r0s1"][1]
        assert dispatches["r0s2"][0] > dispatches["r1s1"][1]

    def test_determinism(self):
        def once():
            cfg = RemWorkflowConfig(
                n_replicas=4, n_exchanges=2, serial=True, seed=5
            )
            platform, _svc, result = run_workflow(cfg)
            return (
                result.exchanges_accepted,
                round(platform.env.now, 6),
            )

        assert once() == once()
