"""Tests for the Swift dataflow engine (futures, calls, dependencies)."""

import pytest

from repro.apps.synthetic import SleepProgram
from repro.cluster.batch import BatchScheduler
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.tasklist import JobSpec
from repro.swift.coasters import CoastersConfig, CoasterService
from repro.swift.dataflow import Future, SwiftEngine, WorkflowError
from repro.swift.provider import CoastersProvider, LoginProvider


@pytest.fixture
def engine_stack():
    platform = Platform(generic_cluster(nodes=4, cores_per_node=2))
    batch = BatchScheduler(platform, boot_delay=0)
    service = CoasterService(platform, batch, CoastersConfig(workers=4))
    service.start()
    engine = SwiftEngine(platform, CoastersProvider(service))
    return platform, engine, service


class TestFuture:
    def test_single_assignment(self, small_platform):
        engine = SwiftEngine(small_platform, provider=None)
        f = engine.future("x")
        assert not f.is_set
        f.set(10)
        assert f.is_set and f.value == 10
        with pytest.raises(WorkflowError):
            f.set(11)

    def test_read_before_assignment_raises(self, small_platform):
        engine = SwiftEngine(small_platform, provider=None)
        f = engine.future()
        with pytest.raises(WorkflowError):
            _ = f.value

    def test_wait_blocks_until_set(self, small_platform):
        engine = SwiftEngine(small_platform, provider=None)
        env = small_platform.env
        f = engine.future()
        times = {}

        def reader():
            v = yield f.wait()
            times["read"] = (env.now, v)

        def writer():
            yield env.timeout(5)
            f.set("ready")

        env.process(reader())
        env.process(writer())
        env.run()
        assert times["read"] == (5, "ready")

    def test_futures_helper_names(self, small_platform):
        engine = SwiftEngine(small_platform, provider=None)
        fs = engine.futures(3, prefix="o")
        assert [f.name for f in fs] == ["o0", "o1", "o2"]


class TestCall:
    def test_call_waits_for_inputs(self, engine_stack):
        platform, engine, _svc = engine_stack
        env = platform.env
        a = engine.future("a")
        out = engine.future("out")

        def make_job(values):
            assert values == ["input-value"]
            return JobSpec(program=SleepProgram(0.5), nodes=1, mpi=False)

        engine.call(make_job, inputs=[a], outputs=[out])

        def setter():
            yield env.timeout(3)
            a.set("input-value")

        env.process(setter())
        env.run(engine.drained())
        assert out.is_set
        assert env.now > 3

    def test_chain_of_dependencies_executes_in_order(self, engine_stack):
        platform, engine, _svc = engine_stack
        order = []

        def make_stage(tag):
            def make_job(_values):
                order.append(tag)
                return JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False)

            return make_job

        f0 = engine.future()
        f0.set(None)
        prev = f0
        for tag in ("a", "b", "c"):
            nxt = engine.future()
            engine.call(make_stage(tag), inputs=[prev], outputs=[nxt])
            prev = nxt
        platform.env.run(engine.drained())
        assert order == ["a", "b", "c"]

    def test_independent_calls_run_concurrently(self, engine_stack):
        platform, engine, _svc = engine_stack

        def make_job(_values):
            return JobSpec(program=SleepProgram(1.0), nodes=1, mpi=False)

        for _ in range(4):
            engine.call(make_job)
        platform.env.run(engine.drained())
        # 4×1 s tasks over 4 workers: wall clock ~1 s, not ~4 s.
        assert platform.env.now < 3.0

    def test_failure_recorded_and_outputs_drained(self, engine_stack):
        platform, engine, _svc = engine_stack
        out = engine.future("out")

        def make_job(_values):
            # Oversized: the dispatcher fails it immediately.
            return JobSpec(program=SleepProgram(1), nodes=99, mpi=True)

        engine.call(make_job, outputs=[out], name="doomed")
        platform.env.run(engine.drained())
        assert engine.failures
        assert out.is_set  # set to None so downstream can drain

    def test_mpi_job_through_engine(self, engine_stack):
        platform, engine, svc = engine_stack
        from repro.apps.synthetic import BarrierSleepBarrier

        def make_job(_values):
            return JobSpec(
                program=BarrierSleepBarrier(0.5), nodes=2, ppn=2, mpi=True
            )

        engine.call(make_job)
        platform.env.run(engine.drained())
        done = [c for c in svc.dispatcher.completed if c.ok]
        assert len(done) == 1
        assert done[0].result.world_size == 4

    def test_drained_reusable(self, engine_stack):
        platform, engine, _svc = engine_stack

        def make_job(_values):
            return JobSpec(program=SleepProgram(0.1), nodes=1, mpi=False)

        engine.call(make_job)
        platform.env.run(engine.drained())
        t1 = platform.env.now
        engine.call(make_job)
        platform.env.run(engine.drained())
        assert platform.env.now > t1

    def test_run_function_tracked(self, engine_stack):
        platform, engine, _svc = engine_stack
        log = []

        def logic():
            yield platform.env.timeout(2)
            log.append(platform.env.now)

        engine.run_function(logic)
        platform.env.run(engine.drained())
        assert log == [2]
