"""Tests for the CoasterService, providers, and spectrum allocation."""

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.batch import BatchScheduler
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.tasklist import JobSpec
from repro.swift.coasters import CoastersConfig, CoasterService, spectrum_blocks
from repro.swift.provider import BatchProvider, LoginProvider


class TestSpectrumBlocks:
    def test_blocks_sum_to_total(self):
        for total in (1, 5, 17, 64, 100):
            assert sum(spectrum_blocks(total)) == total

    def test_geometric_shape(self):
        assert spectrum_blocks(64)[:3] == [32, 16, 8]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            spectrum_blocks(0)


class TestCoasterService:
    def test_provisions_workers_and_runs_job(self):
        platform = Platform(generic_cluster(nodes=4))
        batch = BatchScheduler(platform, boot_delay=1.0)
        svc = CoasterService(platform, batch, CoastersConfig(workers=3))
        svc.start()
        platform.env.run(svc.ready)
        assert len(svc.workers) == 3
        done = svc.submit(
            JobSpec(program=BarrierSleepBarrier(0.3), nodes=2, mpi=True)
        )
        completed = platform.env.run(done)
        assert completed.ok

    def test_spectrum_uses_multiple_blocks(self):
        platform = Platform(generic_cluster(nodes=8))
        batch = BatchScheduler(platform, boot_delay=0.5)
        svc = CoasterService(
            platform, batch, CoastersConfig(workers=7, spectrum=True)
        )
        svc.start()
        platform.env.run(svc.ready)
        assert len(svc.allocations) >= 3
        assert sum(a.size for a in svc.allocations) == 7

    def test_shutdown_releases_blocks(self):
        platform = Platform(generic_cluster(nodes=4))
        batch = BatchScheduler(platform, boot_delay=0)
        svc = CoasterService(platform, batch, CoastersConfig(workers=4))
        svc.start()
        platform.env.run(svc.ready)

        def closer():
            yield from svc.shutdown()

        p = platform.env.process(closer())
        platform.env.run(p)
        assert batch.free_nodes == 4

    def test_double_start_rejected(self):
        platform = Platform(generic_cluster(nodes=2))
        batch = BatchScheduler(platform)
        svc = CoasterService(platform, batch, CoastersConfig(workers=2))
        svc.start()
        with pytest.raises(RuntimeError):
            svc.start()


class TestLoginProvider:
    def test_runs_serial_task_on_login_host(self):
        platform = Platform(generic_cluster(nodes=2))
        provider = LoginProvider(platform, cores=2)
        done = provider.submit(
            JobSpec(program=SleepProgram(1.0), nodes=1, mpi=False)
        )
        completed = platform.env.run(done)
        assert completed.ok
        assert completed.result.rank0_value == 0
        assert platform.env.now >= 1.0

    def test_rejects_mpi(self):
        platform = Platform(generic_cluster(nodes=2))
        provider = LoginProvider(platform)
        with pytest.raises(ValueError):
            provider.submit(
                JobSpec(program=SleepProgram(1), nodes=2, ppn=1, mpi=True)
            )

    def test_limited_cores_serialize(self):
        platform = Platform(generic_cluster(nodes=2))
        provider = LoginProvider(platform, cores=1)
        e1 = provider.submit(JobSpec(program=SleepProgram(1), nodes=1, mpi=False))
        e2 = provider.submit(JobSpec(program=SleepProgram(1), nodes=1, mpi=False))
        platform.env.run(platform.env.all_of([e1, e2]))
        assert platform.env.now >= 2.0


class TestBatchProvider:
    def test_each_task_pays_allocation_boot(self):
        platform = Platform(generic_cluster(nodes=4))
        batch = BatchScheduler(platform, boot_delay=30.0)
        provider = BatchProvider(platform, batch)
        done = provider.submit(
            JobSpec(program=BarrierSleepBarrier(1.0), nodes=2, mpi=True)
        )
        completed = platform.env.run(done)
        assert completed.ok
        assert platform.env.now > 30.0  # dominated by the boot

    def test_nodes_released_after_task(self):
        platform = Platform(generic_cluster(nodes=2))
        batch = BatchScheduler(platform, boot_delay=0)
        provider = BatchProvider(platform, batch)
        done = provider.submit(
            JobSpec(program=SleepProgram(0.5), nodes=2, ppn=1, mpi=True)
        )
        platform.env.run(done)
        assert batch.free_nodes == 2
