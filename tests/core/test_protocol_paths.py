"""Protocol fault paths: malformed messages, loss windows, size discipline.

Covers the hardened endpoint behaviour: an unknown message kind tears
down exactly one worker (never the dispatcher event loop), workers die
cleanly on malformed dispatcher traffic, and every send size flows
through the protocol registry.
"""

from __future__ import annotations

from repro.analysis.explore import wire_messages
from repro.analysis.protocol import validate_sessions
from repro.analysis.tracecheck import validate_trace
from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.dispatcher import JetsDispatcher, JetsServiceConfig
from repro.core.tasklist import JobSpec
from repro.core.worker import WorkerAgent


def start_stack(nodes=4, heartbeat=1.0, ready_delay=0.0, ctrl=None):
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=2))
    kwargs = {"heartbeat_interval": heartbeat}
    if ctrl is not None:
        kwargs["ctrl_msg_bytes"] = ctrl
    dispatcher = JetsDispatcher(
        platform, JetsServiceConfig(**kwargs), expected_workers=nodes
    )
    dispatcher.start()
    agents = []
    for i, node in enumerate(platform.nodes):
        agents.append(
            WorkerAgent(
                platform,
                node,
                dispatcher.endpoint,
                heartbeat_interval=heartbeat,
                ready_delay=ready_delay if i == 0 else 0.0,
            )
        )
    for a in agents:
        a.start()
    return platform, dispatcher, agents


def serial_jobs(n, duration=0.5):
    return [
        JobSpec(program=SleepProgram(duration), nodes=1, mpi=False,
                max_attempts=5)
        for _ in range(n)
    ]


class TestLossWindows:
    def test_worker_dies_between_register_and_first_ready(self):
        platform, dispatcher, agents = start_stack(ready_delay=2.0)
        tapped = []
        platform.network.add_tap(tapped.append)

        def killer():
            # Agent 0 holds its readies back for 2s; kill it inside the
            # registered-but-not-ready window.
            yield platform.env.timeout(1.0)
            assert agents[0].alive
            agents[0].kill()

        platform.env.process(killer())
        platform.env.run(until=1.5)
        lost = platform.trace.select("worker.lost")
        assert [r.data["worker"] for r in lost] == [agents[0].worker_id]

        # The aggregator dropped the half-registered worker: the batch
        # drains entirely on the survivors.
        dispatcher.submit_many(serial_jobs(4))
        platform.env.run(dispatcher.drained)

        lost = platform.trace.select("worker.lost")
        assert any(r.data["worker"] == agents[0].worker_id for r in lost)
        assert dispatcher.jobs_finished == 4
        assert all(c.ok for c in dispatcher.completed)
        assert validate_trace(platform.trace) == []
        # The truncated register-only session is protocol-legal.
        assert validate_sessions(wire_messages(tapped)) == []

    def test_worker_loss_mid_run_proxy(self):
        platform, dispatcher, agents = start_stack()
        tapped = []
        platform.network.add_tap(tapped.append)
        done = dispatcher.submit(
            JobSpec(
                program=BarrierSleepBarrier(3.0),
                nodes=2,
                ppn=2,
                mpi=True,
                max_attempts=5,
            )
        )

        def killer():
            # Wait for the proxies to be dispatched, then kill one of the
            # workers the job landed on while PMI wire-up is in flight.
            while not platform.trace.select("job.mpiexec_spawned"):
                yield platform.env.timeout(0.001)
            victims = [
                a
                for a in agents
                if a.alive
                and (v := dispatcher.aggregator.get(a.worker_id)) is not None
                and v.running_jobs
            ]
            assert victims
            victims[0].kill()

        platform.env.process(killer())
        completed = platform.env.run(done)
        assert completed.ok  # resubmitted onto the survivors
        assert platform.trace.select("job.retry")
        assert validate_trace(platform.trace) == []
        assert validate_sessions(wire_messages(tapped)) == []


class TestMalformedMessages:
    def test_unknown_kind_from_worker_isolates_that_worker(self):
        platform, dispatcher, agents = start_stack(nodes=3)
        tapped = []
        platform.network.add_tap(tapped.append)

        def saboteur():
            yield platform.env.timeout(1.0)
            yield agents[0]._sock.send(("bogus", agents[0].worker_id), 64)

        platform.env.process(saboteur())
        platform.env.run(until=4.0)

        errors = platform.trace.select("protocol.error")
        assert len(errors) == 1
        assert errors[0].data["kind"] == "bogus"
        assert errors[0].data["detail"] == "unknown message kind from worker"
        lost = platform.trace.select("worker.lost")
        assert [r.data["worker"] for r in lost] == [agents[0].worker_id]
        # The offender died cleanly; the event loop kept serving.
        assert not agents[0].alive

        dispatcher.submit_many(serial_jobs(3))
        platform.env.run(dispatcher.drained)
        assert all(c.ok for c in dispatcher.completed)
        assert validate_trace(platform.trace) == []
        # The runtime checker sees the seeded violation on the wire.
        problems = validate_sessions(wire_messages(tapped))
        assert any("bogus" in p for p in problems)

    def test_unknown_kind_from_dispatcher_kills_worker_cleanly(self):
        platform, dispatcher, agents = start_stack(nodes=3)

        def saboteur():
            yield platform.env.timeout(1.0)
            view = dispatcher.aggregator.get(agents[1].worker_id)
            yield view.socket.send(("mystery",), 64)

        platform.env.process(saboteur())
        platform.env.run(until=4.0)

        errors = platform.trace.select("protocol.error")
        assert len(errors) == 1
        assert errors[0].data["detail"] == (
            "unknown message kind from dispatcher"
        )
        killed = platform.trace.select("worker.killed")
        assert len(killed) == 1
        assert killed[0].data["worker"] == agents[1].worker_id
        assert "protocol error" in killed[0].data["cause"]
        assert not agents[1].alive

        dispatcher.submit_many(serial_jobs(2))
        platform.env.run(dispatcher.drained)
        assert all(c.ok for c in dispatcher.completed)
        assert validate_trace(platform.trace) == []


class TestSizeDiscipline:
    def test_shutdown_size_follows_ctrl_msg_bytes(self):
        platform, dispatcher, agents = start_stack(nodes=2, ctrl=2048)
        tapped = []
        platform.network.add_tap(tapped.append)
        dispatcher.submit_many(serial_jobs(2))
        platform.env.run(dispatcher.drained)
        platform.env.process(dispatcher.shutdown_workers())
        platform.env.run(until=platform.env.now + 2.0)

        shutdowns = [e for e in tapped if e.payload[0] == "shutdown"]
        assert len(shutdowns) == 2
        assert all(e.nbytes == 2048 for e in shutdowns)

    def test_run_task_size_includes_staging_payload(self):
        platform, dispatcher, agents = start_stack(nodes=2)
        tapped = []
        platform.network.add_tap(tapped.append)
        job = JobSpec(
            program=SleepProgram(0.2),
            nodes=1,
            mpi=False,
            stage_in_bytes=10_000,
        )
        platform.env.run(dispatcher.submit(job))

        runs = [e for e in tapped if e.payload[0] == "run_task"]
        assert len(runs) == 1
        ctrl = dispatcher.config.ctrl_msg_bytes
        assert runs[0].nbytes == ctrl + 10_000
