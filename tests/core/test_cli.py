"""Tests for the ``jets`` command-line tool."""

import pytest

from repro.core.cli import build_parser, main


@pytest.fixture
def taskfile(tmp_path):
    path = tmp_path / "tasks.txt"
    path.write_text(
        "# demo batch\n"
        "MPI: 2 mpi-bench 0.5\n"
        "MPI: 2 mpi-bench 0.5\n"
        "SERIAL: sleep 0.2\n"
    )
    return str(path)


class TestCli:
    def test_happy_path(self, taskfile, capsys):
        code = main([taskfile, "--machine", "generic", "--nodes", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3 jobs" in out
        assert "utilization" in out

    def test_missing_file(self, capsys):
        code = main(["/does/not/exist"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_tasklist(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("MPI: many mpi-bench 1\n")
        code = main([str(bad)])
        assert code == 2
        assert "bad task list" in capsys.readouterr().err

    def test_failed_job_exit_code(self, tmp_path, capsys):
        too_big = tmp_path / "big.txt"
        too_big.write_text("MPI: 64 mpi-bench 1.0\n")
        code = main([str(too_big), "--machine", "generic", "--nodes", "4"])
        assert code == 1
        assert "failed permanently" in capsys.readouterr().err

    def test_policy_and_grouping_flags(self, taskfile):
        code = main(
            [
                taskfile,
                "--machine", "generic",
                "--nodes", "4",
                "--policy", "backfill",
                "--grouping", "fifo",
                "--no-staging",
                "--seed", "7",
            ]
        )
        assert code == 0

    def test_fault_flags(self, tmp_path):
        f = tmp_path / "t.txt"
        f.write_text("SERIAL: sleep 0.5\n" * 50)
        code = main(
            [str(f), "--machine", "generic", "--nodes", "2",
             "--faults", "2.0", "--until", "20"]
        )
        assert code in (0, 1)  # surviving jobs may or may not all finish

    def test_parser_defaults(self):
        args = build_parser().parse_args(["tasks.txt"])
        assert args.machine == "generic"
        assert args.policy == "fifo"
        assert not args.no_staging
