"""Tests for the recovery machinery: backoff, deadlines, quarantine, gangs."""

import pytest

from repro.analysis.explore import wire_messages
from repro.analysis.protocol import validate_sessions
from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.dispatcher import JetsDispatcher, JetsServiceConfig
from repro.core.recovery import PilotKeeper, RecoveryPolicy
from repro.core.tasklist import JobSpec
from repro.core.worker import WorkerAgent
from repro.mpi.hydra import HydraConfig


def start_stack(nodes=3, heartbeat=0.5, recovery=None, hydra=None, tap=False):
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=2))
    tapped = []
    if tap:
        platform.network.add_tap(tapped.append)
    params = dict(heartbeat_interval=heartbeat)
    if recovery is not None:
        params["recovery"] = recovery
    if hydra is not None:
        params["hydra"] = hydra
    dispatcher = JetsDispatcher(
        platform, JetsServiceConfig(**params), expected_workers=nodes
    )
    dispatcher.start()
    agents = [
        WorkerAgent(
            platform, node, dispatcher.endpoint, heartbeat_interval=heartbeat
        )
        for node in platform.nodes
    ]
    for a in agents:
        a.start()
    return platform, dispatcher, agents, tapped


class TestBackoffPolicy:
    def test_disabled_by_default(self):
        pol = RecoveryPolicy()
        assert pol.backoff_for(1) == 0.0
        assert pol.backoff_for(7) == 0.0

    def test_exponential_growth_and_cap(self):
        pol = RecoveryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5
        )
        assert pol.backoff_for(1) == pytest.approx(0.1)
        assert pol.backoff_for(2) == pytest.approx(0.2)
        assert pol.backoff_for(3) == pytest.approx(0.4)
        assert pol.backoff_for(4) == pytest.approx(0.5)  # hits the ceiling
        assert pol.backoff_for(10) == pytest.approx(0.5)


class TestBackoffTiming:
    def test_requeue_waits_out_the_backoff(self):
        recovery = RecoveryPolicy(
            backoff_base=1.0, backoff_factor=2.0, backoff_max=8.0
        )
        platform, dispatcher, agents, _ = start_stack(
            nodes=2, recovery=recovery
        )
        done = dispatcher.submit(
            JobSpec(
                program=SleepProgram(5.0), nodes=1, mpi=False, max_attempts=5
            )
        )

        def killer():
            yield platform.env.timeout(1.0)
            busy = {
                v.worker_id
                for v in dispatcher.aggregator.workers()
                if v.running_jobs
            }
            for a in agents:
                if a.worker_id in busy:
                    a.kill()
                    return

        platform.env.process(killer())
        completed = platform.env.run(done)
        assert completed.ok
        backoffs = platform.trace.select("recover.backoff")
        assert backoffs
        assert backoffs[0].data["delay"] == pytest.approx(1.0)
        retry_t = platform.trace.select("job.retry")[0].time
        requeues = [
            r for r in platform.trace.select("job.queued") if r.time > retry_t
        ]
        assert requeues
        assert requeues[0].time >= retry_t + 1.0 - 1e-9


class TestRetryBudget:
    def test_exhaustion_is_a_permanent_failure(self):
        platform, dispatcher, agents, _ = start_stack(nodes=6)
        done = dispatcher.submit(
            JobSpec(
                program=BarrierSleepBarrier(30.0),
                nodes=2,
                mpi=True,
                max_attempts=2,
            )
        )
        by_id = {a.worker_id: a for a in agents}

        def serial_killer():
            while not done.triggered:
                yield platform.env.timeout(2.0)
                busy = [
                    v.worker_id
                    for v in dispatcher.aggregator.workers()
                    if v.running_jobs
                ]
                for wid in busy[:1]:
                    if by_id[wid].alive:
                        by_id[wid].kill()

        platform.env.process(serial_killer())
        completed = platform.env.run(done)
        assert not completed.ok
        assert completed.job.attempts == 2
        retries = platform.trace.select("job.retry")
        assert len(retries) == 2
        # Satellite contract: every retry payload records the attempt
        # number and the triggering error.
        for rec in retries:
            assert rec.data["attempt"] >= 1
            assert rec.data["error"]
        failed = platform.trace.select("job.failed")
        assert any(r.data["job"] == completed.job.job_id for r in failed)


class TestHungJobDeadline:
    def test_straggling_serial_job_aborted_and_resubmitted(self):
        recovery = RecoveryPolicy(hung_job_timeout=2.0)
        platform, dispatcher, agents, _ = start_stack(
            nodes=1, recovery=recovery
        )
        node = platform.nodes[0]
        node.slowdown = 50.0
        done = dispatcher.submit(
            JobSpec(
                program=SleepProgram(1.0), nodes=1, mpi=False, max_attempts=8
            )
        )

        def healer():
            while not platform.trace.select("recover.hung"):
                yield platform.env.timeout(0.25)
            node.slowdown = 1.0

        platform.env.process(healer())
        completed = platform.env.run(done)
        assert completed.ok
        hung = platform.trace.select("recover.hung")
        assert hung
        assert hung[0].data["phase"] == "serial"
        # The watchdog fires after hint + grace, not before.
        assert hung[0].time >= 3.0 - 1e-9
        retries = platform.trace.select("job.retry")
        assert retries
        assert retries[0].data["reason"] == "deadline"


class TestQuarantine:
    def test_repeated_failures_quarantine_then_readmit(self):
        recovery = RecoveryPolicy(
            respawn_delay=0.2,
            quarantine_threshold=2,
            quarantine_period=2.0,
            zombie_grace=100.0,
        )
        platform = Platform(generic_cluster(nodes=1, cores_per_node=2))
        dispatcher = JetsDispatcher(
            platform,
            JetsServiceConfig(heartbeat_interval=0.5, recovery=recovery),
            expected_workers=1,
        )
        dispatcher.start()
        keeper = PilotKeeper(
            platform, dispatcher, recovery, heartbeat_interval=0.5
        )
        agent = WorkerAgent(
            platform,
            platform.nodes[0],
            dispatcher.endpoint,
            heartbeat_interval=0.5,
        )
        keeper.adopt(agent)
        agent.start()
        keeper.start()
        env = platform.env
        node_id = platform.nodes[0].node_id

        def assassin():
            kills = 0
            while kills < 2:
                live = keeper.live_agents()
                if live:
                    live[0].kill()
                    kills += 1
                yield env.timeout(0.1)

        env.process(assassin())
        env.run(env.timeout(1.5))
        assert keeper.quarantined_nodes == {node_id}
        assert platform.trace.select("recover.quarantine")
        env.run(env.timeout(3.0))
        # Probational re-admission: blacklist lifted, pilot respawned.
        assert not keeper.quarantined_nodes
        assert platform.trace.select("recover.readmit")
        assert keeper.live_agents()
        keeper.stop()


class TestGangTeardown:
    #: Slow mpiexec spawn widens the wire-up phase so the fault below
    #: reliably lands before the application starts.
    HYDRA = HydraConfig(mpiexec_spawn=0.5, msg_cost=2e-3)

    def test_kill_during_wireup_cancels_survivors(self):
        recovery = RecoveryPolicy(hung_job_timeout=10.0, gang_cancel=True)
        platform, dispatcher, agents, tapped = start_stack(
            nodes=4, recovery=recovery, hydra=self.HYDRA, tap=True
        )
        done = dispatcher.submit(
            JobSpec(
                program=BarrierSleepBarrier(2.0),
                nodes=3,
                mpi=True,
                max_attempts=5,
            )
        )
        env = platform.env

        def killer():
            # The 0.5 s mpiexec spawn runs between dispatch and the
            # wire-up records, so dispatch + 0.2 lands mid wire-up.
            while True:
                if platform.trace.select("job.dispatch"):
                    break
                yield env.timeout(0.02)
            yield env.timeout(0.2)
            assert not platform.trace.select("job.app_running")
            busy = [
                v for v in dispatcher.aggregator.workers() if v.running_jobs
            ]
            victim = next(
                a for a in agents if a.worker_id == busy[0].worker_id
            )
            victim.kill()

        env.process(killer())
        completed = env.run(done)
        assert completed.ok  # recovered on the survivors
        teardown = platform.trace.select("recover.gang_teardown")
        assert teardown
        assert teardown[0].data["workers"]
        retries = platform.trace.select("job.retry")
        assert retries
        assert retries[0].data["reason"] == "wireup_abort"
        assert validate_sessions(wire_messages(tapped)) == []

    def test_shutdown_mid_wireup_tears_group_down(self):
        platform, dispatcher, agents, tapped = start_stack(
            nodes=4, hydra=self.HYDRA, tap=True
        )
        done = dispatcher.submit(
            JobSpec(
                program=BarrierSleepBarrier(2.0),
                nodes=3,
                mpi=True,
                max_attempts=5,
            )
        )
        env = platform.env

        def shutdown():
            while True:
                if platform.trace.select("job.dispatch"):
                    break
                yield env.timeout(0.02)
            yield env.timeout(0.2)
            assert not platform.trace.select("job.app_running")
            yield from dispatcher.shutdown_workers()

        proc = env.process(shutdown())
        completed = env.run(done)
        assert not completed.ok
        assert "shutdown" in completed.error
        env.run(proc)
        # The half-wired group must wind down without protocol violations.
        assert validate_sessions(wire_messages(tapped)) == []
        assert dispatcher.jobs_finished == dispatcher.jobs_submitted
