"""Tests for journal replay, torn-tail tolerance, and crash-equivalence."""

import json

import pytest

from repro.core.journal import RunJournal
from repro.core.resume import (
    JournalError,
    ResumeCampaignConfig,
    _segment_seed,
    crash_equivalence_campaign,
    load_ledger,
    read_journal,
    replay,
    respec,
    resume_run,
)
from repro.core.tasklist import TaskList


class _Clock:
    def __init__(self, now=0.0):
        self.now = now


def write_small_journal(path, *, end=False):
    """A 2-job journal: t0 done, t1 in flight (optionally run_end)."""
    clock = _Clock()
    jn = RunJournal(str(path), env=clock)
    jn.run_begin(machine="generic", nodes=2, seed=0, jobs=2,
                 cores_per_node=2)
    tasks = TaskList.from_lines(["SERIAL: sleep 0.5", "MPI: 2 mpi-bench 0.4"])
    tasks.jobs[0].job_id = "t0"
    tasks.jobs[1].job_id = "t1"
    for job in tasks:
        jn.job_submitted(job)
    clock.now = 1.0
    jn.job_launched("t0", 0)
    jn.job_launched("t1", 0)
    clock.now = 2.0
    jn.job_done("t0", 0)
    if end:
        jn.run_end(ok=True, completed=2, failed=0)
    jn.close()


class TestTornTail:
    def test_every_truncation_offset_inside_final_record(self, tmp_path):
        """Cut the journal at *every* byte inside its last record: the
        reader must never raise and must recover all earlier records."""
        path = tmp_path / "run.journal"
        write_small_journal(path)
        raw = path.read_bytes()
        body = raw.rstrip(b"\n")
        last_start = body.rfind(b"\n") + 1
        full_entries, dropped = read_journal(str(path))
        assert dropped == 0
        n = len(full_entries)
        assert n >= 5
        for cut in range(last_start + 1, len(raw)):
            torn = tmp_path / "torn.journal"
            torn.write_bytes(raw[:cut])
            entries, dropped = read_journal(str(torn))
            if cut >= len(raw) - 1:
                # Only the trailing newline is missing: the final record
                # is complete JSON and still parses.
                assert (len(entries), dropped) == (n, 0)
            else:
                assert (len(entries), dropped) == (n - 1, 1)

    def test_replay_of_torn_journal_keeps_job_outstanding(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path)
        raw = path.read_bytes()
        body = raw.rstrip(b"\n")
        # Cut mid-way through the final record (the t0 job_done).
        cut = body.rfind(b"\n") + 1 + 5
        torn = tmp_path / "torn.journal"
        torn.write_bytes(raw[:cut])
        ledger = load_ledger(str(torn))
        assert ledger.dropped_tail == 1
        # Without its done record, t0 is conservatively outstanding.
        assert {j.job_id for j in ledger.outstanding()} == {"t0", "t1"}

    def test_interior_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][: len(lines[1]) // 2] + b"\n"  # torn mid-file
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="corrupt journal record"):
            read_journal(str(path))

    def test_non_record_line_is_fatal(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text('{"noise": true}\n{"t": 1.0, "cat": "x"}\n')
        with pytest.raises(JournalError, match="not a trace record"):
            read_journal(str(path))


class TestReplay:
    def test_settled_vs_outstanding(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path)
        ledger = load_ledger(str(path))
        assert not ledger.clean
        assert [j.job_id for j in ledger.settled()] == ["t0"]
        assert [j.job_id for j in ledger.outstanding()] == ["t1"]
        assert ledger.jobs["t0"].status == "done"
        assert ledger.jobs["t1"].status == "launched"

    def test_run_end_marks_clean(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path, end=True)
        assert load_ledger(str(path)).clean

    def test_replay_is_idempotent_over_duplicates(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path)
        entries, dropped = read_journal(str(path))
        once = replay(entries, dropped)
        twice = replay(list(entries) + list(entries), dropped)
        assert {j: (v.status, v.attempts) for j, v in once.jobs.items()} == {
            j: (v.status, v.attempts) for j, v in twice.jobs.items()
        }
        # A late duplicate job_submitted never resurrects a settled job.
        assert twice.jobs["t0"].status == "done"

    def test_attempts_ratchet_never_regress(self, tmp_path):
        path = tmp_path / "run.journal"
        clock = _Clock()
        jn = RunJournal(str(path), env=clock)
        jn.run_begin(machine="generic", nodes=1, seed=0)
        tasks = TaskList.from_lines(["SERIAL: sleep 0.5"])
        tasks.jobs[0].job_id = "j"
        jn.job_submitted(tasks.jobs[0])
        jn.job_launched("j", 0)
        jn.job_retry("j", 1, error="worker lost")
        jn.job_launched("j", 1)
        jn.job_launched("j", 0)  # stale duplicate must not regress
        jn.close()
        ledger = load_ledger(str(path))
        assert ledger.jobs["j"].attempts == 1
        assert ledger.jobs["j"].status == "launched"

    def test_event_for_unknown_job_is_fatal(self):
        from repro.simkernel.monitor import TraceRecord

        rec = TraceRecord(1.0, "journal.job_done", {"job": "ghost",
                                                    "attempt": 0})
        with pytest.raises(JournalError, match="unknown job"):
            replay([(0, rec)])


class TestRespec:
    def test_respec_preserves_identity_and_attempts(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path)
        ledger = load_ledger(str(path))
        entry = ledger.jobs["t1"]
        entry.attempts = 2
        spec = respec(entry)
        assert spec.job_id == "t1"
        assert spec.mpi and spec.nodes == 2
        # A crash is not charged as an attempt: the retry budget carries.
        assert spec.attempts == 2

    def test_segment_seed_differs_per_segment(self):
        assert _segment_seed(7, 0) == 7
        assert _segment_seed(7, 1) != 7
        assert _segment_seed(7, 1) != _segment_seed(7, 2)
        assert _segment_seed(7, 1) == _segment_seed(7, 1)


class TestResumeRun:
    def test_clean_journal_is_a_noop(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path, end=True)
        report = resume_run(str(path))
        assert report.clean
        assert report.ok
        assert report.resubmitted == 0
        assert "nothing to resume" in report.summary()

    def test_missing_run_begin_is_fatal(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock())
        tasks = TaskList.from_lines(["SERIAL: sleep 0.5"])
        jn.job_submitted(tasks.jobs[0])
        jn.close()
        with pytest.raises(JournalError):
            resume_run(str(path))


class TestCrashEquivalence:
    def test_small_campaign_all_points_equivalent(self, tmp_path):
        # A fast slice of the acceptance campaign (CI runs the full
        # 200-job / 20-point sweep via `jets resume --verify`).
        config = ResumeCampaignConfig(
            jobs=30, crash_points=5, seed=3,
            journal_dir=str(tmp_path),
        )
        report = crash_equivalence_campaign(config)
        assert report.ok, [(p.index, p.problems) for p in report.failures]
        assert len(report.points) == 5
        assert any(p.crashed for p in report.points)
        for point in report.points:
            if not point.crashed:
                continue
            # Each crashed journal drained clean after resume.
            journal = tmp_path / f"crash{point.index:03d}.journal"
            ledger = load_ledger(str(journal))
            assert ledger.clean
            assert ledger.segments == 2
            assert not ledger.outstanding()


class TestResumeTwice:
    def test_torn_journal_resumes_twice_and_stays_parseable(self, tmp_path):
        path = tmp_path / "run.journal"
        write_small_journal(path, end=True)
        raw = path.read_bytes()
        cut = raw.rstrip(b"\n").rfind(b"\n") + 1 + 7  # tear the run_end
        path.write_bytes(raw[:cut])
        first = resume_run(str(path))
        assert not first.clean
        # The torn fragment must not corrupt the appended segment:
        # every line still parses and a second resume is a clean no-op.
        entries, dropped = read_journal(str(path))
        assert dropped == 0
        second = resume_run(str(path))
        assert second.clean
