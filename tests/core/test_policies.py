"""Tests for the dispatcher's queue policies."""

import pytest

from repro.apps.synthetic import SleepProgram
from repro.core.policies import (
    BackfillPolicy,
    FifoPolicy,
    PriorityPolicy,
    make_policy,
)
from repro.core.tasklist import JobSpec


def job(nodes=1, priority=0):
    return JobSpec(program=SleepProgram(1), nodes=nodes, priority=priority)


class TestFifo:
    def test_select_in_order(self):
        p = FifoPolicy()
        a, b = job(), job()
        p.push(a)
        p.push(b)
        assert p.select(lambda j: True) is a
        assert p.select(lambda j: True) is b
        assert p.select(lambda j: True) is None

    def test_head_of_line_blocking(self):
        p = FifoPolicy()
        big, small = job(nodes=8), job(nodes=1)
        p.push(big)
        p.push(small)
        # Only the small job fits, but FIFO refuses to skip the head.
        assert p.select(lambda j: j.nodes <= 2) is None
        assert len(p) == 2

    def test_pending_snapshot(self):
        p = FifoPolicy()
        a, b = job(), job()
        p.push(a)
        p.push(b)
        assert p.pending() == [a, b]


class TestPriority:
    def test_lowest_priority_value_first(self):
        p = PriorityPolicy()
        low, high = job(priority=5), job(priority=1)
        p.push(low)
        p.push(high)
        assert p.select(lambda j: True) is high
        assert p.select(lambda j: True) is low

    def test_fifo_within_level(self):
        p = PriorityPolicy()
        a, b = job(priority=2), job(priority=2)
        p.push(a)
        p.push(b)
        assert p.select(lambda j: True) is a

    def test_blocked_head_blocks(self):
        p = PriorityPolicy()
        urgent_big = job(nodes=8, priority=0)
        lazy_small = job(nodes=1, priority=9)
        p.push(lazy_small)
        p.push(urgent_big)
        assert p.select(lambda j: j.nodes <= 2) is None


class TestBackfill:
    def test_skips_blocked_head(self):
        p = BackfillPolicy()
        big, small = job(nodes=8), job(nodes=1)
        p.push(big)
        p.push(small)
        assert p.select(lambda j: j.nodes <= 2) is small
        assert p.pending() == [big]

    def test_fifo_when_head_fits(self):
        p = BackfillPolicy()
        a, b = job(nodes=1), job(nodes=1)
        p.push(a)
        p.push(b)
        assert p.select(lambda j: True) is a

    def test_window_limits_lookahead(self):
        p = BackfillPolicy(window=2)
        p.push(job(nodes=8))
        p.push(job(nodes=8))
        fits = job(nodes=1)
        p.push(fits)  # third position: beyond the window
        assert p.select(lambda j: j.nodes <= 2) is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            BackfillPolicy(window=0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("fifo", FifoPolicy), ("priority", PriorityPolicy), ("backfill", BackfillPolicy)],
    )
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("random")
