"""Tests for fault injection, detection and job recovery."""

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.dispatcher import JetsDispatcher, JetsServiceConfig
from repro.core.faults import FaultInjector
from repro.core.jets import FaultSpec, JetsConfig, Simulation
from repro.core.tasklist import JobSpec, TaskList
from repro.core.worker import WorkerAgent


def start_stack(nodes=4, heartbeat=1.0):
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=2))
    cfg = JetsServiceConfig(heartbeat_interval=heartbeat)
    dispatcher = JetsDispatcher(platform, cfg, expected_workers=nodes)
    dispatcher.start()
    agents = [
        WorkerAgent(
            platform, node, dispatcher.endpoint, heartbeat_interval=heartbeat
        )
        for node in platform.nodes
    ]
    for a in agents:
        a.start()
    return platform, dispatcher, agents


class TestWorkerDeath:
    def test_mpi_job_resubmitted_after_worker_kill(self):
        platform, dispatcher, agents = start_stack(nodes=3)
        done = dispatcher.submit(
            JobSpec(
                program=BarrierSleepBarrier(5.0),
                nodes=2,
                mpi=True,
                max_attempts=5,
            )
        )

        def killer():
            yield platform.env.timeout(2.0)
            # Kill one worker that is running the job.
            busy = [a for a in agents if a.alive and a.tasks_run == 0]
            view_workers = {
                v.worker_id
                for v in dispatcher.aggregator.workers()
                if v.running_jobs
            }
            victims = [a for a in busy if a.worker_id in view_workers]
            victims[0].kill()

        platform.env.process(killer())
        completed = platform.env.run(done)
        assert completed.ok  # recovered on surviving workers
        assert completed.job.attempts >= 1
        retries = platform.trace.select("job.retry")
        assert retries

    def test_serial_job_requeued_after_worker_kill(self):
        platform, dispatcher, agents = start_stack(nodes=2)
        done = dispatcher.submit(
            JobSpec(
                program=SleepProgram(5.0), nodes=1, mpi=False, max_attempts=5
            )
        )

        def killer():
            yield platform.env.timeout(1.0)
            busy = [
                v.worker_id
                for v in dispatcher.aggregator.workers()
                if v.running_jobs
            ]
            for a in agents:
                if a.worker_id in busy:
                    a.kill()
                    break

        platform.env.process(killer())
        completed = platform.env.run(done)
        assert completed.ok
        assert completed.job.attempts >= 1

    def test_job_fails_permanently_after_max_attempts(self):
        platform, dispatcher, agents = start_stack(nodes=6)
        job = JobSpec(
            program=BarrierSleepBarrier(30.0),
            nodes=2,
            mpi=True,
            max_attempts=2,
        )
        done = dispatcher.submit(job)
        by_id = {a.worker_id: a for a in agents}

        def serial_killer():
            # Kill one participant of each dispatch attempt, leaving
            # enough survivors that the job *could* be retried — the
            # failure must come from exhausting max_attempts.
            while not done.triggered:
                yield platform.env.timeout(2.0)
                busy = [
                    v.worker_id
                    for v in dispatcher.aggregator.workers()
                    if v.running_jobs
                ]
                for wid in busy[:1]:
                    agent = by_id[wid]
                    if agent.alive:
                        agent.kill()

        platform.env.process(serial_killer())
        completed = platform.env.run(done)
        assert not completed.ok
        assert completed.job.attempts >= 2

    def test_dead_worker_removed_from_pool(self):
        platform, dispatcher, agents = start_stack(nodes=3, heartbeat=0.5)
        platform.env.run(platform.env.timeout(1.0))
        assert len(dispatcher.aggregator.workers()) == 3
        agents[0].kill()
        platform.env.run(platform.env.timeout(5.0))
        assert len(dispatcher.aggregator.workers()) == 2
        lost = platform.trace.select("worker.lost")
        assert len(lost) == 1


class TestFaultInjector:
    def test_kills_one_per_interval_until_none_left(self):
        platform, dispatcher, agents = start_stack(nodes=4)
        injector = FaultInjector(platform, agents, interval=1.0)
        injector.start()
        platform.env.run(platform.env.timeout(10.0))
        assert len(injector.kills) == 4
        assert all(not a.alive for a in agents)
        # Kill times are one per interval.
        times = [t for t, _w in injector.kills]
        assert times == sorted(times)
        assert times[0] >= 1.0

    def test_deterministic_given_seed(self):
        def victims(seed):
            platform, dispatcher, agents = start_stack(nodes=4)
            platform.rng.seed = seed
            platform.rng.reset()
            injector = FaultInjector(platform, agents, interval=1.0)
            injector.start()
            platform.env.run(platform.env.timeout(10.0))
            # Worker ids are globally sequenced; compare *positions*.
            index = {a.worker_id: i for i, a in enumerate(agents)}
            return [(t, index[w]) for t, w in injector.kills]

        assert victims(1) == victims(1)

    def test_interval_validation(self, small_platform):
        with pytest.raises(ValueError):
            FaultInjector(small_platform, [], interval=0)


class TestEndToEndFaulty:
    def test_standalone_fault_run_maintains_progress(self):
        sim = Simulation(generic_cluster(nodes=4, cores_per_node=1))
        tasks = TaskList.from_lines(["SERIAL: sleep 0.5"] * 400)
        report = sim.run_standalone(
            tasks, faults=FaultSpec(interval=3.0), until=60.0
        )
        assert report.faults_injected >= 4
        assert report.jobs_completed > 10
        # No phantom successes: completed + failed <= submitted.
        assert report.jobs_completed + report.jobs_failed <= report.jobs_total


class TestArrivalModes:
    def test_fixed_gaps_are_exact(self):
        platform, dispatcher, agents = start_stack(nodes=4)
        injector = FaultInjector(platform, agents, interval=1.0, mode="fixed")
        injector.start()
        platform.env.run(platform.env.timeout(10.0))
        times = [t for t, _w in injector.kills]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(1.0) for g in gaps)

    def test_exponential_gaps_vary(self):
        platform, dispatcher, agents = start_stack(nodes=4)
        injector = FaultInjector(
            platform, agents, interval=1.0, mode="exponential"
        )
        injector.start()
        platform.env.run(platform.env.timeout(60.0))
        times = [t for t, _w in injector.kills]
        assert len(times) == 4
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1

    def test_jittered_gaps_stay_in_window(self):
        platform, dispatcher, agents = start_stack(nodes=4)
        injector = FaultInjector(
            platform, agents, interval=1.0, mode="jittered", jitter=0.4
        )
        injector.start()
        platform.env.run(platform.env.timeout(20.0))
        times = [0.0] + [t for t, _w in injector.kills]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps
        assert all(0.6 - 1e-9 <= g <= 1.4 + 1e-9 for g in gaps)

    def test_mode_validation(self, small_platform):
        with pytest.raises(ValueError):
            FaultInjector(small_platform, [], mode="bursty")
        with pytest.raises(ValueError):
            FaultInjector(
                small_platform, [], interval=1.0, mode="jittered", jitter=1.0
            )

    def test_seeded_modes_replay(self):
        def kill_times(mode):
            platform, dispatcher, agents = start_stack(nodes=4)
            platform.rng.seed = 11
            platform.rng.reset()
            injector = FaultInjector(
                platform, agents, interval=1.0, mode=mode, jitter=0.3
            )
            injector.start()
            platform.env.run(platform.env.timeout(60.0))
            return [t for t, _w in injector.kills]

        for mode in ("exponential", "jittered"):
            assert kill_times(mode) == kill_times(mode)
