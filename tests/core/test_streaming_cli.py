"""CLI surface of the streaming pipeline: --stream-trace, report, top.

End-to-end over the real ``jets`` entry points: a run recorded with
``--stream-trace`` spills a JSONL file that ``jets report``, ``jets
lint-trace`` and ``jets top`` all accept and reconstruct offline,
including the perf trailer.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cli import build_parser, main


@pytest.fixture
def taskfile(tmp_path):
    path = tmp_path / "tasks.txt"
    path.write_text(
        "MPI: 2 mpi-bench 0.5\n"
        "SERIAL: sleep 0.2\n"
        "SERIAL: sleep 0.2\n"
    )
    return str(path)


@pytest.fixture
def spilled(tmp_path, taskfile):
    """A run recorded through the streaming sink; returns the spill path."""
    out = tmp_path / "run.jsonl"
    code = main(
        [
            taskfile,
            "--machine", "generic", "--nodes", "4",
            "--trace-out", str(out),
            "--stream-trace", "--trace-window", "32",
        ]
    )
    assert code == 0
    return str(out)


class TestParserFlags:
    def test_streaming_flags_default_off(self):
        args = build_parser().parse_args(["tasks.txt"])
        assert args.stream_trace is False
        assert args.trace_window == 65536
        assert args.progress_every is None

    def test_streaming_flags_parse(self):
        args = build_parser().parse_args(
            [
                "tasks.txt", "--stream-trace", "--trace-window", "128",
                "--progress-every", "2.5",
            ]
        )
        assert args.stream_trace is True
        assert args.trace_window == 128
        assert args.progress_every == 2.5

    def test_report_follow_flags_parse(self):
        from repro.core.cli import build_report_parser

        args = build_report_parser().parse_args(
            ["t.jsonl", "--follow", "--poll", "0.1", "--idle-timeout", "5"]
        )
        assert args.follow is True
        assert args.poll == 0.1
        assert args.idle_timeout == 5.0


class TestSpilledTraceConsumers:
    def test_spill_ends_with_perf_trailer(self, spilled):
        lines = open(spilled).read().splitlines()
        trailer = json.loads(lines[-1])
        assert trailer["meta"] == "perf"
        assert trailer["records"] == len(lines) - 1
        assert trailer["sim_s"] > 0

    def test_report_reconstructs_offline(self, spilled, capsys):
        assert main(["report", spilled]) == 0
        out = capsys.readouterr().out
        assert "jobs" in out
        # The perf trailer rides into the rendered report.
        assert "records" in out

    def test_lint_trace_accepts_spill(self, spilled, capsys):
        assert main(["lint-trace", spilled]) == 0
        assert "valid" in capsys.readouterr().out

    def test_top_snapshots_spill(self, spilled, capsys):
        assert main(["top", spilled]) == 0
        out = capsys.readouterr().out
        assert "[run 0]" in out
        assert "(complete)" in out

    def test_progress_heartbeats_land_in_spill(
        self, tmp_path, taskfile, capsys
    ):
        out = tmp_path / "hb.jsonl"
        code = main(
            [
                taskfile,
                "--machine", "generic", "--nodes", "4",
                "--trace-out", str(out),
                "--stream-trace", "--progress-every", "0.5",
            ]
        )
        assert code == 0
        beats = [
            json.loads(ln)
            for ln in out.read_text().splitlines()
            if json.loads(ln).get("cat") == "obs.progress"
        ]
        assert beats
        # Heartbeats pass the trace linter like any schema'd category.
        assert main(["lint-trace", str(out)]) == 0

    def test_report_follow_on_complete_spill(self, spilled, capsys):
        code = main(
            ["report", spilled, "--follow", "--poll", "0.01"]
        )
        assert code == 0
        assert "(complete)" in capsys.readouterr().out
