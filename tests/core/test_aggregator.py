"""Tests for worker aggregation into MPI-capable groups."""

import pytest

from repro.apps.synthetic import SleepProgram
from repro.cluster.machine import generic_cluster, surveyor
from repro.cluster.platform import Platform
from repro.core.aggregator import Aggregator, WorkerView
from repro.core.tasklist import JobSpec


def make_views(platform, n, slots=4):
    views = []
    for i in range(n):
        views.append(
            WorkerView(
                worker_id=i,
                node=platform.node(i),
                socket=None,
                slots=slots,
            )
        )
    return views


def mpi_job(nodes):
    return JobSpec(program=SleepProgram(1), nodes=nodes, mpi=True)


def serial_job():
    return JobSpec(program=SleepProgram(1), nodes=1, mpi=False)


@pytest.fixture
def agg_with_workers(small_platform):
    agg = Aggregator()
    views = make_views(small_platform, 4)
    for v in views:
        agg.add_worker(v)
        for _ in range(v.slots):
            agg.mark_ready(v.worker_id, now=0.0)
    return agg, views


class TestReadiness:
    def test_workers_become_fully_free(self, agg_with_workers):
        agg, views = agg_with_workers
        assert agg.ready_workers == 4
        assert agg.free_slot_count == 16

    def test_mark_ready_all_restores_capacity(self, agg_with_workers):
        agg, views = agg_with_workers
        agg.place(mpi_job(2))
        assert agg.ready_workers == 2
        agg.mark_ready(views[0].worker_id, now=1.0, all_slots=True)
        assert agg.ready_workers == 3

    def test_duplicate_worker_rejected(self, small_platform):
        agg = Aggregator()
        v = make_views(small_platform, 1)[0]
        agg.add_worker(v)
        with pytest.raises(ValueError):
            agg.add_worker(v)

    def test_mark_ready_unknown_worker_ignored(self):
        agg = Aggregator()
        agg.mark_ready(99, now=0.0)  # no crash


class TestMpiPlacement:
    def test_fifo_order_of_readiness(self, small_platform):
        agg = Aggregator()
        views = make_views(small_platform, 4, slots=1)
        for v in views:
            agg.add_worker(v)
        # Readiness order: 2, 0, 3, 1
        for wid in (2, 0, 3, 1):
            agg.mark_ready(wid, now=float(wid))
        chosen = agg.place(mpi_job(2))
        assert [v.worker_id for v in chosen] == [2, 0]

    def test_no_double_booking(self, agg_with_workers):
        agg, _ = agg_with_workers
        g1 = agg.place(mpi_job(2))
        g2 = agg.place(mpi_job(2))
        ids1 = {v.worker_id for v in g1}
        ids2 = {v.worker_id for v in g2}
        assert not ids1 & ids2
        assert not agg.can_place(mpi_job(1))

    def test_cannot_place_without_enough_workers(self, agg_with_workers):
        agg, _ = agg_with_workers
        assert not agg.can_place(mpi_job(5))
        with pytest.raises(RuntimeError):
            agg.place(mpi_job(5))

    def test_partially_busy_worker_not_mpi_eligible(self, agg_with_workers):
        agg, views = agg_with_workers
        agg.place(serial_job())  # occupies one slot somewhere
        assert agg.ready_workers == 3

    def test_dead_worker_not_selected(self, agg_with_workers):
        agg, views = agg_with_workers
        agg.remove_worker(views[0].worker_id)
        assert agg.ready_workers == 3
        chosen = agg.place(mpi_job(3))
        assert views[0].worker_id not in {v.worker_id for v in chosen}

    def test_running_jobs_tracked_and_released(self, agg_with_workers):
        agg, views = agg_with_workers
        job = mpi_job(2)
        chosen = agg.place(job)
        for v in chosen:
            assert job.job_id in v.running_jobs
            agg.release(job, v.worker_id)
            assert job.job_id not in v.running_jobs


class TestSerialPlacement:
    def test_prefers_partially_busy_workers(self, agg_with_workers):
        agg, _ = agg_with_workers
        first = agg.place(serial_job())[0]
        second = agg.place(serial_job())[0]
        # Packing: the second serial job goes to the same (now partially
        # busy) worker, keeping others fully free for MPI.
        assert first.worker_id == second.worker_id
        assert agg.ready_workers == 3

    def test_slot_accounting(self, agg_with_workers):
        agg, _ = agg_with_workers
        for _ in range(16):
            agg.place(serial_job())
        assert agg.free_slot_count == 0
        assert not agg.can_place(serial_job())


class TestTopologyGrouping:
    def test_topology_grouping_tighter_than_adversarial_fifo(self):
        platform = Platform(surveyor(64))  # a 4x4x4 torus
        topo = platform.topology
        agg_t = Aggregator("topology", topo)
        agg_f = Aggregator("fifo")
        # Readiness alternates between two opposite torus corners —
        # adversarial for FIFO grouping.
        near = [0, 1, 4, 5]          # one corner neighbourhood
        far = [42, 43, 46, 47]       # the antipodal neighbourhood
        order = [v for pair in zip(near, far) for v in pair]
        for a in (agg_t, agg_f):
            for wid in order:
                a.add_worker(
                    WorkerView(
                        worker_id=wid,
                        node=platform.node(wid),
                        socket=None,
                        slots=1,
                    )
                )
            for i, wid in enumerate(order):
                a.mark_ready(wid, now=float(i))
        g_t = agg_t.place(mpi_job(4))
        g_f = agg_f.place(mpi_job(4))
        # Measure both with the same (topology-aware) metric.
        assert agg_t.group_diameter(g_t) < agg_t.group_diameter(g_f)

    def test_topology_requires_topology(self):
        with pytest.raises(ValueError):
            Aggregator("topology", None)

    def test_unknown_grouping_rejected(self):
        with pytest.raises(ValueError):
            Aggregator("fancy")


class TestIncrementalAggregates:
    """ready_workers / free_slot_count counters vs a full recount."""

    def _check(self, agg):
        ready, slots = agg._audit()
        assert agg.ready_workers == ready
        assert agg.free_slot_count == slots

    def test_counters_track_membership_and_readiness(self, small_platform):
        agg = Aggregator()
        views = make_views(small_platform, 4, slots=2)
        for v in views:
            agg.add_worker(v)
            self._check(agg)
        for v in views:
            for _ in range(v.slots):
                agg.mark_ready(v.worker_id, now=0.0)
                self._check(agg)
        # Extra mark_ready on a full worker must not overcount.
        agg.mark_ready(views[0].worker_id, now=1.0)
        self._check(agg)
        assert agg.free_slot_count == 8

    def test_counters_through_place_release_cycles(self, small_platform):
        agg = Aggregator()
        for v in make_views(small_platform, 4, slots=2):
            agg.add_worker(v)
            agg.mark_ready(v.worker_id, now=0.0, all_slots=True)
        self._check(agg)
        serial = serial_job()
        placed_serial = agg.place(serial)
        self._check(agg)
        group = agg.place(mpi_job(2))
        self._check(agg)
        for v in group:
            agg.release(mpi_job(2), v.worker_id)
            agg.mark_ready(v.worker_id, now=2.0, all_slots=True)
            self._check(agg)
        agg.release(serial, placed_serial[0].worker_id)
        agg.mark_ready(placed_serial[0].worker_id, now=3.0)
        self._check(agg)
        assert agg.ready_workers == 4

    def test_counters_after_worker_loss(self, small_platform):
        agg = Aggregator()
        views = make_views(small_platform, 3, slots=2)
        for v in views:
            agg.add_worker(v)
            agg.mark_ready(v.worker_id, now=0.0, all_slots=True)
        agg.place(mpi_job(1))  # one worker fully busy
        self._check(agg)
        for v in views:  # remove busy and idle workers alike
            agg.remove_worker(v.worker_id)
            self._check(agg)
        assert agg.ready_workers == 0
        assert agg.free_slot_count == 0
        agg.remove_worker(99)  # unknown id is a no-op
        self._check(agg)

    def test_counters_under_random_op_sequence(self, small_platform):
        import random

        rng = random.Random(1234)
        agg = Aggregator()
        next_id = 0
        live: list[int] = []
        for _ in range(300):
            op = rng.random()
            if op < 0.25 or not live:
                v = WorkerView(
                    worker_id=next_id,
                    node=small_platform.node(next_id % 4),
                    socket=None,
                    slots=rng.choice((1, 2, 4)),
                )
                agg.add_worker(v)
                live.append(next_id)
                next_id += 1
            elif op < 0.55:
                agg.mark_ready(
                    rng.choice(live), now=float(next_id),
                    all_slots=rng.random() < 0.3,
                )
            elif op < 0.75:
                job = serial_job()
                if agg.can_place(job):
                    agg.place(job)
            elif op < 0.9:
                job = mpi_job(rng.choice((1, 2)))
                if agg.can_place(job):
                    agg.place(job)
            else:
                wid = rng.choice(live)
                live.remove(wid)
                agg.remove_worker(wid)
            self._check(agg)
