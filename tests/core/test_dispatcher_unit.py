"""Unit tests for dispatcher internals not covered by integration tests."""

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.dispatcher import JetsDispatcher, JetsServiceConfig
from repro.core.tasklist import JobSpec, TaskList
from repro.core.worker import WorkerAgent


def make_dispatcher(nodes=4, **cfg_kwargs):
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=2))
    dispatcher = JetsDispatcher(
        platform, JetsServiceConfig(**cfg_kwargs), expected_workers=nodes
    )
    return platform, dispatcher


class TestLifecycle:
    def test_double_start_rejected(self):
        platform, dispatcher = make_dispatcher()
        dispatcher.start()
        with pytest.raises(RuntimeError):
            dispatcher.start()

    def test_submit_before_workers_queues(self):
        platform, dispatcher = make_dispatcher(nodes=2)
        dispatcher.start()
        done = dispatcher.submit(
            JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False)
        )
        # Workers arrive later; the job waits in the queue, then runs.
        def late_workers():
            yield platform.env.timeout(5.0)
            for node in platform.nodes:
                WorkerAgent(
                    platform, node, dispatcher.endpoint, heartbeat_interval=0
                ).start()

        platform.env.process(late_workers())
        completed = platform.env.run(done)
        assert completed.ok
        assert completed.t_dispatched > 5.0

    def test_submit_returns_same_event_for_resubmission(self):
        platform, dispatcher = make_dispatcher()
        job = JobSpec(program=SleepProgram(0.1), nodes=1, mpi=False)
        ev1 = dispatcher.submit(job)
        assert dispatcher._job_events[job.job_id] is ev1

    def test_drained_waits_for_whole_batch(self):
        """A synchronously failing job must not fire drained early."""
        platform, dispatcher = make_dispatcher(nodes=2)
        dispatcher.start()
        for node in platform.nodes:
            WorkerAgent(
                platform, node, dispatcher.endpoint, heartbeat_interval=0
            ).start()
        jobs = [
            JobSpec(program=BarrierSleepBarrier(0.5), nodes=99, mpi=True),
            JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False),
        ]
        dispatcher.submit_many(TaskList(jobs))
        platform.env.run(dispatcher.drained)
        assert dispatcher.jobs_finished == 2
        ok = {c.job.job_id: c.ok for c in dispatcher.completed}
        assert list(ok.values()).count(True) == 1


class TestAccounting:
    def test_completed_timestamps_ordered(self):
        platform, dispatcher = make_dispatcher(nodes=2)
        dispatcher.start()
        for node in platform.nodes:
            WorkerAgent(
                platform, node, dispatcher.endpoint, heartbeat_interval=0
            ).start()
        done = dispatcher.submit(
            JobSpec(program=BarrierSleepBarrier(0.4), nodes=2, mpi=True)
        )
        c = platform.env.run(done)
        assert c.t_submitted <= c.t_dispatched <= c.t_done
        assert c.result.t_launch <= c.result.t_app_start
        assert c.result.t_app_start <= c.result.t_app_end <= c.result.t_done

    def test_serial_result_carries_value_and_timing(self):
        platform, dispatcher = make_dispatcher(nodes=1)
        dispatcher.start()
        WorkerAgent(
            platform, platform.node(0), dispatcher.endpoint,
            heartbeat_interval=0,
        ).start()
        done = dispatcher.submit(
            JobSpec(program=SleepProgram(0.3), nodes=1, mpi=False)
        )
        c = platform.env.run(done)
        assert c.result is not None
        assert c.result.rank0_value == 0
        assert c.result.app_time > 0

    def test_trace_has_dispatch_and_done_for_each_job(self):
        platform, dispatcher = make_dispatcher(nodes=2)
        dispatcher.start()
        for node in platform.nodes:
            WorkerAgent(
                platform, node, dispatcher.endpoint, heartbeat_interval=0
            ).start()
        dispatcher.submit_many(
            TaskList(
                [
                    JobSpec(program=SleepProgram(0.1), nodes=1, mpi=False)
                    for _ in range(5)
                ]
            )
        )
        platform.env.run(dispatcher.drained)
        assert len(platform.trace.select("job.dispatch")) == 5
        assert len(platform.trace.select("job.done")) == 5


class TestWorkerProtocol:
    def test_worker_slots_advertised(self):
        platform, dispatcher = make_dispatcher(nodes=1)
        dispatcher.start()
        agent = WorkerAgent(
            platform, platform.node(0), dispatcher.endpoint,
            slots=3, heartbeat_interval=0,
        )
        agent.start()
        platform.env.run(platform.env.timeout(1.0))
        view = dispatcher.aggregator.workers()[0]
        assert view.slots == 3
        assert view.free_slots == 3

    def test_tasks_run_counter(self):
        platform, dispatcher = make_dispatcher(nodes=1)
        dispatcher.start()
        agent = WorkerAgent(
            platform, platform.node(0), dispatcher.endpoint,
            heartbeat_interval=0,
        )
        agent.start()
        events = [
            dispatcher.submit(
                JobSpec(program=SleepProgram(0.1), nodes=1, mpi=False)
            )
            for _ in range(3)
        ]
        platform.env.run(platform.env.all_of(events))
        assert agent.tasks_run == 3

    def test_last_seen_updated_by_any_message(self):
        platform, dispatcher = make_dispatcher(nodes=1, heartbeat_interval=2.0)
        dispatcher.start()
        agent = WorkerAgent(
            platform, platform.node(0), dispatcher.endpoint,
            heartbeat_interval=2.0,
        )
        agent.start()
        platform.env.run(platform.env.timeout(7.0))
        view = dispatcher.aggregator.workers()[0]
        assert view.last_seen > 5.0  # heartbeats kept it fresh
