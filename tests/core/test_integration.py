"""Integration tests: worker ↔ dispatcher ↔ mpiexec, end to end."""

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, NoopProgram, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.dispatcher import JetsDispatcher, JetsServiceConfig
from repro.core.tasklist import JobSpec, TaskList
from repro.core.worker import WorkerAgent
from repro.core.jets import FaultSpec, JetsConfig, Simulation


def start_stack(nodes=4, cores=4, slots=None, config=None):
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=cores))
    dispatcher = JetsDispatcher(
        platform, config or JetsServiceConfig(), expected_workers=nodes
    )
    dispatcher.start()
    agents = [
        WorkerAgent(
            platform,
            node,
            dispatcher.endpoint,
            slots=slots,
            heartbeat_interval=dispatcher.config.heartbeat_interval,
        )
        for node in platform.nodes
    ]
    for a in agents:
        a.start()
    return platform, dispatcher, agents


class TestSerialJobs:
    def test_serial_job_completes(self):
        platform, dispatcher, _ = start_stack()
        done = dispatcher.submit(
            JobSpec(program=SleepProgram(0.5), nodes=1, mpi=False)
        )
        completed = platform.env.run(done)
        assert completed.ok
        assert completed.t_done > completed.t_dispatched >= completed.t_submitted

    def test_many_serial_jobs_use_all_slots(self):
        platform, dispatcher, _ = start_stack(nodes=2, cores=2)
        events = [
            dispatcher.submit(
                JobSpec(program=SleepProgram(1.0), nodes=1, mpi=False)
            )
            for _ in range(4)
        ]
        platform.env.run(platform.env.all_of(events))
        # 4 jobs of 1 s on 4 slots should complete nearly concurrently.
        assert platform.env.now < 2.5

    def test_noop_jobs_drain(self):
        platform, dispatcher, _ = start_stack(nodes=2, cores=2)
        dispatcher.submit_many(
            TaskList(
                [JobSpec(program=NoopProgram(), nodes=1, mpi=False) for _ in range(20)]
            )
        )
        platform.env.run(dispatcher.drained)
        assert dispatcher.jobs_finished == 20
        assert all(c.ok for c in dispatcher.completed)


class TestMpiJobs:
    def test_mpi_job_completes(self):
        platform, dispatcher, _ = start_stack()
        done = dispatcher.submit(
            JobSpec(program=BarrierSleepBarrier(1.0), nodes=3, ppn=1, mpi=True)
        )
        completed = platform.env.run(done)
        assert completed.ok
        assert completed.result.world_size == 3
        assert completed.result.app_time >= 1.0

    def test_workers_reusable_across_mpi_jobs(self):
        """ready_all restores full capacity after whole-node MPI jobs."""
        platform, dispatcher, _ = start_stack(nodes=2)
        for _ in range(3):
            done = dispatcher.submit(
                JobSpec(program=BarrierSleepBarrier(0.2), nodes=2, mpi=True)
            )
            completed = platform.env.run(done)
            assert completed.ok
        assert dispatcher.jobs_finished == 3

    def test_concurrent_mpi_jobs_disjoint_workers(self):
        platform, dispatcher, _ = start_stack(nodes=4)
        e1 = dispatcher.submit(
            JobSpec(program=BarrierSleepBarrier(1.0), nodes=2, mpi=True)
        )
        e2 = dispatcher.submit(
            JobSpec(program=BarrierSleepBarrier(1.0), nodes=2, mpi=True)
        )
        platform.env.run(platform.env.all_of([e1, e2]))
        # Two 1-s jobs over 4 workers overlap.
        assert platform.env.now < 2.2

    def test_ppn_multiplies_world_size(self):
        platform, dispatcher, _ = start_stack(nodes=2, cores=4)
        done = dispatcher.submit(
            JobSpec(program=BarrierSleepBarrier(0.3), nodes=2, ppn=3, mpi=True)
        )
        completed = platform.env.run(done)
        assert completed.ok
        assert completed.result.world_size == 6

    def test_oversized_job_fails_immediately(self):
        platform, dispatcher, _ = start_stack(nodes=2)
        done = dispatcher.submit(
            JobSpec(program=BarrierSleepBarrier(1.0), nodes=8, mpi=True)
        )
        completed = platform.env.run(done)
        assert not completed.ok
        assert "allocation" in completed.error

    def test_mixed_serial_and_mpi(self):
        platform, dispatcher, _ = start_stack(nodes=4)
        jobs = [
            JobSpec(program=BarrierSleepBarrier(0.5), nodes=2, mpi=True),
            JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False),
            JobSpec(program=BarrierSleepBarrier(0.5), nodes=2, mpi=True),
            JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False),
        ]
        dispatcher.submit_many(TaskList(jobs))
        platform.env.run(dispatcher.drained)
        assert all(c.ok for c in dispatcher.completed)


class TestShutdown:
    def test_shutdown_stops_workers(self):
        platform, dispatcher, agents = start_stack(nodes=2)
        done = dispatcher.submit(
            JobSpec(program=SleepProgram(0.1), nodes=1, mpi=False)
        )
        platform.env.run(done)

        def closer():
            yield from dispatcher.shutdown_workers()

        platform.env.process(closer())
        platform.env.run(platform.env.timeout(1.0))
        assert all(not a.alive for a in agents)


class TestFacade:
    def test_run_standalone_report_fields(self):
        sim = Simulation(generic_cluster(nodes=4, cores_per_node=2))
        tasks = TaskList.from_lines(
            ["MPI: 2 mpi-bench 1.0"] * 4 + ["SERIAL: sleep 0.5"] * 2
        )
        report = sim.run_standalone(tasks)
        assert report.jobs_total == 6
        assert report.jobs_completed == 6
        assert report.jobs_failed == 0
        assert 0 < report.utilization <= 1.0
        assert report.span > 0
        assert report.task_rate > 0
        assert report.mean_wireup > 0
        assert "generic" in report.summary()

    def test_seed_reproducibility(self):
        def one(seed):
            sim = Simulation(generic_cluster(nodes=2), seed=seed)
            tasks = TaskList.from_lines(["MPI: 2 mpi-bench 0.5"] * 3)
            return sim.run_standalone(tasks).span

        assert one(3) == one(3)
        assert one(3) != one(4)

    def test_staging_disabled_reads_shared_fs_more(self):
        def bytes_read(stage):
            sim = Simulation(
                generic_cluster(nodes=2),
                JetsConfig(stage_binaries=stage),
            )
            tasks = TaskList.from_lines(["MPI: 2 mpi-bench 0.2"] * 4)
            report = sim.run_standalone(tasks)
            return report.platform.shared_fs.bytes_read

        assert bytes_read(False) > bytes_read(True)


class TestDataStaging:
    def test_stage_in_and_out_add_transfer_time(self):
        """Coasters-style data movement over the task connection (§4.1):
        bigger staged payloads mean longer dispatch/report transfers."""

        def span(stage_bytes):
            platform, dispatcher, _ = start_stack(nodes=1)
            done = dispatcher.submit(
                JobSpec(
                    program=SleepProgram(0.5),
                    nodes=1,
                    mpi=False,
                    stage_in_bytes=stage_bytes,
                    stage_out_bytes=stage_bytes,
                )
            )
            c = platform.env.run(done)
            assert c.ok
            return c.t_done - c.t_dispatched

        assert span(64 << 20) > span(0) + 0.5

    def test_mpi_stage_shares_split_across_workers(self):
        platform, dispatcher, _ = start_stack(nodes=2)
        done = dispatcher.submit(
            JobSpec(
                program=BarrierSleepBarrier(0.3),
                nodes=2,
                mpi=True,
                stage_in_bytes=8 << 20,
                stage_out_bytes=8 << 20,
            )
        )
        c = platform.env.run(done)
        assert c.ok
