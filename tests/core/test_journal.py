"""Tests for the crash-consistent write-ahead run journal."""

import json

import pytest

from repro.core.journal import DEFAULT_BATCH_RECORDS, RunJournal, _plain
from repro.core.tasklist import TaskList
from repro.simkernel.monitor import TraceRecord, record_line


class _Clock:
    """Stand-in environment: just the ``now`` the journal reads."""

    def __init__(self, now=0.0):
        self.now = now


def read_lines(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestAppendAndFlush:
    def test_records_buffer_until_batch_boundary(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock(), batch_records=4)
        for i in range(3):
            jn.append("journal.job_done", {"job": f"t{i}", "attempt": 0})
        assert path.read_text() == ""  # still buffered
        jn.append("journal.job_done", {"job": "t3", "attempt": 0})
        assert len(read_lines(path)) == 4  # batch boundary forced a flush
        jn.close()

    def test_close_flushes_tail(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock(), batch_records=100)
        jn.append("journal.job_done", {"job": "a", "attempt": 0})
        jn.close()
        assert len(read_lines(path)) == 1
        assert jn.closed

    def test_abandon_drops_unflushed_tail(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock(), batch_records=2)
        jn.append("journal.job_done", {"job": "a", "attempt": 0})
        jn.append("journal.job_done", {"job": "b", "attempt": 0})  # flushed
        jn.append("journal.job_done", {"job": "c", "attempt": 0})  # buffered
        jn.abandon()
        names = [rec["data"]["job"] for rec in read_lines(path)]
        assert names == ["a", "b"]  # the tail died with the process

    def test_append_after_close_raises(self, tmp_path):
        jn = RunJournal(str(tmp_path / "run.journal"), env=_Clock())
        jn.close()
        with pytest.raises(RuntimeError):
            jn.append("journal.job_done", {"job": "a", "attempt": 0})
        with pytest.raises(RuntimeError):
            jn.job_done("a", 0)

    def test_segments_append_to_same_file(self, tmp_path):
        path = tmp_path / "run.journal"
        jn0 = RunJournal(str(path), env=_Clock(), segment=0)
        jn0.job_done("a", 0)
        jn0.close()
        jn1 = RunJournal(str(path), env=_Clock(), segment=1, append=True)
        jn1.job_done("b", 0)
        jn1.close()
        recs = read_lines(path)
        assert [r["run"] for r in recs] == [0, 1]

    def test_unbound_journal_stamps_time_zero(self, tmp_path):
        jn = RunJournal(str(tmp_path / "run.journal"))
        jn.job_done("a", 0)
        jn.close()
        assert read_lines(tmp_path / "run.journal")[0]["t"] == 0.0

    def test_default_batch_keeps_tail_thin(self):
        assert 1 <= DEFAULT_BATCH_RECORDS <= 8192


class TestFastPathEquivalence:
    """The typed helpers' template fast path must be byte-identical to
    :func:`record_line`, the archival trace encoder — journals stay
    ``jets lint-trace`` inputs only if both paths agree."""

    def test_job_records_match_record_line(self, tmp_path):
        path = tmp_path / "run.journal"
        clock = _Clock(17.25)
        jn = RunJournal(str(path), env=clock, segment=3)
        tasks = TaskList.from_lines(
            ["SERIAL: sleep 0.5", "MPI: 2 mpi-bench 0.4"]
        )
        expected = []

        def ref(cat, data):
            expected.append(
                record_line(TraceRecord(clock.now, cat, data), run=3)
            )

        for job in tasks:
            jn.job_submitted(job)
            ref(
                "journal.job_submitted",
                {
                    "job": job.job_id,
                    "mpi": job.mpi,
                    "nodes": job.nodes,
                    "ppn": job.ppn,
                    "command": job.command,
                    "max_attempts": job.max_attempts,
                    "attempts": job.attempts,
                    "duration_hint": job.duration_hint,
                    "priority": job.priority,
                },
            )
        jn.job_launched("t1", 0)
        ref("journal.job_launched", {"job": "t1", "attempt": 0})
        jn.job_done("t1", 0)
        ref("journal.job_done", {"job": "t1", "attempt": 0})
        jn.job_failed("t2", 1, error="exit 1")
        ref(
            "journal.job_failed",
            {"job": "t2", "attempt": 1, "error": "exit 1"},
        )
        jn.job_failed("t3", 0)
        ref("journal.job_failed", {"job": "t3", "attempt": 0})
        jn.worker_registered(7, 7)
        ref("journal.worker_registered", {"worker": 7, "node": 7})
        jn.worker_registered("w3", 3)
        ref("journal.worker_registered", {"worker": "w3", "node": 3})
        jn.worker_lost(7, "shutdown")
        ref("journal.worker_lost", {"worker": 7, "reason": "shutdown"})
        jn.worker_lost("w3")
        ref("journal.worker_lost", {"worker": "w3"})
        jn.close()

        got = path.read_text().splitlines(keepends=True)
        assert got == expected

    def test_non_plain_strings_fall_back_and_still_parse(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock())
        tricky = 'quote " backslash \\ unicode é newline-free'
        jn.job_done('we"ird\\id', 1)
        jn.job_failed("t0", 0, error=tricky)
        jn.worker_lost("w0", reason=tricky)
        jn.close()
        recs = read_lines(path)
        assert recs[0]["data"]["job"] == 'we"ird\\id'
        assert recs[1]["data"]["error"] == tricky
        assert recs[2]["data"]["reason"] == tricky

    def test_plain_gate(self):
        assert _plain("t0001")
        assert _plain("mpi-bench 0.5")
        assert not _plain('a"b')
        assert not _plain("a\\b")
        assert not _plain("é")
        assert not _plain("a\nb")
        assert not _plain(7)  # non-strings take the slow path


class TestTypedHelpers:
    def test_run_begin_and_end_flush_immediately(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock(), batch_records=1000)
        jn.run_begin(machine="generic", nodes=4, seed=7, jobs=10)
        assert len(read_lines(path)) == 1  # durable before any job runs
        jn.run_end(ok=True, completed=10, failed=0)
        assert len(read_lines(path)) == 2
        jn.close()
        begin, end = read_lines(path)
        assert begin["cat"] == "journal.run_begin"
        assert begin["data"]["seed"] == 7
        assert end["data"] == {"ok": True, "completed": 10, "failed": 0}

    def test_retry_carries_error_and_reason(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock())
        jn.job_retry("t0", 1, error="worker lost", reason="worker_lost")
        jn.job_retry("t1", 2)
        jn.close()
        recs = read_lines(path)
        assert recs[0]["data"] == {
            "job": "t0",
            "attempt": 1,
            "error": "worker lost",
            "reason": "worker_lost",
        }
        assert recs[1]["data"] == {"job": "t1", "attempt": 2}


class TestTornTailTruncation:
    def test_append_mode_trims_partial_final_line(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock())
        jn.job_done("a", 0)
        jn.job_done("b", 0)
        jn.close()
        raw = path.read_bytes()
        torn_at = raw.rstrip(b"\n").rfind(b"\n") + 1 + 4
        path.write_bytes(raw[:torn_at])  # torn mid-final-record
        jn2 = RunJournal(str(path), env=_Clock(), segment=1, append=True)
        jn2.job_done("c", 0)
        jn2.close()
        # Every line parses: the fragment was dropped, not welded onto
        # the next segment's first record.
        recs = read_lines(path)
        assert [r["data"]["job"] for r in recs] == ["a", "c"]
        assert [r["run"] for r in recs] == [0, 1]

    def test_append_mode_noop_on_clean_file(self, tmp_path):
        path = tmp_path / "run.journal"
        jn = RunJournal(str(path), env=_Clock())
        jn.job_done("a", 0)
        jn.close()
        before = path.read_bytes()
        jn2 = RunJournal(str(path), env=_Clock(), segment=1, append=True)
        jn2.close()
        assert path.read_bytes() == before

    def test_append_mode_empties_single_torn_line(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_bytes(b'{"t":0.0,"cat":"journal.run_beg')  # no newline
        jn = RunJournal(str(path), env=_Clock(), segment=1, append=True)
        jn.job_done("a", 0)
        jn.close()
        recs = read_lines(path)
        assert [r["data"]["job"] for r in recs] == ["a"]
