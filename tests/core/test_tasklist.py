"""Tests for JobSpec and the stand-alone task-list parser."""

import pytest

from repro.apps.synthetic import SleepProgram
from repro.core.tasklist import JobSpec, TaskList, TaskListError


class TestJobSpec:
    def test_world_size(self):
        job = JobSpec(program=SleepProgram(1), nodes=4, ppn=2)
        assert job.world_size == 8

    def test_duration_hint_from_program(self):
        job = JobSpec(program=SleepProgram(2.5), nodes=1)
        assert job.duration_hint == 2.5

    def test_explicit_duration_hint_wins(self):
        job = JobSpec(program=SleepProgram(2.5), nodes=1, duration_hint=9.0)
        assert job.duration_hint == 9.0

    def test_serial_must_be_single_process(self):
        with pytest.raises(TaskListError):
            JobSpec(program=SleepProgram(1), nodes=2, mpi=False)

    def test_positive_counts(self):
        with pytest.raises(TaskListError):
            JobSpec(program=SleepProgram(1), nodes=0)
        with pytest.raises(TaskListError):
            JobSpec(program=SleepProgram(1), nodes=1, ppn=0)

    def test_unique_ids(self):
        a = JobSpec(program=SleepProgram(1))
        b = JobSpec(program=SleepProgram(1))
        assert a.job_id != b.job_id


class TestDuplicateIds:
    def test_duplicate_job_ids_rejected(self):
        a = JobSpec(program=SleepProgram(1), job_id="same")
        b = JobSpec(program=SleepProgram(1), job_id="same")
        with pytest.raises(TaskListError, match="duplicate job id 'same'"):
            TaskList([a, b])

    def test_distinct_explicit_ids_accepted(self):
        a = JobSpec(program=SleepProgram(1), job_id="x1")
        b = JobSpec(program=SleepProgram(1), job_id="x2")
        assert len(TaskList([a, b])) == 2


class TestTaskListParser:
    def test_paper_format(self):
        """The exact Section 5.1 example input."""
        text = """\
MPI: 4 namd2.sh input-1.pdb output-1.log
MPI: 8 namd2.sh input-2.pdb output-2.log
MPI: 6 namd2.sh input-3.pdb output-3.log
"""
        tasks = TaskList.from_text(text)
        assert len(tasks) == 3
        assert [j.nodes for j in tasks] == [4, 8, 6]
        assert all(j.mpi for j in tasks)
        assert tasks.jobs[0].program.input_name == "input-1.pdb"

    def test_serial_lines(self):
        tasks = TaskList.from_lines(["SERIAL: sleep 2.0", "SERIAL: noop"])
        assert len(tasks) == 2
        assert not tasks.jobs[0].mpi
        assert tasks.jobs[0].duration_hint == 2.0

    def test_comments_and_blanks_skipped(self):
        tasks = TaskList.from_lines(
            ["# header", "", "MPI: 2 sleep 1.0", "   ", "# done"]
        )
        assert len(tasks) == 1

    def test_ppn_applied_to_mpi_jobs(self):
        tasks = TaskList.from_lines(["MPI: 2 sleep 1.0"], ppn=4)
        assert tasks.jobs[0].world_size == 8

    def test_unknown_command_rejected(self):
        with pytest.raises(TaskListError, match="unknown command"):
            TaskList.from_lines(["MPI: 2 frobnicate x"])

    def test_bad_node_count_rejected(self):
        with pytest.raises(TaskListError, match="bad node count"):
            TaskList.from_lines(["MPI: many sleep 1"])

    def test_missing_prefix_rejected(self):
        with pytest.raises(TaskListError, match="job-type prefix"):
            TaskList.from_lines(["sleep 1"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(TaskListError, match="unknown job type"):
            TaskList.from_lines(["GPU: 2 sleep 1"])

    def test_empty_rejected(self):
        with pytest.raises(TaskListError):
            TaskList.from_lines(["# nothing"])

    def test_custom_registry(self):
        reg = {"myapp": lambda args: SleepProgram(float(args[0]))}
        tasks = TaskList.from_lines(["MPI: 2 myapp 3.5"], registry=reg)
        assert tasks.jobs[0].duration_hint == 3.5

    def test_total_processes(self):
        tasks = TaskList.from_lines(
            ["MPI: 2 sleep 1", "MPI: 3 sleep 1"], ppn=2
        )
        assert tasks.total_processes == 10
