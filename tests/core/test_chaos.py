"""Tests for the composable chaos engine and seeded campaigns."""

import itertools

import pytest

import repro.core.tasklist as tasklist
import repro.core.worker as worker
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.chaos import (
    FAULT_KINDS,
    PLAN_KINDS,
    ChaosConfig,
    ChaosEngine,
    FaultClause,
    FaultPlan,
    chaos_campaign,
    plan_for_index,
    run_chaos_plan,
)


def _reset_id_counters():
    """Fresh module-global id streams, as in a new interpreter."""
    worker._worker_seq = itertools.count()
    tasklist._spec_seq = itertools.count()


class _FakeAgent:
    """Just enough pilot surface for the engine's effectors."""

    def __init__(self, node, worker_id):
        self.node = node
        self.worker_id = worker_id
        self.alive = True

    def kill(self, reason=""):
        self.alive = False

    def running_proxies(self):
        return []


def make_rig(nodes=3):
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=1))
    agents = [
        _FakeAgent(node, worker_id=i)
        for i, node in enumerate(platform.nodes)
    ]
    engine = ChaosEngine(platform, lambda: agents)
    return platform, agents, engine


class TestClauseValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultClause(kind="meteor_strike")

    def test_scheduled_needs_times(self):
        with pytest.raises(ValueError):
            FaultClause(kind="worker_kill", mode="scheduled")

    def test_jitter_must_stay_below_interval(self):
        with pytest.raises(ValueError):
            FaultClause(
                kind="worker_kill", mode="jittered", interval=1.0, jitter=1.0
            )

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultClause(kind="net_drop", probability=1.5)

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            FaultClause(kind="worker_kill", window=(5.0, 1.0))

    def test_plan_kinds_deduplicated_in_order(self):
        plan = FaultPlan(
            clauses=(
                FaultClause(kind="net_drop"),
                FaultClause(kind="worker_kill"),
                FaultClause(kind="net_drop"),
            )
        )
        assert plan.kinds() == ("net_drop", "worker_kill")


class TestPlanGeneration:
    def test_every_plannable_kind_appears_across_a_campaign(self):
        kinds = set()
        for i in range(21):
            kinds.update(plan_for_index(i).kinds())
        assert kinds == set(PLAN_KINDS)

    def test_generated_plans_never_crash_the_dispatcher(self):
        # dispatcher_crash is injected only by explicit resume campaigns;
        # generated campaign plans must stay byte-stable and crash-free.
        assert "dispatcher_crash" in FAULT_KINDS
        assert "dispatcher_crash" not in PLAN_KINDS
        for i in range(40):
            assert "dispatcher_crash" not in plan_for_index(i).kinds()

    def test_every_third_plan_mixes_four_kinds(self):
        assert len(plan_for_index(0).kinds()) == 4
        assert len(plan_for_index(3).kinds()) == 4
        assert len(plan_for_index(1).kinds()) == 2

    def test_generation_is_deterministic(self):
        assert plan_for_index(5) == plan_for_index(5)
        assert plan_for_index(5) != plan_for_index(6)


class TestEngineEffects:
    def test_scheduled_kill_fires_at_time(self):
        platform, agents, engine = make_rig()
        plan = FaultPlan(
            (
                FaultClause(
                    kind="worker_kill", mode="scheduled", times=(0.5,)
                ),
            )
        )
        engine.start(plan)
        platform.env.run(platform.env.timeout(1.0))
        assert engine.injected["worker_kill"] == 1
        assert sum(1 for a in agents if not a.alive) == 1
        kills = platform.trace.select("fault.kill")
        assert kills and kills[0].time == pytest.approx(0.5)
        engine.stop()

    def test_straggler_sets_and_heals_slowdown(self):
        platform, agents, engine = make_rig(nodes=1)
        plan = FaultPlan(
            (
                FaultClause(
                    kind="straggler",
                    mode="scheduled",
                    times=(1.0,),
                    duration=2.0,
                    factor=3.0,
                ),
            )
        )
        engine.start(plan)
        env = platform.env
        env.run(env.timeout(1.5))
        assert platform.nodes[0].slowdown == 3.0
        env.run(env.timeout(2.0))
        assert platform.nodes[0].slowdown == 1.0
        assert platform.trace.select("fault.heal")
        engine.stop()

    def test_clause_retires_past_window(self):
        platform, agents, engine = make_rig(nodes=5)
        plan = FaultPlan(
            (
                FaultClause(
                    kind="worker_kill",
                    mode="fixed",
                    interval=1.0,
                    window=(0.0, 2.5),
                ),
            )
        )
        engine.start(plan)
        platform.env.run(platform.env.timeout(10.0))
        assert engine.injected["worker_kill"] == 2  # t=1 and t=2 only
        engine.stop()

    def test_partition_drops_messages_between_nodes(self):
        platform, agents, engine = make_rig(nodes=2)
        plan = FaultPlan(
            (
                FaultClause(
                    kind="partition",
                    mode="scheduled",
                    times=(0.0,),
                    nodes=(platform.nodes[0].node_id,),
                    duration=5.0,
                ),
            )
        )
        engine.start(plan)
        env = platform.env
        net = platform.network
        a, b = platform.nodes[0].endpoint, platform.nodes[1].endpoint
        received = []

        def server():
            lis = net.listen(b, "svc")
            sock = yield lis.accept()
            while True:
                msg = yield sock.recv()
                received.append(msg.payload)

        def client():
            # Connect before the partition lands (scheduled at t=0 fires
            # only once the engine's clause process runs).
            sock = yield from net.connect(a, b, "svc")
            yield env.timeout(1.0)  # partition now active
            yield sock.send("lost", 10)
            yield env.timeout(5.0)  # partition healed
            yield sock.send("kept", 10)
            yield env.timeout(1.0)

        env.process(server())
        p = env.process(client())
        env.run(p)
        assert received == ["kept"]
        assert engine.injected["partition"] == 1
        engine.stop()


class TestChaosPlans:
    def test_small_campaign_all_plans_pass(self):
        _reset_id_counters()
        config = ChaosConfig(
            plans=4, serial_tasks=6, mpi_tasks=2, until=240.0
        )
        report = chaos_campaign(config)
        assert report.ok, [(r.index, r.problems) for r in report.failures]
        totals = report.kinds_exercised()
        assert sum(totals.values()) > 0
        for result in report.results:
            assert result.drained
            assert (
                result.jobs_ok + result.jobs_failed == result.jobs_submitted
            )

    def test_plan_replay_is_deterministic(self):
        config = ChaosConfig(serial_tasks=6, mpi_tasks=1, until=240.0)

        def once():
            _reset_id_counters()
            r = run_chaos_plan(config, 3)
            assert r.ok, r.problems
            return (
                r.seed,
                r.injected,
                r.respawns,
                r.jobs_ok,
                r.jobs_failed,
                r.wire_count,
            )

        assert once() == once()


class TestDispatcherCrash:
    def test_scheduled_crash_triggers_event_once(self):
        platform, agents, engine = make_rig()
        plan = FaultPlan(
            (
                FaultClause(
                    kind="dispatcher_crash", mode="scheduled", times=(0.5, 0.7)
                ),
            )
        )
        engine.start(plan)
        platform.env.run(platform.env.timeout(1.0))
        # The event fires exactly once even with two scheduled times.
        assert engine.crashed.triggered
        assert engine.injected["dispatcher_crash"] == 1
        marks = platform.trace.select("fault.dispatcher_crash")
        assert len(marks) == 1
        assert marks[0].data["at"] == pytest.approx(0.5)
        engine.stop()

    def test_no_crash_leaves_event_untriggered(self):
        platform, agents, engine = make_rig()
        plan = FaultPlan(
            (FaultClause(kind="worker_kill", mode="scheduled", times=(0.5,)),)
        )
        engine.start(plan)
        platform.env.run(platform.env.timeout(1.0))
        assert not engine.crashed.triggered
        engine.stop()
