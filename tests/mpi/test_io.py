"""Tests for the MPI-IO collective I/O model."""

import pytest

from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.mpi.app import RankContext
from repro.mpi.comm import SimComm
from repro.mpi.io import (
    CollectiveFile,
    default_aggregators,
    independent_write,
)


def run_ranks(n_ranks, body_factory, nodes=None):
    platform = Platform(generic_cluster(nodes=max(2, n_ranks)))
    env = platform.env
    comm = SimComm(env, platform.fabric, list(range(n_ranks)))
    procs = []
    for r in range(n_ranks):
        ctx = RankContext(
            env=env, comm=comm, rank=r, size=n_ranks,
            node=platform.node(r % platform.spec.nodes), job_id="io",
        )
        procs.append(env.process(body_factory(ctx)))
    env.run(env.all_of(procs))
    return platform


class TestAggregators:
    def test_every_kth_rank(self):
        assert default_aggregators(32, 16) == [0, 16]
        assert default_aggregators(8, 16) == [0]
        assert default_aggregators(33, 16) == [0, 16, 32]

    def test_validation(self):
        with pytest.raises(ValueError):
            default_aggregators(8, 0)


class TestCollectiveWrite:
    def test_paper_claim_client_reduction(self):
        """'for 16-process MPTC tasks using MPI-IO, the number of clients
        would be N/16': only aggregators touch the filesystem."""
        n = 16
        clients = []

        def body(ctx):
            fs = ctx.node.shared_fs
            before = fs.bytes_written
            f = CollectiveFile(ctx, ranks_per_aggregator=16)
            yield from f.write_all(1 << 20)
            if ctx.rank == 0:
                clients.append(fs.active_clients)

        platform = run_ranks(n, body)
        # All data written once, through one aggregator.
        assert platform.shared_fs.bytes_written == n * (1 << 20)

    def test_total_bytes_preserved(self):
        n = 8

        def body(ctx):
            f = CollectiveFile(ctx, ranks_per_aggregator=4)
            yield from f.write_all(1000 * (ctx.rank + 1))

        platform = run_ranks(n, body)
        assert platform.shared_fs.bytes_written == sum(
            1000 * (r + 1) for r in range(n)
        )

    def test_collective_beats_independent_under_lock_contention(self):
        """Two-phase I/O wins where the paper says it does: many clients
        making small uncoordinated accesses to a contended filesystem
        ("uncoordinated filesystem accesses that are difficult to
        manage", §1.2).  For pure streaming of large buffers with mild
        contention, aggregation correctly does NOT win (the shuffle costs
        more than it saves) — see the abl_mpiio benchmark's crossover."""
        import dataclasses

        from repro.oslayer.filesystem import FilesystemSpec

        thrash = FilesystemSpec(
            name="gpfs-shared-file",
            metadata_latency=1.5e-3,
            latency=0.8e-3,
            bandwidth=350e6,
            contention_alpha=1.0,  # write-lock thrash on a shared file
        )
        n = 16
        nbytes = 64 << 10
        rounds = 10

        def collective(ctx):
            f = CollectiveFile(ctx, ranks_per_aggregator=16)
            for _ in range(rounds):
                yield from f.write_all(nbytes)

        def independent(ctx):
            for _ in range(rounds):
                yield from independent_write(ctx, nbytes)

        def run(body):
            machine = dataclasses.replace(
                generic_cluster(nodes=n), shared_fs=thrash
            )
            platform = Platform(machine)
            env = platform.env
            comm = SimComm(env, platform.fabric, list(range(n)))
            procs = []
            for r in range(n):
                ctx = RankContext(
                    env=env, comm=comm, rank=r, size=n,
                    node=platform.node(r), job_id="io",
                )
                procs.append(env.process(body(ctx)))
            env.run(env.all_of(procs))
            return env.now

        assert run(collective) < run(independent)

    def test_repeated_collective_ops(self):
        def body(ctx):
            f = CollectiveFile(ctx, ranks_per_aggregator=4)
            yield from f.write_all(1024)
            yield from f.write_all(2048)

        platform = run_ranks(4, body)
        assert platform.shared_fs.bytes_written == 4 * (1024 + 2048)


class TestCollectiveRead:
    def test_read_all_returns_bytes(self):
        results = {}

        def body(ctx):
            f = CollectiveFile(ctx, ranks_per_aggregator=4)
            got = yield from f.read_all(512 * (ctx.rank + 1))
            results[ctx.rank] = got

        platform = run_ranks(4, body)
        assert results == {0: 512, 1: 1024, 2: 1536, 3: 2048}
        assert platform.shared_fs.bytes_read == 512 + 1024 + 1536 + 2048

    def test_single_rank_degenerate(self):
        def body(ctx):
            f = CollectiveFile(ctx, ranks_per_aggregator=16)
            yield from f.write_all(100)
            yield from f.read_all(100)

        platform = run_ranks(1, body)
        assert platform.shared_fs.bytes_written == 100
        assert platform.shared_fs.bytes_read == 100
