"""Tests for the PMI key-value space."""

import pytest

from repro.mpi.pmi import PmiError, PmiKvs


class TestPmiKvs:
    def test_put_invisible_before_fence(self, env):
        kvs = PmiKvs(env, 2)
        kvs.put(0, "addr-0", "n0")
        assert not kvs.has("addr-0")
        with pytest.raises(PmiError):
            kvs.get(1, "addr-0")

    def test_fence_commits_puts(self, env):
        kvs = PmiKvs(env, 2)
        kvs.put(0, "addr-0", "n0")
        kvs.put(1, "addr-1", "n1")
        done = []

        def rank(r):
            yield kvs.fence(r)
            done.append((r, kvs.get(r, "addr-0"), kvs.get(r, "addr-1")))

        env.process(rank(0))
        env.process(rank(1))
        env.run()
        assert sorted(done) == [(0, "n0", "n1"), (1, "n0", "n1")]
        assert kvs.fence_generation == 1

    def test_fence_blocks_until_all_ranks(self, env):
        kvs = PmiKvs(env, 3)
        times = []

        def rank(r, delay):
            yield env.timeout(delay)
            yield kvs.fence(r)
            times.append(env.now)

        env.process(rank(0, 0))
        env.process(rank(1, 1))
        env.process(rank(2, 5))
        env.run()
        assert times == [5, 5, 5]

    def test_double_fence_same_generation_rejected(self, env):
        kvs = PmiKvs(env, 2)
        kvs.fence(0)
        with pytest.raises(PmiError):
            kvs.fence(0)

    def test_second_fence_generation(self, env):
        kvs = PmiKvs(env, 1)

        def rank():
            kvs.put(0, "k1", 1)
            yield kvs.fence(0)
            kvs.put(0, "k2", 2)
            yield kvs.fence(0)
            return kvs.get(0, "k1"), kvs.get(0, "k2")

        p = env.process(rank())
        env.run()
        assert p.value == (1, 2)
        assert kvs.fence_generation == 2

    def test_duplicate_put_rejected(self, env):
        kvs = PmiKvs(env, 2)
        kvs.put(0, "k", 1)
        with pytest.raises(PmiError):
            kvs.put(1, "k", 2)

    def test_rank_range_checked(self, env):
        kvs = PmiKvs(env, 2)
        with pytest.raises(PmiError):
            kvs.put(5, "k", 1)
        with pytest.raises(PmiError):
            kvs.fence(-1)

    def test_snapshot(self, env):
        kvs = PmiKvs(env, 1)
        kvs.put(0, "a", 1)
        env.process(self._fence_once(kvs))
        env.run()
        snap = kvs.snapshot()
        assert snap == {"a": 1}
        snap["b"] = 2
        assert not kvs.has("b")  # snapshot is a copy

    @staticmethod
    def _fence_once(kvs):
        yield kvs.fence(0)

    def test_size_validation(self, env):
        with pytest.raises(ValueError):
            PmiKvs(env, 0)
