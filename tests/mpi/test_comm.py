"""Tests for the simulated MPI communicator and its collectives."""

import pytest

from repro.netsim.fabric import ETHERNET, NATIVE_BGP, TCP_ZEPTO_BGP, Fabric
from repro.mpi.comm import MpiAbort, SimComm
from repro.simkernel import Environment


def make_comm(n, fabric_spec=ETHERNET):
    env = Environment()
    fabric = Fabric(env, fabric_spec)
    comm = SimComm(env, fabric, list(range(n)))
    return env, comm


def run_spmd(env, comm, rank_fn):
    """Run rank_fn(rank) on every rank; returns list of results by rank."""
    results = [None] * comm.size
    procs = []

    def wrap(r):
        results[r] = yield from rank_fn(r)

    for r in range(comm.size):
        procs.append(env.process(wrap(r)))
    env.run(env.all_of(procs))
    return results


class TestPointToPoint:
    def test_send_recv_payload(self):
        env, comm = make_comm(2)

        def body(rank):
            if rank == 0:
                yield from comm.send(0, 1, {"data": 42}, 100, tag="t")
                return None
            src, tag, payload = yield from comm.recv(1, source=0, tag="t")
            return (src, tag, payload)

        results = run_spmd(env, comm, body)
        assert results[1] == (0, "t", {"data": 42})

    def test_tag_matching_out_of_order(self):
        env, comm = make_comm(2)

        def body(rank):
            if rank == 0:
                yield from comm.send(0, 1, "first", 10, tag="a")
                yield from comm.send(0, 1, "second", 10, tag="b")
                return None
            # Receive tag b before tag a.
            _, _, pb = yield from comm.recv(1, source=0, tag="b")
            _, _, pa = yield from comm.recv(1, source=0, tag="a")
            return (pa, pb)

        results = run_spmd(env, comm, body)
        assert results[1] == ("first", "second")

    def test_any_source_any_tag(self):
        env, comm = make_comm(3)

        def body(rank):
            if rank in (0, 1):
                yield from comm.send(rank, 2, f"from{rank}", 10, tag=rank)
                return None
            got = []
            for _ in range(2):
                s, t, p = yield from comm.recv(2)
                got.append(p)
            return sorted(got)

        results = run_spmd(env, comm, body)
        assert results[2] == ["from0", "from1"]

    def test_rendezvous_adds_latency(self):
        env1, comm1 = make_comm(2)
        env2, comm2 = make_comm(2)
        small = SimComm.RENDEZVOUS_BYTES
        t_eager = self._one_msg_time(env1, comm1, small)
        t_rendezvous = self._one_msg_time(env2, comm2, small + 1)
        assert t_rendezvous > t_eager

    @staticmethod
    def _one_msg_time(env, comm, nbytes):
        def body(rank):
            if rank == 0:
                yield from comm.send(0, 1, None, nbytes, tag=0)
                return None
            yield from comm.recv(1, source=0, tag=0)
            return env.now

        return run_spmd(env, comm, body)[1]

    def test_rank_validation(self):
        env, comm = make_comm(2)
        with pytest.raises(ValueError):
            list(comm.send(0, 5))


class TestBarrier:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13])
    def test_barrier_releases_all_after_last_arrival(self, n):
        env, comm = make_comm(n)
        release = [None] * n

        def body(rank):
            yield env.timeout(rank)  # staggered arrival; last at t=n-1
            yield from comm.barrier(rank)
            release[rank] = env.now
            return None

        run_spmd(env, comm, body)
        assert all(t >= n - 1 for t in release)
        # releases cluster tightly after the last arrival
        assert max(release) - min(release) < 0.1

    def test_two_barriers_back_to_back(self):
        env, comm = make_comm(4)

        def body(rank):
            yield from comm.barrier(rank)
            yield from comm.barrier(rank)
            return env.now

        results = run_spmd(env, comm, body)
        assert all(r is not None for r in results)


class TestBcast:
    @pytest.mark.parametrize("n,root", [(2, 0), (4, 0), (5, 2), (8, 7), (9, 3)])
    def test_bcast_delivers_root_value(self, n, root):
        env, comm = make_comm(n)

        def body(rank):
            payload = f"from-{root}" if rank == root else None
            value = yield from comm.bcast(rank, root, payload, 1024)
            return value

        results = run_spmd(env, comm, body)
        assert results == [f"from-{root}"] * n

    def test_bcast_large_message_slower(self):
        def elapsed(nbytes):
            env, comm = make_comm(4)

            def body(rank):
                yield from comm.bcast(rank, 0, "v", nbytes)
                return env.now

            return max(run_spmd(env, comm, body))

        assert elapsed(4 << 20) > elapsed(64)


class TestAllgather:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7])
    def test_allgather_collects_all(self, n):
        env, comm = make_comm(n)

        def body(rank):
            values = yield from comm.allgather(rank, rank * 10, 64)
            return values

        results = run_spmd(env, comm, body)
        expected = [r * 10 for r in range(n)]
        assert all(res == expected for res in results)


class TestAllreduce:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_sum_power_of_two(self, n):
        env, comm = make_comm(n)

        def body(rank):
            total = yield from comm.allreduce(rank, rank + 1)
            return total

        results = run_spmd(env, comm, body)
        assert results == [n * (n + 1) // 2] * n

    @pytest.mark.parametrize("n", [3, 5, 6])
    def test_sum_non_power_of_two(self, n):
        env, comm = make_comm(n)

        def body(rank):
            total = yield from comm.allreduce(rank, rank + 1)
            return total

        results = run_spmd(env, comm, body)
        assert results == [n * (n + 1) // 2] * n

    def test_custom_op(self):
        env, comm = make_comm(4)

        def body(rank):
            m = yield from comm.allreduce(rank, rank, op=max)
            return m

        results = run_spmd(env, comm, body)
        assert results == [3, 3, 3, 3]


class TestFabricEffects:
    def test_tcp_barrier_slower_than_native(self):
        def barrier_time(spec):
            env, comm = make_comm(8, spec)

            def body(rank):
                yield from comm.barrier(rank)
                return env.now

            return max(run_spmd(env, comm, body))

        assert barrier_time(TCP_ZEPTO_BGP) > 3 * barrier_time(NATIVE_BGP)


class TestAbort:
    def test_abort_wakes_blocked_receivers(self):
        env, comm = make_comm(2)
        outcome = {}

        def blocked():
            try:
                yield from comm.recv(1, source=0, tag="never")
            except MpiAbort:
                outcome["aborted"] = env.now

        def killer():
            yield env.timeout(5)
            comm.abort()

        env.process(blocked())
        env.process(killer())
        env.run()
        assert outcome["aborted"] == 5
        assert comm.aborted

    def test_send_after_abort_raises(self):
        env, comm = make_comm(2)
        comm.abort()
        with pytest.raises(MpiAbort):
            list(comm.send(0, 1))

    def test_double_abort_is_noop(self):
        env, comm = make_comm(2)
        comm.abort()
        comm.abort()
