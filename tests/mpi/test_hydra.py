"""Tests for the Hydra mpiexec/proxy bootstrap protocol."""

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.mpi.hydra import (
    PROXY_IMAGE,
    HydraConfig,
    MpiexecController,
    run_proxy,
)
from repro.simkernel import Resource


def launch_job(platform, hosts, program, config=None, kill_worker_at=None):
    """Drive one full mpiexec+proxies job; returns (result, proxies)."""
    ctl = MpiexecController(
        platform, "job", hosts, program, config or HydraConfig()
    )
    proxies = []

    def main():
        cmds = yield from ctl.launch()
        for (node, _ranks), cmd in zip(hosts, cmds):
            proxies.append(
                platform.env.process(
                    node.exec_process(
                        PROXY_IMAGE,
                        lambda node=node, cmd=cmd: run_proxy(
                            platform, node, cmd, program
                        ),
                        claim_core=False,
                        count_busy=False,
                    )
                )
            )
        result = yield ctl.done
        return result

    proc = platform.env.process(main())
    if kill_worker_at is not None:
        t, idx = kill_worker_at

        def killer():
            yield platform.env.timeout(t)
            if proxies[idx].is_alive:
                proxies[idx].interrupt("fault")

        platform.env.process(killer())
    platform.env.run(proc)
    return proc.value, proxies


def make_platform(nodes=4):
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=4))
    for node in platform.nodes:
        node.stage(PROXY_IMAGE)
    return platform


class TestHappyPath:
    def test_job_completes_ok(self):
        platform = make_platform()
        hosts = [(platform.node(i), (i,)) for i in range(3)]
        result, _ = launch_job(platform, hosts, BarrierSleepBarrier(1.0))
        assert result.ok
        assert result.world_size == 3
        assert result.app_time >= 1.0
        assert result.wireup_time > 0
        assert result.t_done >= result.t_app_end >= result.t_app_start

    def test_rank0_value_returned(self):
        platform = make_platform()
        hosts = [(platform.node(0), (0,)), (platform.node(1), (1,))]
        result, _ = launch_job(platform, hosts, SleepProgram(0.1))
        assert result.rank0_value == 0  # SleepProgram returns its rank

    def test_multirank_per_node(self):
        platform = make_platform(2)
        hosts = [(platform.node(0), (0, 1)), (platform.node(1), (2, 3))]
        result, _ = launch_job(platform, hosts, BarrierSleepBarrier(0.5))
        assert result.ok
        assert result.world_size == 4

    def test_single_proxy_job(self):
        platform = make_platform(1)
        hosts = [(platform.node(0), (0,))]
        result, _ = launch_job(platform, hosts, SleepProgram(0.2))
        assert result.ok

    def test_msg_cost_slows_wireup(self):
        def wireup(msg_cost):
            platform = make_platform(4)
            hosts = [(platform.node(i), (i,)) for i in range(4)]
            result, _ = launch_job(
                platform,
                hosts,
                SleepProgram(0.1),
                HydraConfig(msg_cost=msg_cost),
            )
            return result.wireup_time

        assert wireup(0.01) > wireup(0.0)

    def test_ranks_must_form_permutation(self):
        platform = make_platform(2)
        ctl = MpiexecController(
            platform,
            "bad",
            [(platform.node(0), (0,)), (platform.node(1), (0,))],
            SleepProgram(0.1),
        )

        def main():
            yield from ctl.launch()

        with pytest.raises(ValueError):
            platform.env.run(platform.env.process(main()))

    def test_submit_cpu_serializes_spawns(self):
        platform = make_platform(2)
        cpu = Resource(platform.env, 1)
        t = {}

        def main():
            ctls = [
                MpiexecController(
                    platform,
                    f"j{i}",
                    [(platform.node(i), (0,))],
                    SleepProgram(0.1),
                    HydraConfig(mpiexec_spawn=0.5),
                    submit_cpu=cpu,
                )
                for i in range(2)
            ]
            for i, ctl in enumerate(ctls):
                yield from ctl.launch()
                t[i] = platform.env.now

        # Launch sequentially in one process; spawns serialize on `cpu`.
        platform.env.run(platform.env.process(main()))
        assert t[1] - t[0] >= 0.5


class TestFailures:
    def test_killed_proxy_fails_job(self):
        platform = make_platform()
        hosts = [(platform.node(i), (i,)) for i in range(3)]
        result, _ = launch_job(
            platform, hosts, BarrierSleepBarrier(30.0), kill_worker_at=(5.0, 1)
        )
        assert not result.ok
        assert "proxy" in result.error or "connection" in result.error

    def test_other_proxies_released_after_failure(self):
        """Ranks blocked in collectives are interrupted, not leaked."""
        platform = make_platform()
        hosts = [(platform.node(i), (i,)) for i in range(3)]
        result, proxies = launch_job(
            platform, hosts, BarrierSleepBarrier(60.0), kill_worker_at=(3.0, 0)
        )
        assert not result.ok
        # Drain any remaining teardown events; no deadlock.
        platform.env.run()
        assert all(not p.is_alive for p in proxies)
        for node in platform.nodes:
            assert node.busy_cores == 0

    def test_watchdog_fails_unstarted_job(self):
        platform = make_platform(2)
        program = SleepProgram(1.0)
        ctl = MpiexecController(
            platform,
            "stuck",
            [(platform.node(0), (0,)), (platform.node(1), (1,))],
            program,
            HydraConfig(launch_timeout=5.0),
        )

        def main():
            cmds = yield from ctl.launch()
            # Launch only ONE of the two proxies; the other never connects.
            node, cmd = platform.node(0), cmds[0]
            platform.env.process(
                node.exec_process(
                    PROXY_IMAGE,
                    lambda: run_proxy(platform, node, cmd, program),
                    claim_core=False,
                )
            )
            result = yield ctl.done
            return result

        proc = platform.env.process(main())
        platform.env.run(proc)
        assert not proc.value.ok
        assert "watchdog" in proc.value.error

    def test_external_abort(self):
        platform = make_platform(2)
        program = BarrierSleepBarrier(60.0)
        ctl = MpiexecController(
            platform,
            "aborted",
            [(platform.node(0), (0,)), (platform.node(1), (1,))],
            program,
        )

        def main():
            cmds = yield from ctl.launch()
            for (node, _r), cmd in zip(
                [(platform.node(0), None), (platform.node(1), None)], cmds
            ):
                platform.env.process(
                    node.exec_process(
                        PROXY_IMAGE,
                        lambda node=node, cmd=cmd: run_proxy(
                            platform, node, cmd, program
                        ),
                        claim_core=False,
                    )
                )
            yield platform.env.timeout(5.0)
            ctl.abort("operator abort")
            result = yield ctl.done
            return result

        proc = platform.env.process(main())
        platform.env.run(proc)
        assert not proc.value.ok
        assert "operator abort" in proc.value.error
        platform.env.run()
        assert all(n.busy_cores == 0 for n in platform.nodes)
