"""Span-driven timelines must match the seed's raw-trace algorithm."""

import pytest

from repro.core.jets import FaultSpec, JetsConfig, Simulation
from repro.core.tasklist import TaskList
from repro.cluster.machine import generic_cluster
from repro.metrics.timeline import (
    available_workers_series,
    running_jobs_series,
    step_series,
)
from repro.obs.export import read_jsonl, to_jsonl
from repro.obs.spans import build_spans
from repro.simkernel import Trace


def reference_running_jobs(trace: Trace):
    """The pre-span implementation: scan job.done/job.failed stamps."""
    starts, ends = [], []
    for rec in trace.records:
        if rec.category in ("job.done", "job.failed"):
            data = rec.data or {}
            s, e = data.get("app_start"), data.get("app_end")
            if s is not None and e is not None:
                starts.append(s)
                ends.append(e)
    return step_series(starts, ends)


def reference_available_workers(trace: Trace, initial=0):
    """The pre-span implementation: scan worker.start/worker.stop."""
    series, level = [], initial
    events = []
    for rec in trace.records:
        if rec.category == "worker.start":
            events.append((rec.time, 1))
        elif rec.category == "worker.stop":
            events.append((rec.time, -1))
    events.sort()
    for t, d in events:
        level += d
        if series and series[-1][0] == t:
            series[-1] = (t, level)
        else:
            series.append((t, level))
    return series


@pytest.fixture(params=["clean", "faulty"])
def trace(request):
    machine = generic_cluster(nodes=4, cores_per_node=2)
    tasks = TaskList.from_text(
        "\n".join(["MPI: 2 mpi-bench 0.5"] * 4 + ["SERIAL: sleep 0.3"] * 2)
    )
    faults = FaultSpec(interval=2.0) if request.param == "faulty" else None
    report = Simulation(machine, JetsConfig(), seed=3).run_standalone(
        tasks, faults=faults, until=600.0
    )
    return report.platform.trace


class TestTimelineIdentity:
    def test_running_jobs_matches_reference(self, trace):
        assert running_jobs_series(trace) == reference_running_jobs(trace)

    def test_available_workers_matches_reference(self, trace):
        assert available_workers_series(trace, initial=0) == (
            reference_available_workers(trace, initial=0)
        )

    def test_series_accept_prebuilt_spans_and_records(self, trace, tmp_path):
        spans = build_spans(trace)
        assert running_jobs_series(spans) == running_jobs_series(trace)
        path = str(tmp_path / "t.jsonl")
        to_jsonl(trace, path)
        assert running_jobs_series(read_jsonl(path)) == (
            running_jobs_series(trace)
        )
