"""Tests for utilization (Eq. 1), timelines and statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import ascii_series, ascii_table, histogram, summarize
from repro.metrics.timeline import sample_series, step_series
from repro.metrics.utilization import UtilizationLedger, equation1


class TestEquation1:
    def test_paper_formula(self):
        # duration × jobs × n / (alloc × time)
        assert equation1(10, 6, 4, 16, 180) == pytest.approx(
            10 * 6 * 4 / (16 * 180)
        )

    def test_perfect_utilization(self):
        # 2 back-to-back 10-s jobs filling a 4-node allocation for 20 s.
        assert equation1(10, 2, 4, 4, 20) == pytest.approx(1.0)

    def test_zero_time(self):
        assert equation1(1, 1, 1, 1, 0) == 0.0

    def test_alloc_validation(self):
        with pytest.raises(ValueError):
            equation1(1, 1, 1, 0, 1)


class TestLedger:
    def test_accumulates_and_spans(self):
        ledger = UtilizationLedger(8)
        ledger.add(duration=5, n=4, t_start=0, t_end=6)
        ledger.add(duration=5, n=4, t_start=1, t_end=11)
        assert ledger.jobs == 2
        assert ledger.span == 11
        assert ledger.node_seconds() == 40
        assert ledger.utilization() == pytest.approx(40 / (8 * 11))

    def test_long_tail_charged(self):
        """A straggler stretches the span and lowers utilization."""
        ledger = UtilizationLedger(4)
        ledger.add(1, 4, 0, 1)
        base = ledger.utilization()
        ledger.add(1, 4, 1, 50)  # massive tail
        assert ledger.utilization() < base / 5

    def test_explicit_time_override(self):
        ledger = UtilizationLedger(2)
        ledger.add(1, 2, 0, 1)
        assert ledger.utilization(time=10) == pytest.approx(2 / 20)

    def test_empty(self):
        ledger = UtilizationLedger(4)
        assert ledger.utilization() == 0.0
        assert ledger.span == 0.0

    def test_bad_interval(self):
        ledger = UtilizationLedger(1)
        with pytest.raises(ValueError):
            ledger.add(1, 1, 5, 4)

    @given(
        jobs=st.lists(
            st.tuples(
                st.floats(0.1, 10),  # duration
                st.integers(1, 8),  # nodes
                st.floats(0, 100),  # start
                st.floats(0.1, 20),  # length
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_utilization_nonnegative(self, jobs):
        ledger = UtilizationLedger(8)
        for d, n, s, length in jobs:
            ledger.add(d, n, s, s + length)
        assert ledger.utilization() >= 0


class TestStepSeries:
    def test_counts_opens(self):
        series = dict(step_series([0, 1, 2], [3, 4, 5]))
        assert series[0] == 1
        assert series[2] == 3
        assert series[5] == 0

    def test_sample_series_grid(self):
        series = [(0.0, 0), (1.0, 5), (3.0, 2)]
        t, v = sample_series(series, 0, 4, 1.0)
        assert list(v) == [0, 5, 5, 2, 2]

    def test_sample_empty(self):
        t, v = sample_series([], 0, 2, 1.0)
        assert list(v) == [0, 0, 0]

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            sample_series([], 0, 1, 0)


class TestStats:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.n == 5
        assert s.mean == 3
        assert s.minimum == 1 and s.maximum == 5
        assert s.p50 == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_histogram_covers_all(self):
        rows = histogram(np.arange(100), bins=10)
        assert sum(c for _lo, _hi, c in rows) == 100

    def test_ascii_table_renders(self):
        out = ascii_table(["a", "b"], [[1, 2.5], [30, "x"]])
        assert "a" in out and "30" in out
        assert len(out.splitlines()) == 4

    def test_ascii_series_renders(self):
        out = ascii_series([(0, 1), (1, 5), (2, 2)], label="load")
        assert out.startswith("load")

    def test_ascii_series_empty(self):
        assert "(empty)" in ascii_series([], label="x")
