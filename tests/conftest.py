"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.simkernel import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


def run_gen(env: Environment, gen):
    """Run a generator as a process to completion; return its value."""
    proc = env.process(gen)
    env.run(proc)
    return proc.value


@pytest.fixture
def small_platform():
    """A small generic platform for integration tests."""
    from repro.cluster.machine import generic_cluster
    from repro.cluster.platform import Platform

    return Platform(generic_cluster(nodes=4, cores_per_node=4))
