"""System-level property-based tests.

These drive the whole stack (dispatcher + workers + Hydra + apps) with
randomized workloads and check conservation laws the paper's design
implies: no job is lost or duplicated, no node is double-booked, reports
are internally consistent, and runs are deterministic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.core.jets import JetsConfig, Simulation
from repro.core.tasklist import JobSpec, TaskList


job_strategy = st.tuples(
    st.booleans(),                      # mpi?
    st.integers(min_value=1, max_value=4),   # nodes
    st.floats(min_value=0.0, max_value=2.0), # duration
)


@st.composite
def workloads(draw):
    specs = draw(st.lists(job_strategy, min_size=1, max_size=12))
    jobs = []
    for mpi, nodes, duration in specs:
        if mpi:
            jobs.append(
                JobSpec(
                    program=BarrierSleepBarrier(duration),
                    nodes=nodes,
                    ppn=1,
                    mpi=True,
                )
            )
        else:
            jobs.append(
                JobSpec(program=SleepProgram(duration), nodes=1, mpi=False)
            )
    return jobs


@given(jobs=workloads())
@settings(max_examples=25, deadline=None)
def test_every_job_finishes_exactly_once(jobs):
    """Conservation: submitted = completed + failed, each job once."""
    sim = Simulation(generic_cluster(nodes=4, cores_per_node=2))
    report = sim.run_standalone(TaskList(jobs))
    assert report.jobs_completed + report.jobs_failed == len(jobs)
    seen = [c.job.job_id for c in report.completed]
    assert len(seen) == len(set(seen))
    assert set(seen) == {j.job_id for j in jobs}


@given(jobs=workloads())
@settings(max_examples=15, deadline=None)
def test_no_core_leaks(jobs):
    """After a drained run, every node has all cores free."""
    sim = Simulation(generic_cluster(nodes=4, cores_per_node=2))
    report = sim.run_standalone(TaskList(jobs))
    for node in report.platform.nodes:
        assert node.busy_cores == 0
    assert report.platform.busy_cores.value == 0


@given(jobs=workloads())
@settings(max_examples=10, deadline=None)
def test_utilization_bounded(jobs):
    """Eq. (1) utilization never exceeds 1 for fixed-duration programs."""
    sim = Simulation(generic_cluster(nodes=4, cores_per_node=2))
    report = sim.run_standalone(TaskList(jobs))
    assert 0.0 <= report.utilization <= 1.0 + 1e-9


@given(
    jobs=workloads(),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=10, deadline=None)
def test_determinism_across_runs(jobs, seed):
    """Same workload + seed → identical span and completion counts."""

    def clone(job):
        return JobSpec(
            program=job.program,
            nodes=job.nodes,
            ppn=job.ppn,
            mpi=job.mpi,
            duration_hint=job.duration_hint,
        )

    def once(js):
        sim = Simulation(generic_cluster(nodes=4, cores_per_node=2), seed=seed)
        report = sim.run_standalone(TaskList(js))
        return (report.jobs_completed, round(report.span, 9))

    assert once([clone(j) for j in jobs]) == once([clone(j) for j in jobs])


@given(
    policy=st.sampled_from(["fifo", "priority", "backfill"]),
    jobs=workloads(),
)
@settings(max_examples=15, deadline=None)
def test_all_policies_drain_all_workloads(policy, jobs):
    """No policy loses or deadlocks a placeable workload."""
    from repro.core.jets import service_config_for

    machine = generic_cluster(nodes=4, cores_per_node=2)
    svc = service_config_for(machine, policy=policy)
    sim = Simulation(machine, JetsConfig(service=svc))
    report = sim.run_standalone(TaskList(jobs))
    assert report.jobs_completed + report.jobs_failed == len(jobs)


@given(
    nodes=st.integers(min_value=2, max_value=6),
    n_jobs=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_oversized_jobs_fail_cleanly(nodes, n_jobs):
    """Jobs larger than the allocation fail fast without wedging others."""
    jobs = [
        JobSpec(
            program=BarrierSleepBarrier(0.5), nodes=nodes + 2, ppn=1, mpi=True
        )
        for _ in range(n_jobs)
    ] + [JobSpec(program=SleepProgram(0.1), nodes=1, mpi=False)]
    sim = Simulation(generic_cluster(nodes=nodes, cores_per_node=2))
    report = sim.run_standalone(TaskList(jobs), allocation_nodes=nodes)
    assert report.jobs_failed == n_jobs
    assert report.jobs_completed == 1
