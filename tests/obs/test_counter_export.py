"""Perfetto counter export: gauge series → ``"ph": "C"`` tracks."""

from __future__ import annotations

import json

from repro.obs.export import (
    _PID_COUNTERS,
    _RUN_STRIDE,
    counter_events,
    counter_series,
    to_chrome_trace,
)
from repro.obs.metrics import Registry
from repro.obs.spans import build_spans
from repro.simkernel import Trace


def _gauge_run(env):
    """A trace + registry with one stepped gauge and one traced counter."""
    trace = Trace(env)
    reg = Registry(env, trace)
    gauge = reg.gauge("busy_cores")
    ops = reg.counter("ops", traced=True)

    def proc():
        for level in (2, 5, 3):
            gauge.set(level)
            ops.incr()
            trace.log("worker.beat", {"worker": 0})
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    return trace, reg


class TestCounterSeries:
    def test_merges_registry_gauges_and_counter_records(self, env):
        trace, reg = _gauge_run(env)
        series = counter_series(trace, reg)
        assert set(series) == {"busy_cores", "ops"}
        # Gauge breakpoints come straight from the registry (including
        # the initial level at construction time).
        assert series["busy_cores"][-1] == (2.0, 3.0)
        # counter.* mirror records supply (time, value) steps.
        assert series["ops"] == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]

    def test_sources_contribute_independently(self, env):
        trace, reg = _gauge_run(env)
        # The trace supplies counter.* mirror records; the registry
        # supplies gauge breakpoint series (counters are not gauges).
        assert set(counter_series(trace)) == {"ops"}
        assert set(counter_series(None, reg)) == {"busy_cores"}
        assert counter_series(None, None) == {}

    def test_runspans_source_contributes_nothing(self, env):
        trace, reg = _gauge_run(env)
        spans = build_spans(trace)
        assert set(counter_series(spans, reg)) == {"busy_cores"}
        assert counter_series(spans) == {}

    def test_record_iterable_source(self, env):
        trace, _reg = _gauge_run(env)
        assert counter_series(list(trace.records)) == counter_series(trace)


class TestCounterEvents:
    def test_empty_series_yields_no_events(self):
        assert counter_events({}) == []

    def test_counter_track_structure(self, env):
        trace, reg = _gauge_run(env)
        events = counter_events(counter_series(trace, reg), run=1,
                                label="fig06")
        metas = [e for e in events if e["ph"] == "M"]
        counters = [e for e in events if e["ph"] == "C"]
        pid = 1 * _RUN_STRIDE + _PID_COUNTERS
        assert all(e["pid"] == pid for e in events)
        process = [m for m in metas if m["name"] == "process_name"]
        assert process[0]["args"]["name"] == "counters [fig06]"
        # One thread per series name, tids assigned in sorted-name order.
        threads = [m for m in metas if m["name"] == "thread_name"]
        assert [(m["tid"], m["args"]["name"]) for m in threads] == [
            (0, "busy_cores"),
            (1, "ops"),
        ]
        for event in counters:
            assert event["cat"] == "jets"
            assert "value" in event["args"]
            assert event["ts"] >= 0

    def test_timestamps_are_microseconds(self):
        events = counter_events({"g": [(1.5, 2.0)]})
        counter = [e for e in events if e["ph"] == "C"][0]
        assert counter["ts"] == 1.5e6
        assert counter["args"]["value"] == 2.0


class TestChromeTraceCounters:
    def test_registry_tuples_emit_counter_tracks(self, env, tmp_path):
        trace, reg = _gauge_run(env)
        out = tmp_path / "t.trace.json"
        to_chrome_trace([("demo", trace, reg)], str(out))
        doc = json.loads(out.read_text())
        counters = [
            e for e in doc["traceEvents"] if e.get("ph") == "C"
        ]
        assert counters
        assert {e["name"] for e in counters} == {"busy_cores", "ops"}
        # Counter tracks live in their own process, away from span pids.
        span_pids = {
            e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        assert _PID_COUNTERS not in span_pids

    def test_two_run_counter_pids_do_not_collide(self, env, tmp_path):
        trace, reg = _gauge_run(env)
        out = tmp_path / "t.trace.json"
        to_chrome_trace(
            [("a", trace, reg), ("b", trace, reg)], str(out)
        )
        doc = json.loads(out.read_text())
        pids = {e["pid"] for e in doc["traceEvents"] if e.get("ph") == "C"}
        assert pids == {
            _PID_COUNTERS,
            _RUN_STRIDE + _PID_COUNTERS,
        }
