"""In-RAM vs streaming sink equivalence on real experiment runs.

The streaming pipeline's core promise: switching a run to the windowed,
spill-to-disk sink changes its memory profile and nothing else.  Same
seed → the spilled JSONL is byte-identical to the in-RAM dump, the
rendered report is identical (modulo the wall-clock line, which is live
telemetry and never part of the archive), and the chaos validators reach
identical verdicts.
"""

from __future__ import annotations

import io
import itertools
import json

import repro.core.tasklist as tasklist
import repro.core.worker as worker
from repro.core.chaos import ChaosConfig, run_chaos_plan
from repro.experiments import fig06_sequential
from repro.obs import session as obs_session


def _reset_id_counters():
    """Fresh module-global id streams, as in a new interpreter."""
    worker._worker_seq = itertools.count()
    tasklist._spec_seq = itertools.count()


def _fig06(path=None, **session_kwargs):
    _reset_id_counters()
    if path is not None:
        session_kwargs["trace_out"] = str(path)
    with obs_session(**session_kwargs):
        rows = fig06_sequential.run(node_sizes=(4,), tasks_per_node=2, seed=7)
    assert rows[0]["completed"] == 8


def _strip_wall(report: str) -> str:
    """Drop the wall-clock perf line: live-only, varies run to run."""
    return "\n".join(
        line for line in report.splitlines() if "wall" not in line
    )


class TestDumpEquivalence:
    def test_fig06_spill_is_byte_identical_to_in_ram_dump(self, tmp_path):
        ram = tmp_path / "ram.jsonl"
        stream = tmp_path / "stream.jsonl"
        _fig06(ram)
        # A window far smaller than the record count: nearly every
        # record passes through eviction + spill, not the final drain.
        _fig06(stream, stream=True, window=16)
        assert ram.read_bytes() == stream.read_bytes()
        assert ram.read_bytes()  # the run actually produced records

    def test_fig06_streaming_dump_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _fig06(a, stream=True, window=16)
        _fig06(b, stream=True, window=16)
        assert a.read_bytes() == b.read_bytes()

    def test_heartbeats_are_deterministic_and_tagged(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _fig06(a, stream=True, window=16, progress_every=2.0)
        _fig06(b, stream=True, window=16, progress_every=2.0)
        assert a.read_bytes() == b.read_bytes()
        beats = [
            json.loads(ln)
            for ln in a.read_text().splitlines()
            if json.loads(ln).get("cat") == "obs.progress"
        ]
        assert beats
        for beat in beats:
            assert beat["data"]["events"] > 0
            assert beat["data"]["records"] > 0
            assert set(beat["data"]["jobs"]) == {"done", "failed"}

    def test_trailer_matches_in_ram_perf(self, tmp_path):
        ram = tmp_path / "ram.jsonl"
        stream = tmp_path / "stream.jsonl"
        _fig06(ram)
        _fig06(stream, stream=True, window=16)
        ram_trailer = json.loads(ram.read_text().splitlines()[-1])
        stream_trailer = json.loads(stream.read_text().splitlines()[-1])
        assert ram_trailer == stream_trailer
        assert ram_trailer["meta"] == "perf"


class TestReportEquivalence:
    def test_fig06_report_identical_modulo_wall_line(self, tmp_path):
        ram_out, stream_out = io.StringIO(), io.StringIO()
        _fig06(report=True, report_stream=ram_out)
        _fig06(report=True, report_stream=stream_out, stream=True, window=16)
        ram_report = _strip_wall(ram_out.getvalue())
        stream_report = _strip_wall(stream_out.getvalue())
        assert ram_report == stream_report
        assert "throughput" in ram_report or ram_report  # non-empty

    def test_chrome_trace_identical_under_streaming(self, tmp_path):
        ram = tmp_path / "ram.trace.json"
        stream = tmp_path / "stream.trace.json"
        _fig06(chrome_out=str(ram))
        _fig06(chrome_out=str(stream), stream=True, window=16)
        assert json.loads(ram.read_text()) == json.loads(stream.read_text())


class TestChaosVerdictEquivalence:
    def _plan(self, index, **session_kwargs):
        _reset_id_counters()
        config = ChaosConfig(plans=1, serial_tasks=6, mpi_tasks=1)
        with obs_session(**session_kwargs):
            return run_chaos_plan(config, index)

    def test_chaos_mix_verdicts_identical_under_streaming(self):
        for index in (0, 3):
            ram = self._plan(index)
            stream = self._plan(index, stream=True, window=64)
            assert ram.drained == stream.drained
            assert ram.problems == stream.problems
            assert ram.injected == stream.injected
            assert ram.wire_count == stream.wire_count
            assert (ram.jobs_ok, ram.jobs_failed, ram.jobs_submitted) == (
                stream.jobs_ok,
                stream.jobs_failed,
                stream.jobs_submitted,
            )
            assert ram.ok and stream.ok
