"""Span-reconstruction invariants over real dispatcher runs."""

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.cluster.machine import generic_cluster
from repro.cluster.platform import Platform
from repro.core.dispatcher import JetsDispatcher, JetsServiceConfig
from repro.core.tasklist import JobSpec
from repro.core.worker import WorkerAgent
from repro.obs.spans import build_spans


def run_batch(jobs, nodes=4, heartbeat=1.0, extra=None):
    """Run a job batch on a small stack; returns (platform, spans)."""
    platform = Platform(generic_cluster(nodes=nodes, cores_per_node=2))
    cfg = JetsServiceConfig(heartbeat_interval=heartbeat)
    dispatcher = JetsDispatcher(platform, cfg, expected_workers=nodes)
    dispatcher.start()
    agents = [
        WorkerAgent(
            platform, node, dispatcher.endpoint, heartbeat_interval=heartbeat
        )
        for node in platform.nodes
    ]
    for a in agents:
        a.start()
    events = [dispatcher.submit(j) for j in jobs]
    if extra is not None:
        platform.env.process(extra(platform, dispatcher, agents))
    platform.env.run(platform.env.all_of(events))
    return platform, build_spans(platform.trace)


class TestJobLifecycleOrdering:
    def test_mpi_job_walks_the_full_state_machine(self):
        _platform, spans = run_batch(
            [JobSpec(program=BarrierSleepBarrier(1.0), nodes=2, mpi=True)]
        )
        (job,) = spans.job_list()
        assert job.ok and len(job.attempts) == 1
        att = job.attempts[0]
        states = [tr.state for tr in att.transitions]
        assert states == [
            "queued",
            "grouped",
            "mpiexec_spawned",
            "pmi_wireup",
            "app_running",
            "done",
        ]

    def test_timestamps_monotonic_within_attempt(self):
        _platform, spans = run_batch(
            [
                JobSpec(program=BarrierSleepBarrier(0.5), nodes=2, mpi=True),
                JobSpec(program=SleepProgram(0.5), nodes=1, mpi=False),
            ]
        )
        for job in spans.job_list():
            for att in job.attempts:
                times = [tr.time for tr in att.transitions]
                assert times == sorted(times)
                # App never runs before the aggregator grouped workers.
                if att.t_app_running is not None:
                    assert att.t_grouped is not None
                    assert att.t_app_running >= att.t_grouped

    def test_serial_job_skips_mpi_states(self):
        _platform, spans = run_batch(
            [JobSpec(program=SleepProgram(0.5), nodes=1, mpi=False)]
        )
        (job,) = spans.job_list()
        att = job.attempts[0]
        states = {tr.state for tr in att.transitions}
        assert "mpiexec_spawned" not in states
        assert "pmi_wireup" not in states
        assert att.t_app_running is not None

    def test_queue_wait_nonnegative(self):
        _platform, spans = run_batch(
            [
                JobSpec(program=BarrierSleepBarrier(0.2), nodes=2, mpi=True)
                for _ in range(4)
            ]
        )
        for job in spans.job_list():
            for att in job.attempts:
                assert att.queue_wait is not None
                assert att.queue_wait >= 0


class TestProxySpans:
    def test_one_proxy_per_rank_group(self):
        _platform, spans = run_batch(
            [JobSpec(program=BarrierSleepBarrier(0.5), nodes=3, mpi=True)],
            nodes=4,
        )
        (job,) = spans.job_list()
        att = job.attempts[0]
        assert len(att.proxies) == 3
        for proxy in att.proxies:
            assert proxy.t_launched is not None
            assert proxy.t_registered is not None
            assert proxy.t_wired is not None
            assert proxy.t_exited is not None
            assert (
                proxy.t_launched
                <= proxy.t_registered
                <= proxy.t_wired
                <= proxy.t_exited
            )
            assert proxy.wireup_time >= 0

    def test_wireup_bracketed_by_pmi_phase(self):
        _platform, spans = run_batch(
            [JobSpec(program=BarrierSleepBarrier(0.5), nodes=2, mpi=True)]
        )
        (job,) = spans.job_list()
        att = job.attempts[0]
        assert att.t_wireup is not None
        for proxy in att.proxies:
            assert proxy.t_registered <= att.t_wireup <= proxy.t_wired


class TestResubmission:
    def _kill_one_busy(self, platform, dispatcher, agents):
        yield platform.env.timeout(2.0)
        busy = {
            v.worker_id
            for v in dispatcher.aggregator.workers()
            if v.running_jobs
        }
        for a in agents:
            if a.alive and a.worker_id in busy:
                a.kill()
                return

    def test_killed_job_gets_fresh_child_attempt(self):
        platform, spans = run_batch(
            [
                JobSpec(
                    program=BarrierSleepBarrier(5.0),
                    nodes=2,
                    mpi=True,
                    max_attempts=5,
                )
            ],
            nodes=3,
            extra=self._kill_one_busy,
        )
        (job,) = spans.job_list()
        assert job.ok
        assert job.resubmissions >= 1
        assert len(job.attempts) == job.resubmissions + 1
        # Every non-final attempt ended in resubmission; the last succeeded.
        for att in job.attempts[:-1]:
            assert att.outcome == "resubmitted"
        assert job.attempts[-1].outcome == "done"
        # Child attempts restart the state machine from "queued".
        for att in job.attempts:
            assert att.transitions[0].state == "queued"

    def test_lost_worker_span_outcome(self):
        platform, spans = run_batch(
            [
                JobSpec(
                    program=BarrierSleepBarrier(5.0),
                    nodes=2,
                    mpi=True,
                    max_attempts=5,
                )
            ],
            nodes=3,
            extra=self._kill_one_busy,
        )
        outcomes = [w.outcome for w in spans.worker_list()]
        assert outcomes.count("lost") == 1
        assert spans.faults == []  # kill came from the test, not FaultInjector


class TestWorkerSpans:
    def test_lifecycle_and_busy_segments(self):
        platform, spans = run_batch(
            [JobSpec(program=SleepProgram(1.0), nodes=1, mpi=False)]
        )
        workers = spans.worker_list()
        assert len(workers) == 4
        busy_total = 0.0
        for w in workers:
            assert w.t_start is not None
            assert w.t_registered is not None
            assert w.t_registered >= w.t_start
            segs = w.state_segments(until=spans.t_last)
            for t0, t1, state in segs:
                assert t1 >= t0
                assert state in ("registered", "idle", "busy")
            busy_total += w.busy_time(until=spans.t_last)
        # Exactly one worker ran the 1-second sleep.
        assert busy_total == pytest.approx(1.0, rel=0.2)
