"""Tests for the metrics registry: quantiles, histograms, instruments."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, Registry, quantile
from repro.simkernel import Counter, Environment, Gauge


class TestQuantile:
    def test_median_odd(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 9.0

    def test_singleton(self):
        assert quantile([7.0], 0.25) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_matches_numpy_linear_method(self, values, q):
        assert quantile(values, q) == pytest.approx(
            float(np.quantile(values, q)), abs=1e-6
        )


class TestHistogram:
    def test_summary_percentiles(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["p50"] == pytest.approx(50.5)
        assert s["p95"] == pytest.approx(float(np.quantile(range(1, 101), 0.95)))
        assert s["mean"] == pytest.approx(50.5)

    def test_empty_summary_is_zeroes(self):
        s = Histogram().summary()
        assert s == {
            "count": 0, "mean": 0.0, "min": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0


class TestRegistry:
    def test_accessors_are_idempotent(self, env):
        reg = Registry(env)
        assert reg.counter("ops") is reg.counter("ops")
        assert reg.gauge("depth") is reg.gauge("depth")
        assert reg.histogram("wait") is reg.histogram("wait")

    def test_get_and_names(self, env):
        reg = Registry(env)
        c = reg.counter("ops")
        g = reg.gauge("depth")
        h = reg.histogram("wait")
        assert reg.get("ops") is c
        assert reg.get("depth") is g
        assert reg.get("wait") is h
        assert reg.get("nope") is None
        assert reg.names() == ["depth", "ops", "wait"]

    def test_instrument_types(self, env):
        reg = Registry(env)
        assert isinstance(reg.counter("c"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)

    def test_traced_counter_logs_increments(self, env):
        from repro.simkernel import Trace

        trace = Trace(env)
        reg = Registry(env, trace)
        c = reg.counter("faults", traced=True)
        c.incr()
        c.incr(2)
        recs = trace.select("counter.faults")
        assert [r.data["value"] for r in recs] == [1, 3]

    def test_snapshot_shapes(self, env):
        reg = Registry(env)
        reg.counter("ops").incr(4)
        reg.gauge("depth").set(2.0)
        reg.histogram("wait").observe(1.5)
        snap = reg.snapshot()
        assert snap["ops"] == {"type": "counter", "value": 4}
        assert snap["depth"]["type"] == "gauge"
        assert snap["depth"]["value"] == 2.0
        assert snap["wait"]["type"] == "histogram"
        assert snap["wait"]["count"] == 1
