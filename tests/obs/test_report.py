"""Tests for run reports and the CLI observability surface."""

import json
import os

import pytest

from repro.core.cli import main
from repro.core.jets import JetsConfig, Simulation
from repro.core.tasklist import TaskList
from repro.cluster.machine import generic_cluster
from repro.obs.report import RunReport, render_report
from repro.obs.session import active, session
from repro.obs.spans import build_spans


@pytest.fixture
def taskfile(tmp_path):
    path = tmp_path / "tasks.txt"
    path.write_text(
        "MPI: 2 mpi-bench 0.5\n"
        "MPI: 2 mpi-bench 0.5\n"
        "SERIAL: sleep 0.2\n"
    )
    return str(path)


def run_sim():
    sim = Simulation(generic_cluster(nodes=4, cores_per_node=2), JetsConfig())
    tasks = TaskList.from_text("MPI: 2 mpi-bench 0.5\nSERIAL: sleep 0.2\n")
    return sim.run_standalone(tasks)


class TestRunReport:
    def test_counts_match_batch_report(self):
        batch = run_sim()
        rep = RunReport.from_trace(
            batch.platform.trace,
            registry=batch.platform.metrics,
            allocation_nodes=batch.allocation_nodes,
        )
        assert rep.jobs_total == batch.jobs_total
        assert rep.jobs_completed == batch.jobs_completed
        assert rep.jobs_failed == batch.jobs_failed

    def test_span_utilization_matches_live_ledger(self):
        batch = run_sim()
        rep = RunReport.from_trace(
            batch.platform.trace, allocation_nodes=batch.allocation_nodes
        )
        assert rep.utilization == pytest.approx(batch.utilization)

    def test_render_mentions_stages_and_counters(self):
        batch = run_sim()
        text = render_report(
            batch.platform.trace,
            registry=batch.platform.metrics,
            title="unit",
        )
        assert "== run report: unit" in text
        assert "queue_wait" in text
        assert "wireup" in text
        assert "p95" in text
        assert "dispatcher.ops" in text


class TestObsSessionCapture:
    def test_platforms_attach_to_innermost_session(self):
        with session() as outer:
            with session() as inner:
                assert active() is inner
                run_sim()
            assert active() is outer
        assert len(inner.runs) == 1
        assert outer.runs == []

    def test_flush_writes_all_artifacts(self, tmp_path, capsys):
        jsonl = str(tmp_path / "run.jsonl")
        with session(trace_out=jsonl, report=True):
            run_sim()
        out = capsys.readouterr().out
        assert "== run report:" in out
        assert os.path.exists(jsonl)
        chrome = str(tmp_path / "run.trace.json")
        assert os.path.exists(chrome)
        assert json.load(open(chrome))["traceEvents"]

    def test_no_flush_on_exception(self, tmp_path):
        jsonl = str(tmp_path / "boom.jsonl")
        with pytest.raises(RuntimeError):
            with session(trace_out=jsonl):
                run_sim()
                raise RuntimeError("boom")
        assert not os.path.exists(jsonl)


class TestCliObservability:
    def test_trace_out_produces_artifacts(self, taskfile, tmp_path, capsys):
        jsonl = str(tmp_path / "run.jsonl")
        code = main(
            [
                taskfile,
                "--machine", "generic",
                "--nodes", "4",
                "--trace-out", jsonl,
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== run report:" in out
        assert "3/3 jobs" in out  # batch summary still printed
        assert os.path.exists(jsonl)
        assert os.path.exists(str(tmp_path / "run.trace.json"))

    def test_report_subcommand_round_trip(self, taskfile, tmp_path, capsys):
        jsonl = str(tmp_path / "run.jsonl")
        assert main(
            [taskfile, "--machine", "generic", "--nodes", "4",
             "--trace-out", jsonl]
        ) == 0
        capsys.readouterr()
        code = main(["report", jsonl])
        assert code == 0
        out = capsys.readouterr().out
        assert "== run report:" in out
        assert "3 submitted, 3 completed" in out

    def test_report_subcommand_missing_file(self, capsys):
        code = main(["report", "/does/not/exist.jsonl"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_subcommand_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["report", str(empty)])
        assert code == 1
        assert "no trace records" in capsys.readouterr().err


class TestFaultBreakdowns:
    def _faulty_trace(self):
        from repro.core.jets import FaultSpec

        sim = Simulation(
            generic_cluster(nodes=6, cores_per_node=1),
            JetsConfig(worker_slots=1),
        )
        tasks = TaskList.from_text("SERIAL: sleep 1.0\n" * 40)
        report = sim.run_standalone(
            tasks, faults=FaultSpec(interval=3.0), until=60.0
        )
        return report.platform.trace

    def test_report_breaks_down_faults_and_resubmit_causes(self):
        trace = self._faulty_trace()
        rep = RunReport.from_trace(trace)
        assert rep.fault_kinds.get("kill", 0) == rep.faults > 0
        assert rep.resubmissions > 0
        assert sum(rep.resubmit_causes.values()) == rep.resubmissions
        text = rep.render()
        assert "faults by kind: kill=" in text
        assert "resubmits by cause:" in text

    def test_resubmit_cause_classifier(self):
        from repro.obs.report import resubmit_cause

        assert resubmit_cause({"reason": "deadline"}) == "deadline"
        assert resubmit_cause({"reason": "wireup_abort"}) == "wireup_abort"
        assert (
            resubmit_cause({"error": "worker 3 heartbeat timeout"})
            == "heartbeat"
        )
        assert (
            resubmit_cause({"error": "connection to worker lost"})
            == "connection"
        )
        assert resubmit_cause({"error": "exited with status 143"}) == (
            "task_error"
        )
        assert resubmit_cause({"error": "mystery"}) == "other"
        assert resubmit_cause(None) == "other"


class TestPerformanceSection:
    def test_live_trace_fills_perf_fields(self):
        report = run_sim()
        rr = RunReport.from_trace(report.platform.trace)
        assert rr.events_processed == report.platform.env.events_processed
        assert rr.events_processed > 0
        assert rr.trace_records == len(report.platform.trace.records)
        assert rr.sim_seconds == pytest.approx(report.platform.env.now)
        assert rr.wall_seconds is None  # only live sessions measure wall
        text = rr.render()
        assert "performance:" in text
        assert "kernel events" in text

    def test_wall_line_renders_rates(self):
        report = run_sim()
        text = render_report(
            report.platform.trace,
            perf={
                "events": 1000, "records": 10, "sim_s": 2.0, "wall_s": 0.5,
            },
        )
        assert "wall 0.500 s" in text
        assert "sim/wall 4.0x" in text
        assert "events/s" in text

    def test_reloaded_dump_keeps_perf_via_trailer(self, taskfile, tmp_path,
                                                  capsys):
        out = tmp_path / "run.jsonl"
        assert main([
            "--machine", "generic", "--nodes", "4",
            "--trace-out", str(out), str(taskfile),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "performance:" in text
        assert "kernel events" in text
        # The trailer is deterministic: no wall-clock in a reloaded report.
        assert "sim/wall" not in text

    def test_session_report_includes_wall(self, capsys):
        with session(report=True):
            run_sim()
        text = capsys.readouterr().out
        assert "performance:" in text
        assert "wall" in text
        assert "sim/wall" in text


class TestRecoverySection:
    def _platform_with_resume_records(self):
        from repro.cluster.platform import Platform

        platform = Platform(generic_cluster(nodes=2, cores_per_node=2))
        trace = platform.trace
        trace.log(
            "resume.begin",
            {
                "journal": "run.journal",
                "segment": 1,
                "crash_time": 4.25,
                "outstanding": 3,
            },
        )
        trace.log("resume.skip", {"job": "t0", "outcome": "done"})
        trace.log("resume.skip", {"job": "t1", "outcome": "done"})
        trace.log("resume.skip", {"job": "t2", "outcome": "failed"})
        trace.log("resume.resubmit", {"job": "t3", "attempt": 1})
        return platform

    def test_report_counts_resume_records(self):
        platform = self._platform_with_resume_records()
        rep = RunReport.from_trace(platform.trace)
        assert rep.resumes == 1
        assert rep.resume_skipped_done == 2
        assert rep.resume_skipped_failed == 1
        assert rep.resume_resubmitted == 1
        assert rep.crash_time == pytest.approx(4.25)

    def test_render_shows_recovery_line(self):
        platform = self._platform_with_resume_records()
        text = RunReport.from_trace(platform.trace).render(title="unit")
        assert "recovery: 1 resume(s)" in text
        assert "crash at t=4.250" in text
        assert "2 skipped done" in text
        assert "1 skipped failed" in text
        assert "1 resubmitted" in text

    def test_unresumed_run_has_no_recovery_section(self):
        batch = run_sim()
        text = render_report(batch.platform.trace, title="unit")
        assert "recovery:" not in text
