"""Tests for trace export: JSONL round-trip and Chrome trace_event."""

import io
import json

import pytest

from repro.apps.synthetic import BarrierSleepBarrier, SleepProgram
from repro.core.jets import JetsConfig, Simulation
from repro.core.tasklist import TaskList
from repro.cluster.machine import generic_cluster
from repro.obs.export import (
    chrome_events,
    jsonl_perf,
    jsonl_runs,
    read_jsonl,
    sanitize,
    to_chrome_trace,
    to_jsonl,
)
from repro.obs.spans import build_spans


@pytest.fixture
def traced_run():
    """A small mixed MPI/serial run; returns the platform trace."""
    sim = Simulation(generic_cluster(nodes=4, cores_per_node=2), JetsConfig())
    tasks = TaskList.from_text(
        "MPI: 2 mpi-bench 0.5\nSERIAL: sleep 0.2\n"
    )
    return sim.run_standalone(tasks).platform.trace


class TestSanitize:
    def test_primitives_pass_through(self):
        assert sanitize({"a": 1, "b": [2.5, None, True]}) == {
            "a": 1, "b": [2.5, None, True]
        }

    def test_non_json_values_become_strings(self):
        class Thing:
            def __repr__(self):
                return "<thing>"

        out = sanitize({"obj": Thing(), "s": {1, 2}})
        assert out["obj"] == "<thing>"
        assert isinstance(out["s"], list)


class TestJsonlRoundTrip:
    def test_records_survive_dump_and_reload(self, traced_run, tmp_path):
        path = str(tmp_path / "run.jsonl")
        n = to_jsonl(traced_run, path)
        assert n == len(traced_run.records)
        back = read_jsonl(path)
        assert len(back) == n
        for orig, re in zip(traced_run.records, back):
            assert re.time == orig.time
            assert re.category == orig.category
            assert re.data == sanitize(orig.data)

    def test_spans_identical_after_reload(self, traced_run, tmp_path):
        path = str(tmp_path / "run.jsonl")
        to_jsonl(traced_run, path)
        live = build_spans(traced_run)
        reloaded = build_spans(read_jsonl(path))
        assert sorted(live.jobs) == sorted(reloaded.jobs)
        for jid, job in live.jobs.items():
            other = reloaded.jobs[jid]
            assert other.ok == job.ok
            assert len(other.attempts) == len(job.attempts)
            assert [
                (tr.time, tr.state)
                for att in other.attempts
                for tr in att.transitions
            ] == [
                (tr.time, tr.state)
                for att in job.attempts
                for tr in att.transitions
            ]

    def test_run_tags_group_and_filter(self, traced_run):
        buf = io.StringIO()
        to_jsonl(traced_run, buf, run=0, label="a")
        to_jsonl(traced_run, buf, run=1, label="b")
        buf.seek(0)
        runs = jsonl_runs(buf)
        assert sorted(runs) == [0, 1]
        assert len(runs[0]) == len(runs[1]) == len(traced_run.records)
        buf.seek(0)
        only1 = read_jsonl(buf, run=1)
        assert len(only1) == len(traced_run.records)


class TestChromeTrace:
    def test_document_structure(self, traced_run, tmp_path):
        path = str(tmp_path / "run.trace.json")
        n = to_chrome_trace(traced_run, path)
        doc = json.loads(open(path).read())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == n > 0
        assert {e["ph"] for e in events} <= {"X", "M"}
        # One process group per entity family: jobs, workers, proxies.
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"jobs", "workers", "proxies"}

    def test_complete_events_have_nonnegative_duration(self, traced_run):
        for ev in chrome_events(build_spans(traced_run)):
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert ev["ts"] >= 0

    def test_multi_run_pids_do_not_collide(self, traced_run):
        buf = io.StringIO()
        to_chrome_trace(
            [("a", traced_run), ("b", traced_run)], buf
        )
        buf.seek(0)
        events = json.load(buf)["traceEvents"]
        pids_a = {e["pid"] for e in events if e["pid"] < 10}
        pids_b = {e["pid"] for e in events if e["pid"] >= 10}
        assert pids_a and pids_b and not (pids_a & pids_b)

    def test_job_slices_cover_lifecycle_states(self, traced_run):
        events = chrome_events(build_spans(traced_run))
        slice_names = {e["name"] for e in events if e["ph"] == "X"}
        assert "queued" in slice_names
        assert "app_running" in slice_names
        assert "busy" in slice_names  # worker timeline


class TestPerfTrailer:
    """The {"meta": "perf"} trailer line and its readers."""

    def _dump(self, traced_run, perf):
        buf = io.StringIO()
        to_jsonl(traced_run, buf, run=0, perf=perf)
        buf.seek(0)
        return buf

    def test_trailer_is_last_line_and_tagged(self, traced_run):
        buf = self._dump(traced_run, {"events": 42, "sim_s": 1.5})
        last = json.loads(buf.getvalue().splitlines()[-1])
        assert last == {"meta": "perf", "run": 0, "events": 42, "sim_s": 1.5}

    def test_record_readers_skip_the_trailer(self, traced_run):
        perf = {"events": 42, "records": len(traced_run.records)}
        buf = self._dump(traced_run, perf)
        records = read_jsonl(buf)
        assert len(records) == len(traced_run.records)
        buf.seek(0)
        runs = jsonl_runs(buf)
        assert len(runs[0]) == len(traced_run.records)

    def test_jsonl_perf_collects_per_run(self, traced_run):
        buf = io.StringIO()
        to_jsonl(traced_run, buf, run=0, perf={"events": 1})
        to_jsonl(traced_run, buf, run=1, perf={"events": 2})
        to_jsonl(traced_run, buf, run=2)  # no trailer for this run
        buf.seek(0)
        assert jsonl_perf(buf) == {0: {"events": 1}, 1: {"events": 2}}

    def test_dumps_without_trailer_yield_empty_perf(self, traced_run):
        buf = io.StringIO()
        to_jsonl(traced_run, buf)
        buf.seek(0)
        assert jsonl_perf(buf) == {}
