"""Live progress: heartbeat emission, reader folds, follow/top CLIs."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.metrics import Registry
from repro.obs.progress import (
    OBS_PROGRESS,
    LiveRunState,
    ProgressTracker,
    RunProgress,
    _parse_line,
    follow,
    render_top,
    top_main,
)
from repro.simkernel import StreamingTrace, Trace, TraceRecord


def _drive(env, sink, n=12, step=0.5, cat="job.done"):
    def proc():
        for i in range(n):
            sink.log(cat, {"job": i})
            yield env.timeout(step)

    env.process(proc())
    env.run()


class TestProgressTracker:
    def test_heartbeats_fire_on_sim_time_crossings(self, env):
        t = Trace(env)
        tracker = ProgressTracker(t, every=2.0)
        _drive(env, t, n=12, step=0.5)  # 6 sim-seconds of records
        assert tracker.emitted == 2
        beats = t.select(OBS_PROGRESS)
        assert len(beats) == 2
        # The heartbeat is itself tallied like any record, but never
        # triggers a heartbeat-of-a-heartbeat.
        assert tracker.records == 12 + 2
        assert tracker.counts["obs"] == 2

    def test_payload_is_deterministic_tallies(self, env):
        t = Trace(env)
        ProgressTracker(t, every=1.0)
        _drive(env, t, n=6, step=0.5)
        last = t.select(OBS_PROGRESS)[-1].data
        # Snapshotted at emit time, so bounded by the final kernel count.
        assert 0 < last["events"] <= env.events_processed
        assert last["jobs"] == {"done": last["counts"]["job"], "failed": 0}
        assert set(last) <= {"events", "records", "jobs", "counts", "gauges"}

    def test_gauge_levels_ride_along_when_registry_given(self, env):
        t = Trace(env)
        reg = Registry(env, t)
        gauge = reg.gauge("busy_cores")
        tracker = ProgressTracker(t, every=1.0, registry=reg)
        gauge.set(3)
        _drive(env, t, n=4, step=0.5)
        beat = t.select(OBS_PROGRESS)[-1].data
        assert beat["gauges"] == {"busy_cores": 3.0}
        assert tracker.emitted >= 1

    def test_silent_stream_emits_nothing(self, env):
        t = Trace(env)
        tracker = ProgressTracker(t, every=1.0)
        env.run()  # no records logged at all
        assert tracker.emitted == 0
        assert not t.select(OBS_PROGRESS)

    def test_works_on_streaming_sink_across_eviction(self, env):
        t = StreamingTrace(env, window=4)
        tracker = ProgressTracker(t, every=1.0)
        _drive(env, t, n=40, step=0.25)
        assert tracker.emitted > 0
        assert tracker.records == 40 + tracker.emitted

    def test_rejects_nonpositive_interval(self, env):
        with pytest.raises(ValueError):
            ProgressTracker(Trace(env), every=0.0)


class TestParseLine:
    def test_record_line(self):
        kind, run, rec = _parse_line(
            '{"t":1.5,"cat":"job.done","data":{"job":3},"run":2}'
        )
        assert (kind, run) == ("rec", 2)
        assert rec == TraceRecord(1.5, "job.done", {"job": 3})

    def test_perf_trailer(self):
        kind, run, perf = _parse_line(
            '{"meta":"perf","run":1,"events":10,"records":4,"sim_s":2.0}'
        )
        assert (kind, run) == ("perf", 1)
        assert perf == {"events": 10, "records": 4, "sim_s": 2.0}

    @pytest.mark.parametrize(
        "raw",
        [
            "",
            "   ",
            "not json at all",
            '{"t": 1.0',  # torn tail
            "[1, 2, 3]",
            '{"meta":"other"}',
            '{"cat":"job.done"}',  # missing time
        ],
    )
    def test_garbage_and_partials_are_skipped(self, raw):
        assert _parse_line(raw) is None


class TestLiveRunState:
    def _spill(self, tmp_path, env):
        path = tmp_path / "run.jsonl"
        t = StreamingTrace(env, window=8, spill=str(path), run=0,
                           truncate=True)
        ProgressTracker(t, every=1.0)
        _drive(env, t, n=10, step=0.5)
        t.close(perf=t.perf())
        return path

    def test_fold_tracks_runs_and_completion(self, tmp_path, env):
        path = self._spill(tmp_path, env)
        state = LiveRunState()
        with open(path) as fh:
            for raw in fh:
                parsed = _parse_line(raw)
                kind, run, payload = parsed
                if kind == "perf":
                    state.note_perf(run, payload)
                else:
                    state.fold(run, payload)
        assert state.complete
        rp = state.runs[0]
        assert rp.jobs_done == 10
        assert rp.heartbeat is not None
        assert rp.records == rp.perf["records"]
        assert "complete" in rp.status_line()

    def test_incomplete_until_trailer(self):
        state = LiveRunState()
        state.fold(0, TraceRecord(0.0, "job.done", {"job": 1}))
        assert not state.complete
        state.note_perf(0, {"records": 1})
        assert state.complete

    def test_empty_state_is_not_complete(self):
        assert not LiveRunState().complete


class TestRenderTop:
    def test_snapshot_includes_families_heartbeat_and_perf(self):
        state = LiveRunState()
        rp = state.run(0)
        rp.fold(TraceRecord(1.0, "job.done", {"job": 1}))
        rp.fold(
            TraceRecord(
                2.0,
                OBS_PROGRESS,
                {"events": 9, "records": 1, "gauges": {"busy": 2.0}},
            )
        )
        state.note_perf(0, {"records": 2, "sim_s": 2.0})
        out = render_top(state, title="trace.jsonl")
        assert "trace.jsonl" in out
        assert "families: job=1  obs=1" in out
        assert "heartbeat: events=9" in out
        assert "gauges: busy=2" in out
        assert "perf: records=2  sim_s=2.0" in out

    def test_empty_state_renders_placeholder(self):
        assert "(no trace records yet)" in render_top(LiveRunState())


class TestFollowAndTopClis:
    def _complete_spill(self, tmp_path, env):
        path = tmp_path / "run.jsonl"
        t = StreamingTrace(env, window=8, spill=str(path), run=0,
                           truncate=True)
        ProgressTracker(t, every=1.0)
        _drive(env, t, n=8, step=0.5)
        t.close(perf=t.perf())
        return path

    def test_follow_completed_file_exits_zero(self, tmp_path, env):
        path = self._complete_spill(tmp_path, env)
        out = io.StringIO()
        assert follow(str(path), out=out, poll=0.01) == 0
        text = out.getvalue()
        assert "[run 0]" in text
        assert "(complete)" in text
        # One line per heartbeat plus the completion line.
        beats = sum(
            1 for ln in path.read_text().splitlines()
            if json.loads(ln).get("cat") == OBS_PROGRESS
        )
        assert len(text.splitlines()) == beats + 1

    def test_follow_missing_file_exits_two(self, tmp_path, capsys):
        assert follow(str(tmp_path / "nope.jsonl"), poll=0.01) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_follow_idle_without_trailer_exits_one(self, tmp_path, capsys):
        path = tmp_path / "stalled.jsonl"
        path.write_text('{"t":0.0,"cat":"job.submit","data":{"job":0}}\n')
        rc = follow(str(path), out=io.StringIO(), poll=0.01,
                    idle_timeout=0.05)
        assert rc == 1
        assert "giving up" in capsys.readouterr().err

    def test_top_main_snapshots_a_dump(self, tmp_path, env, capsys):
        path = self._complete_spill(tmp_path, env)
        assert top_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "[run 0]" in out
        assert "(complete)" in out

    def test_top_main_missing_file_exits_two(self, tmp_path, capsys):
        assert top_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
