"""The ``jets bench --profile`` pass: stable ids, JSON layout, CLI."""

from __future__ import annotations

import inspect
import json

import pytest

from repro.bench.harness import (
    function_id,
    profile_suite,
    profile_workload,
    write_profile,
)
from repro.bench.workloads import Workload


def sim_workload(name="sim", steps=200):
    """A real (tiny) kernel run, so profiled frames hit repro code."""

    def fn(quick):
        from repro.simkernel.core import Environment

        env = Environment()

        def proc():
            for _ in range(steps):
                yield env.timeout(1)

        env.process(proc())
        env.run()
        return {}

    return Workload(name=name, fn=fn, doc="profile fixture")


class TestFunctionIds:
    def test_method_qualname_recovered(self):
        from repro.simkernel.core import Environment

        path = inspect.getsourcefile(Environment.step)
        line = Environment.step.__code__.co_firstlineno
        assert (
            function_id(path, line, "step")
            == "repro.simkernel.core:Environment.step"
        )

    def test_unknown_line_falls_back_to_bare_name(self):
        from repro.simkernel import core

        path = inspect.getsourcefile(core)
        assert function_id(path, 10**9, "mystery") == (
            "repro.simkernel.core:mystery"
        )


class TestProfileWorkload:
    def test_project_frames_ranked_by_cumtime(self):
        entries = profile_workload(sim_workload(), top=10)
        assert entries
        assert len(entries) <= 10
        ids = [e["id"] for e in entries]
        assert all(i.startswith("repro.") for i in ids)
        assert "repro.simkernel.core:Environment.run" in ids
        cums = [e["cumtime"] for e in entries]
        assert cums == sorted(cums, reverse=True)
        for e in entries:
            assert set(e) == {"id", "ncalls", "tottime", "cumtime"}

    def test_top_truncates(self):
        assert len(profile_workload(sim_workload(), top=3)) == 3


class TestWriteProfile:
    def test_round_trips_through_load_profile(self, tmp_path):
        from repro.analysis.callgraph import load_profile

        workloads = profile_suite_dict = {
            "sim": profile_workload(sim_workload(), top=5)
        }
        path = tmp_path / "BENCH_profile.json"
        doc = write_profile(profile_suite_dict, str(path), quick=True, top=5)
        assert doc["kind"] == "profile"
        ids, loaded = load_profile(str(path))
        assert "repro.simkernel.core:Environment.run" in ids
        assert loaded["workloads"].keys() == workloads.keys()

    def test_profile_suite_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_suite("nope")


class TestBenchCliProfile:
    def test_writes_bench_profile_json(self, tmp_path, monkeypatch, capsys):
        import repro.bench.cli as cli
        import repro.bench.harness as harness

        fake = {"kernel": [sim_workload("a"), sim_workload("b", steps=50)]}
        monkeypatch.setattr(harness, "SUITES", fake)
        monkeypatch.setattr(cli, "SUITES", fake)
        assert cli.bench_main([
            "--suite", "kernel", "--out-dir", str(tmp_path),
            "--no-mem", "--profile", "--profile-top", "5",
        ]) == 0
        path = tmp_path / "BENCH_profile.json"
        doc = json.loads(path.read_text())
        assert set(doc["workloads"]) == {"a", "b"}
        assert all(len(v) <= 5 for v in doc["workloads"].values())
        # The timed results file carries no profiling contamination:
        # it is written before the profile pass and holds only timing.
        timed = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        assert "workloads" not in timed
        assert set(timed["results"]) == {"a", "b"}

    def test_no_profile_flag_writes_nothing(self, tmp_path, monkeypatch):
        import repro.bench.cli as cli
        import repro.bench.harness as harness

        fake = {"kernel": [sim_workload("a", steps=20)]}
        monkeypatch.setattr(harness, "SUITES", fake)
        monkeypatch.setattr(cli, "SUITES", fake)
        assert cli.bench_main([
            "--suite", "kernel", "--out-dir", str(tmp_path), "--no-mem",
        ]) == 0
        assert not (tmp_path / "BENCH_profile.json").exists()
