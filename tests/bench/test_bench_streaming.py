"""Bench support for the streaming memory gate: --only and --rss-budget-mb."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import run_suite
from repro.bench.workloads import SUITES, Workload


def toy_workload(name="toy", events=1000, sim_s=5.0):
    def fn(quick):
        return {"events": events, "sim_s": sim_s, "quick": quick}

    return Workload(name=name, fn=fn, doc="toy")


@pytest.fixture
def fake_suites(monkeypatch):
    import repro.bench.cli as cli
    import repro.bench.harness as harness

    fake = {
        "kernel": [toy_workload("a"), toy_workload("b"), toy_workload("c")]
    }
    monkeypatch.setattr(harness, "SUITES", fake)
    monkeypatch.setattr(cli, "SUITES", fake)
    return fake


class TestOnlyFilter:
    def test_only_restricts_to_named_workloads(self, fake_suites):
        run = run_suite("kernel", memory=False, only=["c", "a"])
        assert [r.name for r in run.results] == ["a", "c"]

    def test_unknown_only_name_raises_with_listing(self, fake_suites):
        with pytest.raises(KeyError, match="nope"):
            run_suite("kernel", memory=False, only=["a", "nope"])

    def test_cli_only_flag(self, fake_suites, tmp_path, capsys):
        from repro.bench.cli import bench_main

        assert bench_main(
            [
                "--suite", "kernel", "--only", "b", "--no-mem",
                "--out-dir", str(tmp_path),
            ]
        ) == 0
        doc = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        assert set(doc["results"]) == {"b"}

    def test_cli_unknown_only_exits_two(self, fake_suites, tmp_path, capsys):
        from repro.bench.cli import bench_main

        rc = bench_main(
            [
                "--suite", "kernel", "--only", "nope", "--no-mem",
                "--out-dir", str(tmp_path),
            ]
        )
        assert rc == 2
        assert "nope" in capsys.readouterr().err


class TestRssBudget:
    def test_budget_above_usage_passes(self, fake_suites, tmp_path, capsys):
        from repro.bench.cli import bench_main

        # Any real process RSS is far below a terabyte.
        assert bench_main(
            [
                "--suite", "kernel", "--only", "a", "--no-mem",
                "--rss-budget-mb", "1000000",
                "--out-dir", str(tmp_path),
            ]
        ) == 0

    def test_budget_below_usage_fails(self, fake_suites, tmp_path, capsys):
        from repro.bench.cli import bench_main

        # ...and always above one megabyte.
        rc = bench_main(
            [
                "--suite", "kernel", "--only", "a", "--no-mem",
                "--rss-budget-mb", "1",
                "--out-dir", str(tmp_path),
            ]
        )
        assert rc == 1
        assert "RSS BUDGET EXCEEDED" in capsys.readouterr().err


class TestMacroSuiteRegistration:
    def test_jobs_1m_is_a_macro_workload(self):
        names = [wl.name for wl in SUITES["macro"]]
        assert "jobs_1m" in names

    def test_jobs_1m_streams_and_balances(self, monkeypatch, tmp_path):
        """A scaled-down jobs_1m pass: streaming sink, spill, accounting.

        The real quick size takes seconds; this shrinks the wave size via
        the workload's own environment knob (spill path) and asserts the
        invariants the memory gate relies on: every submitted job
        finishes and the retained window stays at the configured cap
        while the all-time record count keeps growing past it.
        """
        from repro.bench import workloads

        spill = tmp_path / "jobs.jsonl"
        monkeypatch.setenv("JETS_BENCH_SPILL", str(spill))
        monkeypatch.setattr(workloads, "_JOBS_1M_QUICK", 400)
        out = workloads._jobs_1m(quick=True)
        assert out["finished"] == out["jobs"]
        assert out["events"] > out["jobs"]
        assert out["retained"] <= out["window"]
        lines = spill.read_text().splitlines()
        assert json.loads(lines[-1])["meta"] == "perf"
        assert len(lines) - 1 == json.loads(lines[-1])["records"]
