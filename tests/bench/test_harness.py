"""Tests for the jets bench measurement harness and comparison gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import (
    EVENT_GROWTH_TOLERANCE,
    BenchResult,
    SuiteRun,
    compare_runs,
    load_baseline,
    run_suite,
    run_workload,
    write_suite,
)
from repro.bench.workloads import SUITES, Workload


def toy_workload(name="toy", events=1000, sim_s=5.0, extra=None):
    def fn(quick):
        out = {"events": events, "sim_s": sim_s, "quick": quick}
        out.update(extra or {})
        return out

    return Workload(name=name, fn=fn, doc="toy")


class TestRunWorkload:
    def test_lifts_events_and_sim_s(self):
        r = run_workload(toy_workload(extra={"jobs": 7}), memory=False)
        assert r.name == "toy"
        assert r.wall_s > 0
        assert r.events == 1000
        assert r.sim_s == 5.0
        assert r.events_per_s == pytest.approx(1000 / r.wall_s)
        assert r.peak_rss_kb > 0
        # Remaining keys become workload metadata.
        assert r.meta == {"quick": False, "jobs": 7}
        assert r.alloc_peak_kb is None  # memory pass was skipped

    def test_memory_pass_fills_alloc_fields(self):
        r = run_workload(toy_workload(), memory=True)
        assert r.alloc_peak_kb is not None and r.alloc_peak_kb >= 0
        assert r.alloc_net_blocks is not None

    def test_quick_flag_reaches_workload(self):
        r = run_workload(toy_workload(), quick=True, memory=False)
        assert r.meta["quick"] is True

    def test_repeats_run_the_workload_and_report_the_minimum(self):
        calls = []

        def fn(quick):
            calls.append(quick)
            return {"events": 10, "sim_s": 1.0}

        wl = Workload(name="rep", fn=fn, doc="rep")
        r = run_workload(wl, memory=False, repeats=4)
        assert len(calls) == 4
        # events/s is derived from the reported (minimum) wall time.
        assert r.events_per_s == pytest.approx(10 / r.wall_s)

    def test_repeats_recorded_in_suite_json(self):
        run = SuiteRun(suite="kernel", quick=False, repeats=3)
        assert run.to_json()["repeats"] == 3


class TestSuiteRegistry:
    def test_known_suites(self):
        assert set(SUITES) == {"kernel", "macro"}
        for workloads in SUITES.values():
            assert workloads  # non-empty, in declaration order

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            run_suite("nope")


class TestWriteAndLoad:
    def _run(self, walls):
        run = SuiteRun(suite="kernel", quick=False)
        for name, wall in walls.items():
            run.results.append(
                BenchResult(name=name, wall_s=wall, events=100, sim_s=1.0)
            )
        return run

    def test_round_trip(self, tmp_path):
        run = self._run({"a": 0.5, "b": 1.0})
        path = tmp_path / "BENCH_kernel.json"
        doc = write_suite(run, str(path))
        assert doc["schema"] == 1
        assert doc["suite"] == "kernel"
        assert set(doc["results"]) == {"a", "b"}
        assert load_baseline(str(path)) == json.loads(path.read_text())

    def test_baseline_and_speedup_sections(self, tmp_path):
        run = self._run({"a": 0.5, "b": 1.0})
        baseline = {
            "schema": 1,
            "suite": "kernel",
            "results": {"a": {"wall_s": 1.0}, "b": {"wall_s": 0.5}},
        }
        doc = write_suite(
            run, str(tmp_path / "out.json"), baseline, "old.json"
        )
        assert doc["baseline"]["source"] == "old.json"
        assert doc["baseline"]["wall_s"] == {"a": 1.0, "b": 0.5}
        assert doc["speedup"] == {"a": 2.0, "b": 0.5}

    def test_load_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_load_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"schema": 99, "results": {}}')
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestCompareRuns:
    def _run(self, name="w", wall=1.0, events=1000, meta=None):
        run = SuiteRun(suite="kernel", quick=False)
        run.results.append(
            BenchResult(
                name=name, wall_s=wall, events=events, meta=meta or {}
            )
        )
        return run

    def _baseline(self, name="w", wall=1.0, events=1000, meta=None):
        entry = {"wall_s": wall, "events": events}
        if meta:
            entry["meta"] = meta
        return {"schema": 1, "suite": "kernel", "results": {name: entry}}

    def test_within_threshold_is_ok(self):
        cmp = compare_runs(
            self._run(wall=1.2), self._baseline(wall=1.0), threshold_pct=25.0
        )
        assert cmp.ok
        assert cmp.walls["w"] == (1.0, 1.2, pytest.approx(1.0 / 1.2))

    def test_wall_regression_flagged(self):
        cmp = compare_runs(
            self._run(wall=1.5), self._baseline(wall=1.0), threshold_pct=25.0
        )
        assert not cmp.ok
        assert "wall" in cmp.regressions[0]

    def test_event_growth_flagged_even_when_wall_is_fine(self):
        grown = int(1000 * EVENT_GROWTH_TOLERANCE) + 10
        cmp = compare_runs(
            self._run(wall=0.5, events=grown), self._baseline(wall=1.0)
        )
        assert not cmp.ok
        assert "events" in cmp.regressions[0]

    def test_meta_mismatch_skips_not_compares(self):
        cmp = compare_runs(
            self._run(wall=9.9, meta={"n": 10}),
            self._baseline(wall=1.0, meta={"n": 1000}),
        )
        assert cmp.ok
        assert cmp.skipped and "parameters differ" in cmp.skipped[0]

    def test_workload_missing_from_baseline_skipped(self):
        cmp = compare_runs(
            self._run(name="new_thing"), self._baseline(name="other")
        )
        assert cmp.ok
        assert "not in baseline" in cmp.skipped[0]


class TestBenchCli:
    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        from repro.bench.cli import bench_main

        assert bench_main(
            ["--against", str(tmp_path / "nope.json")]
        ) == 2

    def test_bad_out_dir_exits_two(self, tmp_path, capsys):
        from repro.bench.cli import bench_main

        assert bench_main(
            ["--out-dir", str(tmp_path / "missing")]
        ) == 2

    def test_suite_run_writes_json_and_gates(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.bench.cli as cli
        import repro.bench.harness as harness

        fake = {"kernel": [toy_workload("a"), toy_workload("b")]}
        monkeypatch.setattr(harness, "SUITES", fake)
        monkeypatch.setattr(cli, "SUITES", fake)

        out = tmp_path
        assert cli.bench_main(
            ["--suite", "kernel", "--out-dir", str(out), "--no-mem"]
        ) == 0
        path = out / "BENCH_kernel.json"
        doc = json.loads(path.read_text())
        assert set(doc["results"]) == {"a", "b"}

        # Re-run against the file just written: same workloads, no
        # meaningful wall delta, same event counts -> ok plus a speedup
        # table in the output.
        assert cli.bench_main(
            [
                "--suite", "kernel", "--out-dir", str(out), "--no-mem",
                "--against", str(path), "--threshold", "10000",
            ]
        ) == 0
        assert "->" in capsys.readouterr().out

    def test_regression_exit_code(self, tmp_path, capsys, monkeypatch):
        import repro.bench.cli as cli
        import repro.bench.harness as harness

        fake = {"kernel": [toy_workload("a", events=5000)]}
        monkeypatch.setattr(harness, "SUITES", fake)
        monkeypatch.setattr(cli, "SUITES", fake)
        baseline = tmp_path / "old.json"
        baseline.write_text(json.dumps({
            "schema": 1,
            "suite": "kernel",
            "results": {"a": {
                "wall_s": 100.0, "events": 1000,
                "meta": {"quick": False},
            }},
        }))
        assert cli.bench_main(
            [
                "--suite", "kernel", "--out-dir", str(tmp_path), "--no-mem",
                "--against", str(baseline),
            ]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().err
