#!/usr/bin/env python3
"""Compare JETS against the systems the paper positions it against.

Runs the same batch of short MPI jobs through:
  * JETS (pilot workers + Hydra launcher=manual),
  * the Fig. 7 shell-script loop (mpiexec per job, serial),
  * an IPS-style pool manager (native launcher, placement mispredictions),
and shows Falkon rejecting the MPI workload outright (it is serial-only),
plus IPS refusing the BG/P (no native launcher path) — the two gaps that
motivated JETS (Section 2).

Run:  python examples/compare_launchers.py
"""

from repro import Simulation, TaskList
from repro.apps.synthetic import BarrierSleepBarrier
from repro.baselines import (
    FalkonSimulation,
    FalkonUnsupportedError,
    IpsUnsupportedError,
    run_ips_batch,
    run_shellscript_batch,
)
from repro.cluster.machine import breadboard, surveyor
from repro.core.tasklist import JobSpec


def make_jobs(count: int) -> list[JobSpec]:
    return [
        JobSpec(program=BarrierSleepBarrier(2.0), nodes=4, ppn=1, mpi=True)
        for _ in range(count)
    ]


def main() -> None:
    machine = breadboard(nodes=32)
    n_jobs = 48

    jets = Simulation(machine).run_standalone(
        TaskList(make_jobs(n_jobs)), allocation_nodes=32
    )
    shell = run_shellscript_batch(
        machine, make_jobs(n_jobs), allocation_nodes=32
    )
    ips = run_ips_batch(machine, make_jobs(n_jobs), allocation_nodes=32)

    print(f"{n_jobs} × (4-node, 2-s) MPI jobs on a 32-node x86 cluster:")
    print(f"  {'system':<14} {'utilization':>12} {'makespan':>10}")
    print(f"  {'JETS':<14} {jets.utilization:>11.1%} {jets.span:>9.1f}s")
    print(f"  {'IPS-style':<14} {ips.utilization:>11.1%} {ips.span:>9.1f}s"
          f"   ({ips.mispredictions} placement mispredictions)")
    print(f"  {'shell script':<14} {shell.utilization:>11.1%} "
          f"{shell.span:>9.1f}s   (one job at a time)")

    print("\ncapability gaps the paper identifies:")
    try:
        FalkonSimulation(machine).run_batch(make_jobs(2))
    except FalkonUnsupportedError as exc:
        print(f"  Falkon : {exc}")
    try:
        run_ips_batch(surveyor(64), make_jobs(2))
    except IpsUnsupportedError as exc:
        print(f"  IPS    : {exc}")

    assert jets.utilization > ips.utilization > shell.utilization


if __name__ == "__main__":
    main()
