#!/usr/bin/env python3
"""Quickstart: run a batch of MPI tasks under stand-alone JETS.

This reproduces the paper's basic workflow (Section 5.1): write a task
list, point the ``jets`` tool at an allocation, get per-batch utilization.

Run:  python examples/quickstart.py
"""

from repro import Simulation, TaskList
from repro.cluster.machine import generic_cluster


def main() -> None:
    # A small 16-node commodity cluster, 4 cores per node.
    machine = generic_cluster(nodes=16, cores_per_node=4)

    # The stand-alone JETS input format: one command line per job.
    # Node counts vary; JETS aggregates free workers dynamically.
    task_lines = [
        "MPI: 4 mpi-bench 2.0",     # barrier / sleep 2s / barrier on 4 nodes
        "MPI: 8 mpi-bench 2.0",
        "MPI: 6 mpi-bench 2.0",
    ] * 8 + [
        "SERIAL: sleep 1.0",        # Falkon-style single-process tasks mix in
    ] * 10
    tasks = TaskList.from_lines(task_lines)

    sim = Simulation(machine)
    report = sim.run_standalone(tasks)

    print(report.summary())
    print(f"  jobs completed : {report.jobs_completed}/{report.jobs_total}")
    print(f"  utilization    : {report.utilization:.1%}   (Eq. 1)")
    print(f"  task rate      : {report.task_rate:.2f} jobs/s")
    print(f"  mean MPI wire-up: {report.mean_wireup * 1e3:.1f} ms")
    assert report.jobs_failed == 0


if __name__ == "__main__":
    main()
