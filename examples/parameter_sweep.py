#!/usr/bin/env python3
"""A NAMD parameter sweep on a Blue Gene/P partition.

The Nimrod/APST-style pattern from the paper's Section 2: generate job
specifications over a parameter grid and feed them to stand-alone JETS
("stand-alone JETS could be used in certain application patterns such as
parameter sweep").  Here: 32 NAMD inputs × 3 node counts, dispatched into a
128-node allocation with binaries staged to node-local storage.

Run:  python examples/parameter_sweep.py
"""

from repro import Simulation, TaskList
from repro.cluster.machine import surveyor


def generate_tasklist() -> list[str]:
    """The 'generator script' producing the sweep's task list."""
    lines = []
    for case in range(32):
        for nodes in (4, 8, 16):
            lines.append(
                f"MPI: {nodes} namd2.sh case-{case:02d}.pdb "
                f"case-{case:02d}-n{nodes}.log"
            )
    return lines


def main() -> None:
    machine = surveyor(nodes=128)
    tasks = TaskList.from_text("\n".join(generate_tasklist()))
    print(f"sweep: {len(tasks)} NAMD jobs, "
          f"{tasks.total_processes} processes total")

    sim = Simulation(machine)
    report = sim.run_standalone(tasks)

    print(report.summary())
    by_nodes: dict[int, list[float]] = {}
    for c in report.completed:
        if c.ok and c.result is not None:
            by_nodes.setdefault(c.job.nodes, []).append(
                c.result.app_time
            )
    for nodes in sorted(by_nodes):
        walls = by_nodes[nodes]
        print(
            f"  {nodes:2d}-node segments: {len(walls):3d} jobs, "
            f"wall {min(walls):6.1f}–{max(walls):6.1f} s "
            f"(more nodes → faster segment)"
        )
    assert report.jobs_failed == 0


if __name__ == "__main__":
    main()
