#!/usr/bin/env python3
"""The paper's Fig. 14 Swift script, as a Python Swift-script.

Fig. 14 drives the Section 6.2.1 synthetic workload: a trivial loop
generating MPI tasks (barrier / 10-s sleep / per-rank file write /
barrier) dispatched through Coasters.  With :class:`SwiftScript` the
Python version reads nearly line-for-line like the Swift original:

    foreach i in [0:n-1] {
        out[i] = synthetic(i);
    }

Run:  python examples/swift_script.py
"""

from repro.apps.synthetic import SwiftSyntheticTask
from repro.cluster.batch import BatchScheduler
from repro.cluster.machine import eureka
from repro.cluster.platform import Platform
from repro.core.tasklist import JobSpec
from repro.metrics.utilization import UtilizationLedger
from repro.swift import (
    CoastersConfig,
    CoasterService,
    CoastersProvider,
    SwiftEngine,
    SwiftScript,
)

ALLOCATION = 16
NODES_PER_JOB = 2
PPN = 8
DURATION = 10.0
N_TASKS = 48


def main() -> None:
    platform = Platform(eureka(nodes=ALLOCATION))
    batch = BatchScheduler(platform)
    service = CoasterService(
        platform, batch, CoastersConfig(workers=ALLOCATION)
    )
    service.start()
    engine = SwiftEngine(platform, CoastersProvider(service))
    lang = SwiftScript(engine)

    @lang.app
    def synthetic(i):
        return JobSpec(
            program=SwiftSyntheticTask(DURATION),
            nodes=NODES_PER_JOB,
            ppn=PPN,
            mpi=True,
        )

    out = lang.array("out")
    lang.foreach(range(N_TASKS), lambda i: synthetic(i, outputs=[out[i]]))
    platform.env.run(engine.drained())

    ledger = UtilizationLedger(ALLOCATION)
    for c in service.dispatcher.completed:
        if c.ok:
            ledger.add(DURATION, c.job.nodes, c.t_dispatched, c.t_done)
    print(f"{N_TASKS} × ({NODES_PER_JOB}-node × {PPN}-rank, {DURATION:.0f}-s) "
          f"MPI tasks via Swift/Coasters on {ALLOCATION} Eureka nodes:")
    print(f"  completed   : {ledger.jobs}")
    print(f"  utilization : {ledger.utilization():.1%}  (paper Fig. 15 regime)")
    print(f"  makespan    : {ledger.span:.0f} s simulated")
    assert ledger.jobs == N_TASKS
    assert len(out.assigned()) == N_TASKS


if __name__ == "__main__":
    main()
