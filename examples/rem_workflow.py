#!/usr/bin/env python3
"""Replica-exchange molecular dynamics, two ways.

Part 1 runs *real* REM physics: a ladder of MiniMD (Lennard-Jones) replicas
with Metropolis temperature exchanges — the computation the paper's NAMD
use case performs (Section 3).

Part 2 runs the *systems* side: the Fig. 17 Swift dataflow dispatching
NAMD segments as MPI jobs through Coasters/JETS on a simulated Eureka,
with exchanges executed on the login host.

Run:  python examples/rem_workflow.py
"""

from repro.apps.namd import NamdCostModel
from repro.apps.rem import ReplicaExchangeMD
from repro.cluster.batch import BatchScheduler
from repro.cluster.machine import eureka
from repro.cluster.platform import Platform
from repro.swift import (
    CoastersConfig,
    CoasterService,
    CoastersProvider,
    LoginProvider,
    RemWorkflowConfig,
    SwiftEngine,
    run_rem_workflow,
)


def real_physics_demo() -> None:
    print("== Part 1: real replica-exchange MD (MiniMD, LJ fluid) ==")
    rem = ReplicaExchangeMD(
        n_replicas=6,
        n_atoms=64,
        t_min=0.7,
        t_max=1.6,
        steps_per_segment=25,
        seed=42,
    )
    rem.run(n_rounds=12)
    print(f"  rounds           : {rem.rounds_done}")
    print(f"  exchange attempts: {len(rem.exchanges)}")
    print(f"  acceptance rate  : {rem.acceptance_rate():.1%}")
    final = [f"{t:.2f}" for t in rem.ladder_temperatures()]
    print(f"  final replica temperatures: {final}")
    # Each replica reports its trajectory's last potential energy.
    energies = [f"{e:.1f}" for e in rem.energy_history[-1]]
    print(f"  final potential energies  : {energies}")


def swift_workflow_demo() -> None:
    print("\n== Part 2: the Fig. 17 REM dataflow over Swift/Coasters ==")
    platform = Platform(eureka(nodes=16))
    batch = BatchScheduler(platform)
    service = CoasterService(platform, batch, CoastersConfig(workers=16))
    service.start()
    engine = SwiftEngine(platform, CoastersProvider(service))

    config = RemWorkflowConfig(
        n_replicas=8,
        n_exchanges=6,
        nodes_per_segment=4,
        ppn=8,  # all 8 Eureka cores per node, as in Fig. 18b
    )
    result = run_rem_workflow(
        engine,
        config,
        exchange_provider=LoginProvider(platform),
        model=NamdCostModel(cpu_speed=8.0, parallel_efficiency=0.62),
    )
    platform.env.run(engine.drained())

    print(f"  NAMD segments run : {result.segments_run} "
          f"({config.n_replicas} replicas × {config.n_exchanges} rounds)")
    print(f"  exchange attempts : {result.exchanges_attempted}, "
          f"accepted {result.exchanges_accepted} "
          f"({result.acceptance_rate:.0%})")
    walls = result.segment_walls
    print(f"  segment wall times: {min(walls):.1f}–{max(walls):.1f} s")
    print(f"  workflow makespan : {platform.env.now:.0f} s simulated")
    assert not result.failures


def main() -> None:
    real_physics_demo()
    swift_workflow_demo()


if __name__ == "__main__":
    main()
