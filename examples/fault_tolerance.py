#!/usr/bin/env python3
"""Fault tolerance: JETS on a crumbling allocation.

Reproduces the Section 6.1.5 scenario interactively: pilot workers are
killed one by one while a long batch runs.  JETS detects dead workers
(socket close + heartbeat timeout), resubmits their jobs, and keeps the
surviving nodes busy.

Run:  python examples/fault_tolerance.py
"""

from repro import Simulation, TaskList
from repro.cluster.machine import generic_cluster
from repro.core.jets import FaultSpec, JetsConfig
from repro.metrics.timeline import available_workers_series

WORKERS = 12
FAULT_INTERVAL = 5.0


def main() -> None:
    machine = generic_cluster(nodes=WORKERS, cores_per_node=1)
    sim = Simulation(machine, JetsConfig(worker_slots=1))
    # Oversized queue of short MPI jobs: work never runs out.
    tasks = TaskList.from_lines(["MPI: 2 mpi-bench 1.0"] * 800)
    report = sim.run_standalone(
        tasks,
        faults=FaultSpec(interval=FAULT_INTERVAL),
        until=FAULT_INTERVAL * (WORKERS + 4),
    )

    print(f"faults injected  : {report.faults_injected}")
    print(f"jobs completed   : {report.jobs_completed}")
    print(f"jobs retried     : "
          f"{len(report.platform.trace.select('job.retry'))}")
    print(f"permanent failures: {report.jobs_failed}")

    print("\nworker population over time:")
    for t, level in available_workers_series(report.platform.trace):
        bar = "#" * level
        print(f"  t={t:7.1f}s  {level:3d} {bar}")

    # The headline claim: jobs whose workers died were recovered, and the
    # batch kept making progress until no workers remained.
    assert report.faults_injected >= WORKERS - 1
    assert report.jobs_completed > 50


if __name__ == "__main__":
    main()
