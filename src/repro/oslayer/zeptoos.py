"""ZeptoOS compute-node configuration.

On the Blue Gene/P the default IBM Compute Node Kernel provides no POSIX
sockets, so JETS requires ZeptoOS: a Linux kernel exposing TCP/IP over the
torus through a virtual ethernet device (Section 4.3).  The JETS start-up
scripts additionally enable the node-local RAM filesystem, set
``LD_LIBRARY_PATH`` to suppress GPFS lookups, and add an ``/etc/hosts``
entry so Hydra proxies can find the JETS service (Section 6.1.4).

This module models that configuration step as an explicit, checkable node
capability: attempting socket-based MPI on a node without
``ip_over_torus`` raises, exactly as the real system would fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

__all__ = ["ZeptoConfig", "CNK_DEFAULT", "ZEPTO_TUNED", "NodeCapabilityError"]


class NodeCapabilityError(RuntimeError):
    """A node lacks an OS capability the requested operation needs."""


@dataclass(frozen=True)
class ZeptoConfig:
    """Compute-node OS feature set.

    Attributes:
        name: label for reports.
        posix_sockets: node offers POSIX sockets (Linux/ZeptoOS yes,
            IBM CNK no).
        ip_over_torus: virtual ethernet over the torus is enabled
            (required for sockets-based MPI on BG/P).
        ramfs: node-local RAM filesystem available for staging.
        hosts_entries: extra /etc/hosts entries installed by the start-up
            script (service name -> endpoint).
        suppress_gpfs_lookups: LD_LIBRARY_PATH tuned so library loads hit
            local storage instead of GPFS.
        boot_overhead: extra per-node boot time for the custom kernel (s).
    """

    name: str
    posix_sockets: bool
    ip_over_torus: bool
    ramfs: bool
    hosts_entries: dict[str, int] = field(default_factory=dict)
    suppress_gpfs_lookups: bool = False
    boot_overhead: float = 0.0

    def require_sockets(self) -> None:
        """Raise unless this OS supports socket-based communication."""
        if not self.posix_sockets:
            raise NodeCapabilityError(
                f"{self.name}: no POSIX sockets (IBM CNK); boot ZeptoOS"
            )

    def require_ip(self) -> None:
        """Raise unless node-to-node IP (torus or ethernet) is available."""
        self.require_sockets()
        if not self.ip_over_torus:
            raise NodeCapabilityError(
                f"{self.name}: IP-over-torus disabled; enable it in the "
                "ZeptoOS boot options"
            )


#: The stock IBM Compute Node Kernel: no sockets, no local Linux FS.
CNK_DEFAULT = ZeptoConfig(
    name="cnk",
    posix_sockets=False,
    ip_over_torus=False,
    ramfs=False,
)

#: ZeptoOS as configured by the JETS start-up scripts (Section 6.1.4).
ZEPTO_TUNED = ZeptoConfig(
    name="zeptoos-tuned",
    posix_sockets=True,
    ip_over_torus=True,
    ramfs=True,
    suppress_gpfs_lookups=True,
    boot_overhead=30.0,
)

#: Plain Linux on commodity clusters (Breadboard/Eureka).
LINUX = ZeptoConfig(
    name="linux",
    posix_sockets=True,
    ip_over_torus=True,  # ordinary ethernet IP
    ramfs=True,
)

__all__.append("LINUX")
