"""Operating-system process model.

Captures what it costs a compute node to start a user process: the
fork/exec itself plus loading the executable image — from the shared
filesystem (slow, contended, the default for a "first-time user",
Section 6.2.2) or from the node-local RAM FS when JETS has staged it
(Section 6.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

__all__ = ["ExecutableImage", "ProcessCostSpec", "load_executable"]


@dataclass(frozen=True)
class ExecutableImage:
    """An executable (or shared library) with its on-disk size.

    ``libraries`` model the LD_LIBRARY_PATH lookups that ZeptoOS staging
    suppresses; each library is loaded the same way as the main image.
    """

    name: str
    nbytes: int = 1 << 20
    libraries: tuple["ExecutableImage", ...] = field(default_factory=tuple)

    def total_bytes(self) -> int:
        """Image plus all library bytes."""
        return self.nbytes + sum(lib.total_bytes() for lib in self.libraries)


@dataclass(frozen=True)
class ProcessCostSpec:
    """Per-node process management costs.

    Attributes:
        fork_exec: median kernel cost of fork+exec (s).
        exit_cost: teardown cost at process exit (s).
        fork_jitter: lognormal sigma of per-exec variation.  Real fork
            times vary run to run; this skew is what lets a fleet of
            identical workers drift out of lockstep (the paper observes
            exactly this: "skew reduces the number of simultaneous work
            requests", Section 6.1.5).
    """

    fork_exec: float
    exit_cost: float = 0.0
    fork_jitter: float = 0.08


def load_executable(node: "Node", image: ExecutableImage) -> Generator:
    """Sim-process generator: load ``image`` (and libraries) on ``node``.

    Reads from the node's RAM FS when staged there, otherwise from the
    shared filesystem (incurring contention).
    """
    ramfs = node.ramfs
    for item in (image, *image.libraries):
        if ramfs.has(item.name):
            yield from ramfs.read(item.name)
        elif node.shared_fs is not None:
            yield from node.shared_fs.read(item.nbytes)
        else:  # no shared FS configured: treat as local
            ramfs.store(item.name, item.nbytes)
            yield from ramfs.read(item.name)
