"""Operating-system substrate: filesystems, process costs, ZeptoOS config."""

from .filesystem import (
    GPFS,
    PVFS,
    RAMFS_SPEC,
    FilesystemSpec,
    LocalRamFS,
    SharedFilesystem,
)
from .process import ExecutableImage, ProcessCostSpec, load_executable
from .zeptoos import (
    CNK_DEFAULT,
    LINUX,
    NodeCapabilityError,
    ZEPTO_TUNED,
    ZeptoConfig,
)

__all__ = [
    "CNK_DEFAULT",
    "ExecutableImage",
    "FilesystemSpec",
    "GPFS",
    "LINUX",
    "LocalRamFS",
    "NodeCapabilityError",
    "ProcessCostSpec",
    "PVFS",
    "RAMFS_SPEC",
    "SharedFilesystem",
    "ZEPTO_TUNED",
    "ZeptoConfig",
    "load_executable",
]
