"""Filesystem models: shared parallel FS (GPFS/PVFS-like) and node-local RAM FS.

The paper's utilization losses at high PPN (Fig. 15) and in the
single-process REM runs (Fig. 18a) come from *shared-filesystem contention*:
many nodes simultaneously reading the application binary and small input
files.  JETS counters this with node-local RAM-filesystem staging
(Section 6.1.4).  Both effects are modelled here:

* :class:`SharedFilesystem` charges ``(metadata + latency + bytes/bw)``
  scaled by a contention factor that grows with the number of concurrent
  clients.
* :class:`LocalRamFS` is per-node, fast, and contention-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..simkernel import Environment

__all__ = [
    "FilesystemSpec",
    "SharedFilesystem",
    "LocalRamFS",
    "GPFS",
    "PVFS",
    "RAMFS_SPEC",
]


@dataclass(frozen=True)
class FilesystemSpec:
    """Cost parameters of a filesystem.

    Attributes:
        name: label for reports.
        metadata_latency: cost of an open/stat (s).
        latency: first-byte latency of a read/write (s).
        bandwidth: streaming bandwidth per client, uncontended (bytes/s).
        contention_alpha: fractional slowdown added per concurrent client
            beyond the first (0 disables contention).
        contention_cap: upper bound on the contention factor.
    """

    name: str
    metadata_latency: float
    latency: float
    bandwidth: float
    contention_alpha: float = 0.0
    contention_cap: float = 64.0


#: GPFS as deployed on Eureka (Section 6.2) — strong small-file contention.
GPFS = FilesystemSpec(
    name="gpfs",
    metadata_latency=1.5e-3,
    latency=0.8e-3,
    bandwidth=350e6,
    contention_alpha=0.035,
)

#: PVFS as deployed on Surveyor (Section 6.1.6) — better parallel writes.
PVFS = FilesystemSpec(
    name="pvfs",
    metadata_latency=1.0e-3,
    latency=0.9e-3,
    bandwidth=300e6,
    contention_alpha=0.012,
)

#: Node-local ZeptoOS RAM filesystem.
RAMFS_SPEC = FilesystemSpec(
    name="ramfs",
    metadata_latency=4e-6,
    latency=2e-6,
    bandwidth=2.0e9,
)


class SharedFilesystem:
    """A shared parallel filesystem with client-count contention.

    All nodes (and the login host) read/write through one instance; the
    instantaneous number of in-flight operations scales everyone's cost.
    """

    def __init__(self, env: Environment, spec: FilesystemSpec):
        self.env = env
        self.spec = spec
        self._active = 0
        #: Total bytes moved, for reports.
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def active_clients(self) -> int:
        """Number of in-flight operations right now."""
        return self._active

    def _factor(self) -> float:
        extra = max(0, self._active - 1)
        return min(
            1.0 + self.spec.contention_alpha * extra, self.spec.contention_cap
        )

    def _op_time(self, nbytes: int) -> float:
        base = (
            self.spec.metadata_latency
            + self.spec.latency
            + nbytes / self.spec.bandwidth
        )
        return base * self._factor()

    def read(self, nbytes: int) -> Generator:
        """Sim-process generator performing a contended read."""
        self._active += 1
        try:
            yield self.env.timeout(self._op_time(nbytes))
            self.bytes_read += nbytes
        finally:
            self._active -= 1

    def write(self, nbytes: int) -> Generator:
        """Sim-process generator performing a contended write."""
        self._active += 1
        try:
            yield self.env.timeout(self._op_time(nbytes))
            self.bytes_written += nbytes
        finally:
            self._active -= 1

    def estimate(self, nbytes: int) -> float:
        """Uncontended single-op time (for planning/tests)."""
        return (
            self.spec.metadata_latency
            + self.spec.latency
            + nbytes / self.spec.bandwidth
        )


class LocalRamFS:
    """Per-node RAM filesystem used for staged binaries and libraries."""

    def __init__(self, env: Environment, spec: FilesystemSpec = RAMFS_SPEC):
        self.env = env
        self.spec = spec
        self._files: dict[str, int] = {}

    def store(self, name: str, nbytes: int) -> None:
        """Register ``name`` (size ``nbytes``) as locally cached."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._files[name] = int(nbytes)

    def has(self, name: str) -> bool:
        """True if ``name`` has been staged to this node."""
        return name in self._files

    def size(self, name: str) -> int:
        """Size of a staged file; KeyError if absent."""
        return self._files[name]

    def read(self, name: str) -> Generator:
        """Sim-process generator reading a staged file (fast, local)."""
        nbytes = self._files[name]
        yield self.env.timeout(
            self.spec.metadata_latency
            + self.spec.latency
            + nbytes / self.spec.bandwidth
        )

    def files(self) -> list[str]:
        """Names of all staged files."""
        return sorted(self._files)
