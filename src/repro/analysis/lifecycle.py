"""Declarative lifecycle state machines for jobs, workers and proxies.

The instrumented components emit typed ``<entity>.<event>`` trace records
whose ordering the evaluation pipeline silently assumes (a job cannot run
before it is grouped; a worker cannot go busy after it stopped).  This
module makes those transition graphs explicit, in the style of the
entity state models RADICAL-Pilot uses to validate recorded events
(Merzky et al., arXiv:1801.01843).  They are the single source of truth:

* :mod:`repro.obs.spans` imports the canonical state tuples from here,
* :mod:`repro.analysis.schema` derives the legal trace categories from
  the event names declared here,
* :mod:`repro.analysis.tracecheck` replays recorded runs against the
  transition graphs (``jets lint-trace``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = [
    "StateMachine",
    "JOB_MACHINE",
    "WORKER_MACHINE",
    "PROXY_MACHINE",
    "MACHINES",
    "JOB_STATES",
    "WORKER_STATES",
    "PROXY_STATES",
]


@dataclass(frozen=True)
class StateMachine:
    """One entity family's lifecycle.

    Attributes:
        entity: trace category prefix ("job", "worker", "proxy").
        states: canonical state names, in lifecycle order.
        initial: states an entity may be first observed in.
        transitions: state -> allowed successor states.
        events: trace event suffix -> state it transitions the entity
            into (identity for most, e.g. ``start`` -> ``started``).
        ignored_events: event suffixes that carry no lifecycle state
            (per-slot chatter, legacy duplicates).
        id_key: payload key holding the entity id.
    """

    entity: str
    states: tuple[str, ...]
    initial: frozenset[str]
    transitions: Mapping[str, frozenset[str]]
    events: Mapping[str, str]
    ignored_events: frozenset[str] = field(default_factory=frozenset)
    id_key: str = ""

    def state_for_event(self, event: str) -> Optional[str]:
        """The state an event suffix maps to (None if ignored/unknown)."""
        return self.events.get(event)

    def can(self, a: Optional[str], b: str) -> bool:
        """Whether ``a -> b`` is a legal transition (``a=None``: entry)."""
        if a is None:
            return b in self.initial
        return b in self.transitions.get(a, frozenset())

    def is_terminal(self, state: str) -> bool:
        """True if no transitions leave ``state``."""
        return not self.transitions.get(state)

    def validate(self, states: list[str]) -> list[tuple[int, str]]:
        """Replay a state sequence; returns (index, message) per violation."""
        problems: list[tuple[int, str]] = []
        current: Optional[str] = None
        for i, state in enumerate(states):
            if state not in self.states:
                problems.append((i, f"unknown {self.entity} state {state!r}"))
                continue
            if not self.can(current, state):
                origin = current if current is not None else "<entry>"
                problems.append(
                    (i, f"illegal {self.entity} transition {origin} -> {state}")
                )
            current = state
        return problems


def _graph(**edges: tuple[str, ...]) -> Mapping[str, frozenset[str]]:
    return {state: frozenset(nxt) for state, nxt in edges.items()}


#: Job attempts: queued → grouped → mpiexec_spawned → pmi_wireup →
#: app_running → done | failed | resubmitted (serial jobs skip the
#: mpiexec/wireup stages; resubmitted loops back through queued).
JOB_MACHINE = StateMachine(
    entity="job",
    states=(
        "submitted",
        "queued",
        "grouped",
        "mpiexec_spawned",
        "pmi_wireup",
        "app_running",
        "done",
        "failed",
        "resubmitted",
    ),
    initial=frozenset({"submitted"}),
    transitions=_graph(
        # Oversized jobs fail synchronously at submit; a dispatcher
        # shutdown drains still-queued jobs into permanent failures.
        submitted=("queued", "failed"),
        queued=("grouped", "failed"),
        # Serial jobs jump straight to app_running; either shape can die
        # at dispatch (worker lost) and be resubmitted.
        grouped=("mpiexec_spawned", "app_running", "resubmitted"),
        mpiexec_spawned=("pmi_wireup", "resubmitted"),
        pmi_wireup=("app_running", "resubmitted"),
        app_running=("done", "failed", "resubmitted"),
        # A resubmission either requeues or, once the attempt budget is
        # exhausted, becomes the permanent failure logged at the same time.
        resubmitted=("queued", "failed"),
        done=(),
        failed=(),
    ),
    events={
        "submitted": "submitted",
        "queued": "queued",
        "grouped": "grouped",
        "mpiexec_spawned": "mpiexec_spawned",
        "pmi_wireup": "pmi_wireup",
        "app_running": "app_running",
        "done": "done",
        "failed": "failed",
        "retry": "resubmitted",
    },
    # ``job.dispatch`` duplicates the moment ``job.grouped`` records and is
    # kept for seed compatibility; app_running repeats once per serial slot.
    ignored_events=frozenset({"dispatch"}),
    id_key="job",
)


#: Pilot workers: started → registered → idle ⇄ busy → … → stopped | lost.
#: The tail edges are deliberately permissive: a kill is observed three
#: times (agent's killed, its stop on unwind, the dispatcher's lost when
#: the socket drops) and the relative order of the last two depends on
#: which side notices first.
WORKER_MACHINE = StateMachine(
    entity="worker",
    states=(
        "started",
        "registered",
        "idle",
        "busy",
        "heartbeat_missed",
        "lost",
        "killed",
        "stopped",
    ),
    initial=frozenset({"started", "registered"}),
    transitions=_graph(
        started=("registered", "killed", "stopped"),
        # registered -> lost: a worker dying between its register and
        # first ready is only ever observed by the dispatcher's
        # connection-drop path.
        registered=(
            "idle", "busy", "heartbeat_missed", "killed", "stopped", "lost",
        ),
        idle=("busy", "heartbeat_missed", "killed", "stopped", "lost"),
        busy=("idle", "heartbeat_missed", "killed", "stopped", "lost"),
        heartbeat_missed=("lost", "killed", "stopped"),
        killed=("stopped", "lost"),
        # stopped -> dispatcher-side states: observer lag.  Under message
        # delay/drop faults the pilot's own terminal ``stop`` can precede
        # in-flight observations of it — a delayed REGISTER delivered
        # after death (-> registered), a late READY/DONE credit
        # (-> idle), a dispatch to a worker whose dropped close the
        # dispatcher never saw (-> busy), or the health monitor noticing
        # the silence (-> heartbeat_missed -> lost).
        stopped=("lost", "registered", "idle", "busy", "heartbeat_missed"),
        lost=("killed", "stopped"),
    ),
    events={
        "start": "started",
        "registered": "registered",
        "idle": "idle",
        "busy": "busy",
        "heartbeat_missed": "heartbeat_missed",
        "lost": "lost",
        "killed": "killed",
        "stop": "stopped",
    },
    # Per-slot readiness chatter; worker-level state is carried by the
    # aggregator's typed idle/busy transitions.
    ignored_events=frozenset({"ready"}),
    id_key="worker",
)


#: Hydra proxies: launched → registered → wired → exited (early exits on
#: wire-up failure are legal from any live state).
PROXY_MACHINE = StateMachine(
    entity="proxy",
    states=("launched", "registered", "wired", "exited"),
    initial=frozenset({"launched"}),
    transitions=_graph(
        launched=("registered", "exited"),
        registered=("wired", "exited"),
        wired=("exited",),
        exited=(),
    ),
    events={
        "launched": "launched",
        "registered": "registered",
        "wired": "wired",
        "exited": "exited",
    },
    id_key="proxy",
)


#: All machines, keyed by trace category prefix.
MACHINES: dict[str, StateMachine] = {
    m.entity: m for m in (JOB_MACHINE, WORKER_MACHINE, PROXY_MACHINE)
}

#: Canonical state tuples (re-exported by :mod:`repro.obs.spans`).
JOB_STATES = JOB_MACHINE.states
WORKER_STATES = WORKER_MACHINE.states
PROXY_STATES = PROXY_MACHINE.states
