"""Static and runtime invariant checking for the reproduction.

The evaluation pipeline rests on two promises nothing else enforces:
every metric is derived from well-formed trace records (paper Section
6.1.5), and two runs with the same seed produce identical traces
(:mod:`repro.simkernel.core`).  This package makes both checkable:

* :mod:`.schema` — the central registry of legal trace categories and
  their payload keys.
* :mod:`.lifecycle` — declarative job/worker/proxy state machines
  (shared with :mod:`repro.obs.spans`).
* :mod:`.framework` — a pluggable AST lint framework with
  ``# repro: noqa[RULE]`` suppressions.
* :mod:`.trace_rules`, :mod:`.determinism_rules`,
  :mod:`.simkernel_rules` — the repo-specific rule sets (TR*, DT*, SK*).
* :mod:`.protocol` — the declarative wire-protocol registry (message
  kinds, payload shapes, sizes, per-channel session machines).
* :mod:`.protocol_rules` — static conformance rules over send/handle
  sites (PR*).
* :mod:`.tracecheck` — runtime validation of recorded runs (TV*).
* :mod:`.explore` — bounded schedule exploration (``jets explore``).
* :mod:`.cli` — the ``jets lint`` / ``jets lint-trace`` subcommands.
"""

from .framework import (
    Finding,
    LintResult,
    Module,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
    rules_for,
)
from .lifecycle import (
    JOB_MACHINE,
    MACHINES,
    PROXY_MACHINE,
    WORKER_MACHINE,
    StateMachine,
)
from .schema import CategorySpec, REGISTRY, known_category, lookup
from .tracecheck import TraceIssue, validate_records, validate_trace

__all__ = [
    "CategorySpec",
    "Finding",
    "JOB_MACHINE",
    "LintResult",
    "MACHINES",
    "Module",
    "PROXY_MACHINE",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "StateMachine",
    "TraceIssue",
    "WORKER_MACHINE",
    "all_rules",
    "known_category",
    "lint_paths",
    "lint_source",
    "lookup",
    "register",
    "rules_for",
    "validate_records",
    "validate_trace",
]
