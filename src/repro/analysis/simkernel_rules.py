"""Static checks for misuse of the DES kernel.

Rules:

* **SK001** — a plain (non-generator) function result passed to
  ``env.process(...)``: the kernel requires a generator; a plain call
  runs eagerly at schedule time and ``Process`` raises at runtime.
  Detected when the called function is defined in the same module and
  contains no ``yield``.
* **SK002** — ``env.run(...)`` re-entered from inside a generator
  (process) function: the scheduler is not reentrant; a process must
  ``yield`` events instead of driving the loop.
* **SK003** — an event triggered twice (``succeed``/``fail``) on the
  same name in one straight-line block: the second call raises
  ``SimulationError`` at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from .framework import Finding, Module, Rule, register

__all__ = ["NonGeneratorProcess", "RunInsideProcess", "DoubleTrigger"]

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_generator(func: _FuncDef) -> bool:
    """Whether a function definition contains yield / yield from."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # Nested defs have their own generator-ness; skip them.
            if _owner(func, node) is func:
                return True
    return False


def _owner(root: _FuncDef, target: ast.AST) -> ast.AST:
    """The innermost function definition containing ``target``."""
    owner: ast.AST = root

    class Finder(ast.NodeVisitor):
        def __init__(self):
            self.stack: list[ast.AST] = [root]
            self.found: ast.AST = root

        def generic_visit(self, node: ast.AST) -> None:
            if node is target:
                self.found = self.stack[-1]
                return
            is_def = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) and node is not root
            if is_def:
                self.stack.append(node)
            super().generic_visit(node)
            if is_def:
                self.stack.pop()

    finder = Finder()
    finder.visit(root)
    return finder.found


def _dotted(node: ast.expr) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _env_receiver(chain: str) -> bool:
    """Heuristic: does an attribute chain name a simulation environment?"""
    last = chain.split(".")[-1] if chain else ""
    return last.lstrip("_") in ("env", "environment")


def _module_functions(module: Module) -> dict[str, list[_FuncDef]]:
    """name -> definitions (module level and methods, all scopes)."""
    defs: dict[str, list[_FuncDef]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs


@register
class NonGeneratorProcess(Rule):
    id = "SK001"
    severity = "error"
    description = "non-generator function passed to env.process()"

    def check(self, module: Module) -> Iterator[Finding]:
        defs = _module_functions(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "process"):
                continue
            if not _env_receiver(_dotted(func.value)):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not isinstance(arg, ast.Call):
                continue
            name = _dotted(arg.func).split(".")[-1]
            candidates = defs.get(name)
            if not candidates:
                continue  # defined elsewhere — can't tell statically
            if all(not _is_generator(d) for d in candidates):
                yield self.finding(
                    module,
                    arg,
                    f"{name}() is not a generator; env.process() needs a "
                    "generator that yields events",
                )


@register
class RunInsideProcess(Rule):
    id = "SK002"
    severity = "error"
    description = "env.run() re-entered from inside a process"

    def check(self, module: Module) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(func):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                call_func = node.func
                if not (
                    isinstance(call_func, ast.Attribute)
                    and call_func.attr in ("run", "step")
                ):
                    continue
                if not _env_receiver(_dotted(call_func.value)):
                    continue
                if _owner(func, node) is not func:
                    continue  # belongs to a nested non-generator helper
                yield self.finding(
                    module,
                    node,
                    f"env.{call_func.attr}() inside generator "
                    f"{func.name!r} re-enters the scheduler; yield the "
                    "event instead",
                )


@register
class DoubleTrigger(Rule):
    id = "SK003"
    severity = "error"
    description = "event triggered twice in one straight-line block"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            body = getattr(node, "body", None)
            if not isinstance(body, list):
                continue
            for block in self._blocks(node):
                yield from self._check_block(module, block)

    def _blocks(self, node: ast.AST) -> Iterator[list[ast.stmt]]:
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                yield block

    def _check_block(
        self, module: Module, block: list[ast.stmt]
    ) -> Iterator[Finding]:
        triggered: dict[str, int] = {}
        for stmt in block:
            # A rebind of the name starts a fresh event.
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    triggered.pop(_dotted(target), None)
            if not isinstance(stmt, ast.Expr) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            call = stmt.value
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("succeed", "fail")
            ):
                continue
            receiver = _dotted(func.value)
            if not receiver:
                continue
            if receiver in triggered:
                yield self.finding(
                    module,
                    call,
                    f"{receiver} was already triggered on line "
                    f"{triggered[receiver]}; a second succeed()/fail() "
                    "raises SimulationError",
                )
            else:
                triggered[receiver] = stmt.lineno
