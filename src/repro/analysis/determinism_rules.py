"""Static determinism checks for simkernel-driven code.

The DES kernel promises that two runs with the same seed produce
identical traces (:mod:`repro.simkernel.core`).  Anything that reads the
host environment breaks that promise silently.  Rules:

* **DT001** — wall-clock reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``datetime.now``, …).  Simulated components
  must use ``env.now``.
* **DT002** — the process-global ``random`` module (module functions
  share hidden state seeded from the OS).  Use
  :class:`repro.simkernel.rng.RngRegistry` named streams.
* **DT003** — unseeded numpy randomness: ``np.random.default_rng()``
  with no seed argument, or the legacy global ``np.random.*`` functions.
* **DT004** — iterating an unordered ``set``/``frozenset`` expression
  (set literals, ``set(...)`` calls): iteration order varies with hash
  seeding and perturbs event scheduling.  Sort or use a list/dict.
* **DT005** — ambient process state: ``os.environ``/``os.getenv`` reads
  (environment-derived seeds and knobs vary between hosts and CI runs)
  and *bare* wall-clock function references (``clock = time.monotonic``)
  that smuggle a host clock past DT001's call-site check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Finding, Module, Rule, register

__all__ = [
    "WallClock",
    "GlobalRandom",
    "UnseededNumpyRandom",
    "SetIteration",
    "AmbientState",
]

#: Wall-clock attributes of the ``time`` module.  ``sleep`` is here too:
#: it does not *read* the clock but blocks on it, so a simulated
#: component calling it couples event timing to the host (use
#: ``env.timeout``).
_TIME_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "localtime",
    "gmtime",
    "sleep",
}

#: Wall-clock constructors on datetime/date classes.
_DATETIME_FUNCS = {"now", "utcnow", "today"}


def _dotted(node: ast.expr) -> str:
    """Dotted source form of an attribute/name chain ('' otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _imported_names(module: Module) -> dict[str, str]:
    """Local name -> originating module for import/from-import bindings."""
    origins: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                origins[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                origins[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return origins


@register
class WallClock(Rule):
    id = "DT001"
    severity = "error"
    description = "wall-clock read in simulation code (use env.now)"
    example_bad = "start = time.time()"
    example_good = "start = env.now"

    def check(self, module: Module) -> Iterator[Finding]:
        origins = _imported_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted:
                continue
            parts = dotted.split(".")
            # Resolve the leading name through the module's imports, so
            # `import time as t` and `from time import perf_counter`
            # are both seen as the time module.
            resolved = origins.get(parts[0], parts[0]).split(".") + parts[1:]
            bad = (
                # time.time(), t.monotonic(), perf_counter()...
                (resolved[0] == "time" and len(resolved) > 1
                 and resolved[-1] in _TIME_FUNCS)
                # datetime.now(), datetime.datetime.utcnow(), date.today()
                or (len(resolved) > 1
                    and resolved[-1] in _DATETIME_FUNCS
                    and resolved[-2] in ("datetime", "date"))
            )
            if bad:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock call {dotted}() breaks seeded-run "
                    "determinism; use the simulation clock (env.now)",
                )


@register
class GlobalRandom(Rule):
    id = "DT002"
    severity = "error"
    description = "process-global random module in simulation code"
    example_bad = "delay = random.expovariate(rate)"
    example_good = 'delay = rng.stream("delay").expovariate(rate)'

    def check(self, module: Module) -> Iterator[Finding]:
        origins = _imported_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted:
                continue
            parts = dotted.split(".")
            if origins.get(parts[0], parts[0]) == "random" and len(parts) > 1:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() uses the process-global RNG; draw from a "
                    "named RngRegistry stream instead",
                )
            elif (
                len(parts) == 1
                and origins.get(parts[0], "").startswith("random.")
            ):
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() (imported from random) uses the "
                    "process-global RNG; draw from a named RngRegistry "
                    "stream instead",
                )


@register
class UnseededNumpyRandom(Rule):
    id = "DT003"
    severity = "error"
    description = "unseeded numpy randomness in simulation code"
    example_bad = "gen = np.random.default_rng()"
    example_good = "gen = np.random.default_rng(seed)"

    _GLOBAL_FUNCS = {
        "rand", "randn", "randint", "random", "choice", "shuffle",
        "permutation", "seed", "uniform", "normal", "exponential",
    }

    def check(self, module: Module) -> Iterator[Finding]:
        origins = _imported_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted:
                continue
            parts = dotted.split(".")
            root = origins.get(parts[0], parts[0])
            if root != "numpy" and parts[0] not in ("np", "numpy"):
                continue
            tail = parts[1:]
            if tail[:1] != ["random"] or len(tail) < 2:
                continue
            if tail[1] == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "np.random.default_rng() without a seed is "
                        "OS-entropy seeded; pass a seed or use an "
                        "RngRegistry stream",
                    )
            elif tail[1] in self._GLOBAL_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() uses numpy's global RNG; use a seeded "
                    "Generator (RngRegistry stream)",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetIteration(Rule):
    id = "DT004"
    severity = "warning"
    description = "iteration over an unordered set expression"
    example_bad = "for name in {t.name for t in tasks}: ..."
    example_good = "for name in sorted(t.name for t in tasks): ..."

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        module,
                        it,
                        "iterating a set yields hash-seed-dependent order "
                        "that can perturb event scheduling; sort it or use "
                        "a list/dict",
                    )


@register
class AmbientState(Rule):
    """Ambient process state leaking into simulation code.

    Two shapes, both invisible to DT001's call-site check:

    * ``os.environ[...]`` / ``os.environ.get(...)`` / ``os.getenv(...)``
      reads — environment-derived seeds, thresholds or feature flags
      differ between hosts and CI runs, so two "identical" seeded runs
      diverge.  Thread configuration through explicit parameters.
    * *Bare* references to wall-clock functions
      (``clock = time.monotonic``): the clock escapes as a value and is
      called somewhere DT001 cannot see.  Inject a simulated clock
      (``lambda: env.now``) instead.
    """

    id = "DT005"
    severity = "warning"
    description = "ambient state read (os.environ / bare wall-clock ref)"
    example_bad = 'seed = int(os.environ.get("SEED", "0"))'
    example_good = "def run(seed: int): ...  # seed is an explicit argument"

    def check(self, module: Module) -> Iterator[Finding]:
        origins = _imported_names(module)
        call_funcs = {
            id(node.func)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
        }

        def resolve(dotted: str) -> list[str]:
            parts = dotted.split(".")
            return origins.get(parts[0], parts[0]).split(".") + parts[1:]

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if not dotted:
                    continue
                resolved = resolve(dotted)
                if (
                    resolved[:2] == ["os", "getenv"]
                    or resolved[:2] == ["os", "environ"]
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}() reads the process environment; pass "
                        "configuration (seeds especially) as explicit "
                        "arguments",
                    )
            elif isinstance(node, ast.Subscript):
                dotted = _dotted(node.value)
                if dotted and resolve(dotted)[:2] == ["os", "environ"]:
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}[...] reads the process environment; pass "
                        "configuration (seeds especially) as explicit "
                        "arguments",
                    )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                # Bare wall-clock reference outside call position.
                if id(node) in call_funcs:
                    continue
                if isinstance(node, ast.Attribute):
                    if not isinstance(node.ctx, ast.Load):
                        continue
                    dotted = _dotted(node)
                    if not dotted:
                        continue
                    resolved = resolve(dotted)
                    bad = (
                        len(resolved) == 2
                        and resolved[0] == "time"
                        and resolved[1] in _TIME_FUNCS
                    )
                else:
                    if not isinstance(node.ctx, ast.Load):
                        continue
                    dotted = node.id
                    origin = origins.get(node.id, "")
                    bad = (
                        origin.startswith("time.")
                        and origin.split(".")[1] in _TIME_FUNCS
                    )
                if bad:
                    yield self.finding(
                        module,
                        node,
                        f"bare wall-clock reference {dotted} escapes the "
                        "call-site check; inject a simulated clock "
                        "(lambda: env.now) instead",
                    )
