"""Runtime trace validation against the declarative schema + lifecycles.

Where the static rules (:mod:`.trace_rules`) check the *call sites*, this
module checks *recorded runs*: every record's category and payload are
validated against :mod:`.schema`, and each entity's event sequence is
replayed through the state machines in :mod:`.lifecycle`.  Used by
``jets lint-trace RUN.jsonl`` and directly on live
:class:`~repro.simkernel.Trace` objects in tests.

Validation codes:

* **TV001** — unknown trace category.
* **TV002** — payload schema violation (missing/unknown key, not a dict).
* **TV003** — non-monotonic record timestamps.
* **TV004** — illegal lifecycle transition for a job/worker/proxy.
* **TV005** — lifecycle record without its entity id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..simkernel import Trace, TraceRecord
from .lifecycle import MACHINES, StateMachine
from .schema import lookup

__all__ = [
    "TraceIssue",
    "TraceValidator",
    "validate_records",
    "validate_trace",
]


@dataclass(frozen=True)
class TraceIssue:
    """One invalid aspect of a recorded run."""

    index: int
    time: float
    category: str
    code: str
    message: str

    def render(self) -> str:
        return (
            f"record {self.index} @ {self.time:.6f} [{self.category}] "
            f"{self.code}: {self.message}"
        )


class _Replay:
    """Per-entity lifecycle replay for one state machine."""

    def __init__(self, machine: StateMachine):
        self.machine = machine
        self.states: dict[object, str] = {}

    def apply(self, entity: object, event: str) -> Optional[str]:
        """Advance ``entity`` by ``event``; returns a violation message."""
        machine = self.machine
        if event in machine.ignored_events:
            return None
        state = machine.state_for_event(event)
        if state is None:
            # Unknown event suffix — reported as TV001 via the registry.
            return None
        current = self.states.get(entity)
        if machine.can(current, state):
            self.states[entity] = state
            return None
        # Entities may be reincarnated after a terminal state (e.g. the
        # proxies of a resubmitted MPI job attempt reuse their ids), and
        # an entity stuck at an *initial* state may be relaunched (a
        # proxy killed before it ever registered).
        if (
            current is not None
            and state in machine.initial
            and (machine.is_terminal(current) or current in machine.initial)
        ):
            self.states[entity] = state
            return None
        origin = current if current is not None else "<entry>"
        return (
            f"illegal {machine.entity} transition {origin} -> {state} "
            f"for {machine.entity} {entity!r}"
        )


def _entity_id(machine: StateMachine, data) -> object:
    """The replay key for one record (proxies are scoped per job)."""
    if not isinstance(data, dict):
        return None
    ident = data.get(machine.id_key)
    if ident is None:
        return None
    if machine.entity == "proxy":
        return (data.get("job"), ident)
    return ident


class TraceValidator:
    """Incremental trace validation: feed records as they stream.

    The subscriber form of :func:`validate_records`: attach :meth:`feed`
    to a live :class:`~repro.simkernel.TraceSink` (in-RAM or streaming)
    or call it per record while replaying a JSONL dump.  Validation
    state is the per-entity lifecycle replay plus the previous timestamp
    — bounded by entity count, never by record count — so a windowed
    streaming sink gets the exact verdicts a post-hoc full scan would
    produce.
    """

    def __init__(self, check_schema: bool = True, check_lifecycle: bool = True):
        self.check_schema = check_schema
        self.check_lifecycle = check_lifecycle
        self.issues: list[TraceIssue] = []
        self._replays = {prefix: _Replay(m) for prefix, m in MACHINES.items()}
        self._last_time: Optional[float] = None
        self._index = 0

    @property
    def records_seen(self) -> int:
        """How many records have been fed so far."""
        return self._index

    def feed(self, rec: TraceRecord) -> None:
        """Validate one record (subscriber entry point)."""
        index = self._index
        self._index = index + 1
        cat, data = rec.category, rec.data
        issues = self.issues

        def issue(code: str, message: str) -> None:
            issues.append(TraceIssue(index, rec.time, cat, code, message))

        if self._last_time is not None and rec.time < self._last_time:
            issue(
                "TV003",
                f"timestamp {rec.time} precedes previous record "
                f"({self._last_time}); trace is not in event order",
            )
        self._last_time = rec.time

        if self.check_schema:
            spec = lookup(cat)
            if spec is None:
                issue("TV001", f"unknown trace category {cat!r}")
            else:
                for problem in spec.payload_problems(data):
                    issue("TV002", problem)

        if self.check_lifecycle and "." in cat:
            prefix, event = cat.split(".", 1)
            replay = self._replays.get(prefix)
            if replay is None:
                return
            machine = replay.machine
            if event in machine.ignored_events:
                return
            if machine.state_for_event(event) is None:
                return  # unknown event — TV001 covers it
            entity = _entity_id(machine, data)
            if entity is None:
                issue(
                    "TV005",
                    f"lifecycle record lacks its {machine.id_key!r} id key",
                )
                return
            problem = replay.apply(entity, event)
            if problem is not None:
                issue("TV004", problem)


def validate_records(
    records: Iterable[TraceRecord],
    check_schema: bool = True,
    check_lifecycle: bool = True,
) -> list[TraceIssue]:
    """All validation issues for one run's records, in record order."""
    validator = TraceValidator(
        check_schema=check_schema, check_lifecycle=check_lifecycle
    )
    feed = validator.feed
    for rec in records:
        feed(rec)
    return validator.issues


def validate_trace(
    trace: Union[Trace, Iterable[TraceRecord]],
    **kwargs,
) -> list[TraceIssue]:
    """Validate a live trace (or any record iterable)."""
    records = trace.records if isinstance(trace, Trace) else trace
    return validate_records(records, **kwargs)
