"""Bounded schedule exploration for the JETS control plane (``jets explore``).

A miniature systematic-concurrency-testing pass: the same small
dispatcher/worker/mpiexec configuration is executed many times under the
simkernel, each run with a differently seeded
:class:`~repro.simkernel.SeededOrder` permuting the ready-queue order of
simultaneous events — every such permutation is a schedule the real,
asynchronous system could exhibit — and half the schedules additionally
inject a worker kill at a schedule-derived time (the registered-but-not-
ready window, mid-``run_proxy`` wire-up, mid-application, ...).

After every schedule three oracles must hold:

1. the run **drains** (every job completes or permanently fails — no
   lost wakeup or stuck queue under any interleaving),
2. the recorded trace passes the ``lint-trace`` validators (schema +
   lifecycle machines, :mod:`.tracecheck`),
3. the wire traffic captured by a network tap satisfies the per-channel
   protocol session machines and credit/commit rules
   (:func:`.protocol.validate_sessions`).

Schedule 0 (with the default base seed) is the FIFO baseline ordering, so
the explorer always re-validates the historical schedule too.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..simkernel import Environment, SeededOrder
from .protocol import SessionValidator, WireMessage, wire_message
from .tracecheck import TraceValidator

__all__ = [
    "ExploreConfig",
    "ScheduleResult",
    "ExploreReport",
    "run_schedule",
    "explore",
    "wire_messages",
    "explore_main",
]


@dataclass(frozen=True)
class ExploreConfig:
    """Bounds of one exploration campaign.

    The default workload is the CI smoke configuration: 4 single-slot...
    workers on 2-core nodes, a serial/MPI job mix with 2-node MPI jobs,
    so any single injected worker loss always leaves enough capacity to
    drain.
    """

    workers: int = 4
    cores_per_node: int = 2
    serial_tasks: int = 4
    mpi_tasks: int = 2
    mpi_nodes: int = 2
    schedules: int = 200
    seed: int = 0
    heartbeat: float = 0.5
    until: float = 900.0
    max_attempts: int = 6
    #: Inject worker kills on odd schedules.  The sanitizer's race-
    #: confirmation loop turns this off: it compares outcome digests
    #: across schedules, and a kill is a *real* behavioural difference
    #: that would drown the reordering signal it is looking for.
    faults: bool = True


@dataclass
class ScheduleResult:
    """Outcome of one explored schedule."""

    index: int
    seed: int
    killed_worker: Optional[int]
    kill_time: Optional[float]
    drained: bool
    wire_count: int
    problems: list[str] = field(default_factory=list)
    #: Canonical outcome digest (same-timestamp order-insensitive); two
    #: schedules with equal digests were observably equivalent.
    digest: str = ""

    @property
    def ok(self) -> bool:
        return self.drained and not self.problems


@dataclass
class ExploreReport:
    """Everything one exploration campaign produced."""

    config: ExploreConfig
    results: list[ScheduleResult] = field(default_factory=list)

    @property
    def failures(self) -> list[ScheduleResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures


def wire_messages(events) -> list[WireMessage]:
    """Adapt tapped :class:`~repro.netsim.sockets.WireEvent` records to
    protocol :class:`WireMessage` instances (unknown services dropped)."""
    out: list[WireMessage] = []
    for ev in events:
        msg = wire_message(ev)
        if msg is not None:
            out.append(msg)
    return out


def _derive_seed(base: int, index: int) -> int:
    # Schedule 0 keeps the FIFO baseline (SeededOrder(0) is a constant
    # tiebreak); later schedules get well-separated xorshift streams.
    if index == 0 and base == 0:
        return 0
    return (base * 1_000_003 + index) & ((1 << 63) - 1) or 1


def run_schedule(
    config: ExploreConfig, index: int, attach=None
) -> ScheduleResult:
    """Execute and validate one schedule of the smoke configuration.

    ``attach(env, platform)``, when given, is called after the standard
    validators are wired but before any workload starts — the hook the
    sanitizer uses to ride a
    :class:`~repro.analysis.hbmodel.HappensBeforeChecker` (or any other
    observer) along an explored schedule.  Observers must be
    observation-only; the schedule itself is fully determined by
    ``config`` and ``index``.
    """
    # Imported here: the analysis layer stays importable without pulling
    # the whole middleware stack in for the static rules.
    from ..apps.synthetic import BarrierSleepBarrier, SleepProgram
    from ..cluster.machine import generic_cluster
    from ..cluster.platform import Platform
    from ..core.dispatcher import JetsDispatcher, JetsServiceConfig
    from ..core.tasklist import JobSpec
    from ..core.worker import WorkerAgent
    from ..obs.export import CanonicalDigest

    seed = _derive_seed(config.seed, index)
    # Seed 0 is the FIFO baseline: run it on the production calendar-queue
    # engine (no SchedulingOrder installed) instead of the legacy tiebreak
    # heap with a constant tiebreak.  The two engines realize the same
    # FIFO contract, so the schedule-0 digest doubles as a cross-engine
    # equivalence oracle — permuted schedules still install SeededOrder
    # and replay on the 5-tuple heap exactly as before.
    env = Environment() if seed == 0 else Environment(order=SeededOrder(seed))
    platform = Platform(
        generic_cluster(
            nodes=config.workers, cores_per_node=config.cores_per_node
        ),
        env=env,
        seed=seed,
    )
    # Oracles 2 and 3 validate *as the run streams*: the trace validator
    # subscribes to the platform trace and the session validator is the
    # network tap itself, so neither needs the full record/message list
    # retained (the trace sink may window-and-spill underneath them).
    trace_validator = TraceValidator()
    platform.trace.subscribe(trace_validator.feed)
    sessions = SessionValidator()
    platform.network.add_tap(sessions.tap)
    digest = CanonicalDigest()
    platform.trace.subscribe(digest.feed)
    if attach is not None:
        attach(env, platform)

    dispatcher = JetsDispatcher(
        platform,
        JetsServiceConfig(heartbeat_interval=config.heartbeat),
        expected_workers=config.workers,
    )
    dispatcher.start()
    agents = [
        WorkerAgent(
            platform,
            node,
            dispatcher.endpoint,
            heartbeat_interval=config.heartbeat,
            worker_id=i,
        )
        for i, node in enumerate(platform.nodes)
    ]
    for agent in agents:
        agent.start()

    # Explicit job ids: the default JobSpec ids draw from a process-wide
    # counter, which would make the outcome digest depend on how many
    # specs this *process* built before — a schedule must be a pure
    # function of (config, index) for digest comparison to mean anything.
    jobs = []
    for i in range(config.serial_tasks):
        jobs.append(
            JobSpec(
                program=SleepProgram(0.3 + 0.2 * (i % 3)),
                nodes=1,
                mpi=False,
                max_attempts=config.max_attempts,
                job_id=f"job{i}",
            )
        )
    for i in range(config.mpi_tasks):
        jobs.append(
            JobSpec(
                program=BarrierSleepBarrier(0.8),
                nodes=config.mpi_nodes,
                ppn=config.cores_per_node,
                mpi=True,
                max_attempts=config.max_attempts,
                job_id=f"job{config.serial_tasks + i}",
            )
        )
    dispatcher.submit_many(jobs)

    # Odd schedules inject one worker loss at a schedule-derived point:
    # the draw sweeps the kill across the register/ready window, the
    # run_proxy wire-up and the application phase as schedules vary.
    killed_worker: Optional[int] = None
    kill_time: Optional[float] = None
    if config.faults and index % 2 == 1:
        draw = SeededOrder(
            (seed * 0x9E3779B97F4A7C15 + 0x5DEECE66D) & ((1 << 63) - 1) or 1
        )
        for _warm in range(4):  # adjacent seeds need mixing before use
            draw.tiebreak(None)  # type: ignore[arg-type]
        # The window spans register/ready, wire-up and app phases of an
        # unperturbed run (which drains in ~1.6 sim-seconds).
        kill_time = 0.02 + 1.6 * draw.tiebreak(None)  # type: ignore[arg-type]
        victim = int(
            draw.tiebreak(None) * len(agents)  # type: ignore[arg-type]
        ) % len(agents)
        killed_worker = agents[victim].worker_id

        def killer(agent=agents[victim], at=kill_time):
            yield env.timeout(at)
            if agent.alive:
                platform.trace.log(
                    "fault.kill", {"worker": agent.worker_id}
                )
                agent.kill()

        env.process(killer(), name="explore-kill")

    watchdog = env.timeout(config.until)
    env.run(env.any_of([dispatcher.drained, watchdog]))
    drained = dispatcher.drained.triggered
    if drained:
        # Exercise the shutdown path in every schedule, then let the
        # shutdown messages and worker teardown drain.
        env.process(dispatcher.shutdown_workers(), name="explore-shutdown")
        env.run(until=env.now + 10 * config.heartbeat + 1.0)

    result = ScheduleResult(
        index=index,
        seed=seed,
        killed_worker=killed_worker,
        kill_time=kill_time,
        drained=drained,
        wire_count=sessions.seen,
        digest=digest.hexdigest(),
    )
    if not drained:
        result.problems.append(
            f"run did not drain within {config.until} sim-seconds "
            f"({dispatcher.jobs_finished}/{dispatcher.jobs_submitted} jobs)"
        )
    for issue in trace_validator.issues:
        result.problems.append(f"lint-trace: {issue.render()}")
    for problem in sessions.finish():
        result.problems.append(f"protocol: {problem}")
    return result


def explore(config: ExploreConfig, progress=None) -> ExploreReport:
    """Run the whole campaign; ``progress`` is called per schedule."""
    report = ExploreReport(config=config)
    for index in range(config.schedules):
        result = run_schedule(config, index)
        report.results.append(result)
        if progress is not None:
            progress(result)
    return report


def explore_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets explore`` — exit 0 if every schedule passed, 1 otherwise."""
    parser = argparse.ArgumentParser(
        prog="jets explore",
        description=(
            "Systematically permute event schedules (and inject worker "
            "loss) on a small JETS configuration, validating drain, "
            "trace and wire-protocol conformance after every schedule."
        ),
    )
    parser.add_argument(
        "--schedules", type=int, default=200,
        help="number of distinct schedules to run (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; schedule 0 of seed 0 is the FIFO baseline",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker (node) count of the smoke configuration",
    )
    parser.add_argument(
        "--serial-tasks", type=int, default=4,
        help="serial jobs in the workload mix",
    )
    parser.add_argument(
        "--mpi-tasks", type=int, default=2,
        help="MPI jobs in the workload mix",
    )
    parser.add_argument(
        "--mpi-nodes", type=int, default=2,
        help="nodes per MPI job (keep below --workers so kills drain)",
    )
    parser.add_argument(
        "--until", type=float, default=900.0,
        help="per-schedule drain watchdog, in sim-seconds",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print one line per schedule",
    )
    args = parser.parse_args(argv)

    config = ExploreConfig(
        workers=args.workers,
        serial_tasks=args.serial_tasks,
        mpi_tasks=args.mpi_tasks,
        mpi_nodes=args.mpi_nodes,
        schedules=args.schedules,
        seed=args.seed,
        until=args.until,
    )
    if config.mpi_tasks and config.mpi_nodes >= config.workers:
        print(
            "jets explore: --mpi-nodes must stay below --workers or an "
            "injected kill can never drain",
            file=sys.stderr,
        )
        return 2

    def progress(result: ScheduleResult) -> None:
        if args.verbose or not result.ok:
            kill = (
                f" kill=w{result.killed_worker}@{result.kill_time:.3f}"
                if result.killed_worker is not None
                else ""
            )
            status = "ok" if result.ok else "FAIL"
            print(
                f"schedule {result.index:4d} seed={result.seed}{kill} "
                f"wire={result.wire_count} {status}"
            )
            for problem in result.problems[:10]:
                print(f"    {problem}")

    report = explore(config, progress)
    failed = len(report.failures)
    kills = sum(
        1 for r in report.results if r.killed_worker is not None
    )
    print(
        f"jets explore: {len(report.results)} schedules "
        f"({kills} with injected worker loss) — "
        + ("all passed" if report.ok else f"{failed} FAILED")
    )
    return 0 if report.ok else 1
