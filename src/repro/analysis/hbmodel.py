"""Dynamic happens-before model: vector clocks over the live trace.

The static HB/RS rules (:mod:`.race_rules`) reason about source text;
this module watches an actual run.  :class:`HappensBeforeChecker` is a
streaming :class:`~repro.simkernel.monitor.TraceSink` subscriber that
rebuilds the run's causal order from three edge sources:

* **schedule chains** — the kernel's event-provenance hook
  (:meth:`repro.simkernel.core.Environment.set_provenance`) reports, for
  every scheduled event, the event whose callback delivery scheduled it.
  Following those edges gives "A's callback started B, so everything B
  does is after everything A did first".  Store handoffs ride on this
  for free: a ``Store.put`` that un-blocks a pending ``get`` schedules
  the getter's event from inside the putter's delivery.
* **wire messages** — every :meth:`Socket.send` observed through
  :meth:`Network.add_tap` is an access to its connection, so send and
  receive sides of one conversation are chained through the conn entity.
* **program order** — two records logged during the same callback
  delivery are ordered by the code that logged them.

Against that order the checker runs a Djit+-style last-access check per
*entity* (job, worker, proxy, node, counter, conn — whatever the record
payload names): a new access whose chain clock has not seen the entity's
previous access, at the *same simulated timestamp*, is a race candidate
— two touches of one entity that the schedule, not the program, ordered.
Same-entity accesses at different timestamps are ordered by time and
never reported.

Vector clocks are keyed by entity (a bounded population) rather than by
event (unbounded), so memory stays proportional to the number of live
entities plus pending events.  Chain clocks are shared copy-on-write:
scheduling an event aliases the cause's clock; only an actual entity
access copies it.

Candidates are *suspicions*, not verdicts: ``jets sanitize`` feeds them
to the schedule explorer, re-runs the workload under permuted
same-timestamp orders, and compares canonical outcome digests to split
benign races (any order, same outcome) from outcome-changing ones.

:func:`seeded_race_demo` builds the reference workload for that loop —
a deliberate last-writer-wins race whose final observable value depends
on which same-time writer the scheduler delivers second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..simkernel.core import Environment, SchedulingOrder
from ..simkernel.monitor import Trace, TraceRecord

__all__ = ["RaceCandidate", "HappensBeforeChecker", "seeded_race_demo"]

#: Payload keys that name an entity, and the entity family they imply.
_ENTITY_FIELDS = (
    ("job", "job"),
    ("worker", "worker"),
    ("proxy", "proxy"),
    ("node", "node"),
    ("counter", "counter"),
)

_EMPTY: dict = {}


@dataclass
class RaceCandidate:
    """One unordered same-timestamp access pair, aggregated.

    Candidates are deduplicated by ``(family, prior, access)`` — the
    entity family plus the two trace categories involved — since one
    root cause typically fires once per job/worker.  ``count`` is the
    number of concrete pairs folded in; ``entity``/``time`` describe the
    first one seen.
    """

    family: str
    entity: str
    time: float
    prior: str
    access: str
    count: int = 1

    def key(self) -> tuple:
        return (self.family, self.prior, self.access)

    def render(self) -> str:
        suffix = f" (x{self.count})" if self.count > 1 else ""
        return (
            f"t={self.time:g} {self.family}={self.entity}: "
            f"'{self.prior}' and '{self.access}' are unordered{suffix}"
        )


class HappensBeforeChecker:
    """Streaming race-candidate detector (subscribe it to a trace).

    Typical use::

        checker = HappensBeforeChecker(env)
        checker.attach(trace, network)   # provenance + subscriber + tap
        env.run()
        for cand in checker.finish():
            print(cand.render())

    The checker is observation-only: it never logs, schedules, or
    perturbs event order (the provenance hook fires after the heap
    insertion it describes).
    """

    def __init__(self, env: Environment, max_nodes: int = 200_000):
        self.env = env
        #: id(event) -> chain vector clock (entity key -> access count).
        self._node_vc: dict[int, dict] = {}
        self._root_vc: dict = {}
        #: entity key -> [access count, last time, last category].
        self._entities: dict[tuple, list] = {}
        self._candidates: dict[tuple, RaceCandidate] = {}
        self.records = 0
        self.max_nodes = max_nodes
        self._trace: Optional[Trace] = None
        self._network = None

    # -- wiring ------------------------------------------------------------

    def attach(self, trace, network=None) -> "HappensBeforeChecker":
        """Install the provenance hook, trace subscription and wire tap."""
        self.env.set_provenance(self._on_schedule)
        trace.subscribe(self.feed)
        self._trace = trace
        if network is not None:
            network.add_tap(self.tap)
            self._network = network
        return self

    def detach(self) -> None:
        """Undo :meth:`attach` (safe to call once, idempotent-ish)."""
        self.env.set_provenance(None)
        if self._trace is not None:
            self._trace.unsubscribe(self.feed)
            self._trace = None
        if self._network is not None:
            try:
                self._network._taps.remove(self.tap)
            except ValueError:
                pass
            self._network = None

    # -- causal edges ------------------------------------------------------

    def _on_schedule(self, cause, event, when) -> None:
        """Provenance hook: ``event`` inherits ``cause``'s chain clock.

        The clock dict is aliased, not copied — :meth:`feed` copies on
        write.  Overwriting on (re)schedule also makes ``id()`` reuse
        after garbage collection harmless: a recycled id is re-bound
        here before it can ever be looked up as a cause.
        """
        node_vc = self._node_vc
        if cause is not None:
            node_vc[id(event)] = node_vc.get(id(cause), _EMPTY)
        else:
            node_vc[id(event)] = self._root_vc
        if len(node_vc) > self.max_nodes:
            items = list(node_vc.items())
            self._node_vc = dict(items[len(items) // 2:])

    # -- accesses ----------------------------------------------------------

    def feed(self, rec: TraceRecord) -> None:
        """Trace subscriber: each record is an access to its entities."""
        self.records += 1
        data = rec.data
        if type(data) is not dict:
            return
        keys = [
            (family, str(data[fld]))
            for fld, family in _ENTITY_FIELDS
            if fld in data
        ]
        if keys:
            self._access(keys, rec.time, rec.category)

    def tap(self, ev) -> None:
        """Network tap: a send is an access to its connection."""
        self._access(
            [("conn", str(ev.conn_id))], ev.time, f"wire.{ev.service}"
        )

    def _access(self, keys: list, time: float, tag: str) -> None:
        cause = self.env._cause
        if cause is not None:
            cid = id(cause)
            vc = self._node_vc.get(cid, _EMPTY)
        else:
            cid = None
            vc = self._root_vc
        updated: Optional[dict] = None
        entities = self._entities
        for key in keys:
            ent = entities.get(key)
            if ent is None:
                ent = entities[key] = [0, None, None]
            count, last_time, last_tag = ent
            if count and time == last_time and vc.get(key, 0) < count:
                self._report(key, time, last_tag, tag)
            if updated is None:
                updated = dict(vc)
            ent[0] = count + 1
            ent[1] = time
            ent[2] = tag
            updated[key] = ent[0]
            vc = updated
        if updated is not None:
            if cid is not None:
                self._node_vc[cid] = updated
            else:
                self._root_vc = updated

    def _report(self, key: tuple, time: float, prior, tag: str) -> None:
        cand = RaceCandidate(
            family=key[0],
            entity=key[1],
            time=time,
            prior=prior or "<start>",
            access=tag,
        )
        existing = self._candidates.get(cand.key())
        if existing is not None:
            existing.count += 1
        else:
            self._candidates[cand.key()] = cand

    # -- results -----------------------------------------------------------

    def finish(self) -> list[RaceCandidate]:
        """All candidates, most-seen first (then by first timestamp)."""
        return sorted(
            self._candidates.values(),
            key=lambda c: (-c.count, c.time, c.key()),
        )


# -- reference racy workload ---------------------------------------------------


def _race_writer(env: Environment, trace: Trace, shared: dict, value: int):
    """Write the shared cell at t=1.0 (both writers tie on the clock)."""
    yield env.timeout(1.0)
    # Deliberate last-writer-wins race: no ordering edge between the two
    # writers, so the surviving value is the scheduler's choice.
    shared["x"] = value
    trace.log("counter.shared", {"counter": "shared", "value": value})


def _race_reader(env: Environment, trace: Trace, shared: dict):
    """Observe the surviving value strictly after the writers."""
    yield env.timeout(2.0)
    trace.log(
        "counter.final", {"counter": "final", "value": shared.get("x")}
    )


def seeded_race_demo(
    order: Optional[SchedulingOrder] = None,
    checker: bool = False,
    until: float = 10.0,
) -> tuple[Environment, Trace, Optional[HappensBeforeChecker]]:
    """Run the reference race workload; returns (env, trace, checker).

    Two writers store into one shared cell at the same simulated instant
    and a reader logs the survivor afterwards.  Under the FIFO baseline
    the second-submitted writer wins; a permuted schedule can flip that,
    changing the ``counter.final`` record — an *outcome-changing* race,
    which is exactly what the sanitizer's explore-confirmation loop must
    classify it as.  With ``checker=True`` a
    :class:`HappensBeforeChecker` rides along and will flag the
    same-timestamp ``counter.shared`` pair.
    """
    env = Environment(order=order)
    trace = Trace(env)
    hb = HappensBeforeChecker(env).attach(trace) if checker else None
    shared: dict = {}
    env.process(_race_writer(env, trace, shared, 1))
    env.process(_race_writer(env, trace, shared, 2))
    env.process(_race_reader(env, trace, shared))
    env.run(until=until)
    return env, trace, hb
