"""Static wire-protocol conformance rules (PR001–PR006).

These rules extract every protocol send site — a ``sock.send((kind,
...), nbytes)`` call whose first argument is a tuple — and every handle
site — a comparison of a message kind (``kind == ...``, ``msg.payload[0]
in (...)``) or a kind-guarded ``... = msg.payload`` destructuring — and
check them against the declarative registry in :mod:`.protocol`:

* **PR001** — message kind undeclared in the protocol registry.
* **PR002** — payload arity disagrees with the registry (sender tuple or
  receiver destructuring).
* **PR003** — kind sent on a channel but never handled by the receiving
  side (project-wide).
* **PR004** — kind handled but never sent (dead protocol arm,
  project-wide).
* **PR005** — send size not routed through :func:`.protocol.wire_size`
  (the ``ctrl_msg_bytes`` discipline), or computed for a different kind
  than the one being sent.
* **PR006** — raw string kind at a call site; registry constants keep
  senders and receivers spelling-consistent (the aggregator f-string bug
  class).

Kind extraction is intentionally conservative: only tuple-literal send
heads and comparisons against ``kind`` variables / ``*.payload[0]``
subscripts are considered, and PR001/PR006 only fire in modules that
exhibit protocol traffic (a tuple-head send or a ``.payload`` access), so
unrelated string comparisons elsewhere in the tree are never flagged.

PR003/PR004 are *project* rules: for each channel they only judge a lint
set that contains **all** of the channel's declared role modules
(:data:`.protocol.ROLE_MODULES`); a partial set (a single file passed to
``jets lint``) is never a closed world.  Modules outside any role set —
the seeded test fixtures — are judged standalone when they model both
sides (contain sends *and* handle sites).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from .framework import Finding, Module, ProjectRule, Rule, register
from .protocol import (
    CHANNELS,
    KIND_CONSTANTS,
    ROLE_MODULES,
    known_kind,
    lookup_kind,
    lookup_message,
)

__all__ = [
    "KindRef",
    "SendSite",
    "HandleSite",
    "protocol_sends",
    "handle_sites",
    "payload_unpacks",
    "is_protocol_module",
]

#: Channel-constant names resolvable in ``wire_size`` channel arguments.
_CHANNEL_CONSTANTS = {"CHANNEL_JETS": "jets", "CHANNEL_HYDRA": "hydra"}


@dataclass(frozen=True)
class KindRef:
    """One resolved message-kind literal/constant at a call site."""

    value: str
    raw: bool  # True: spelled as a string literal, not a constant
    node: ast.AST


def _kind_refs(node: ast.AST) -> Optional[list[KindRef]]:
    """Resolve an expression to the kinds it can denote.

    Handles string literals, registry-constant references (``READY`` /
    ``wire.READY``) and conditional expressions over both.  Returns None
    when the expression is not statically resolvable.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [KindRef(node.value, True, node)]
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and name in KIND_CONSTANTS:
        return [KindRef(KIND_CONSTANTS[name], False, node)]
    if isinstance(node, ast.IfExp):
        body = _kind_refs(node.body)
        orelse = _kind_refs(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


@dataclass(slots=True)
class SendSite:
    """One ``sock.send((kind, ...), nbytes)`` call."""

    call: ast.Call
    refs: list[KindRef]
    arity: Optional[int]  # None: starred elements, arity unknown
    size: Optional[ast.AST]  # the nbytes argument, if present


@dataclass
class HandleSite:
    """One comparison of a message kind against literal kinds."""

    node: ast.AST
    refs: list[KindRef]
    op: ast.cmpop


def _is_kindish(node: ast.AST) -> bool:
    """Whether an expression denotes an inbound message kind.

    Recognized: a variable named ``kind`` and ``<expr>.payload[0]``.
    """
    if isinstance(node, ast.Name) and node.id == "kind":
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "payload"
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == 0
    ):
        return True
    return False


def _compare_refs(node: ast.Compare) -> Optional[HandleSite]:
    """Extract a kind comparison from one Compare node, if it is one."""
    if len(node.ops) != 1 or len(node.comparators) != 1:
        return None
    op = node.ops[0]
    if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
        return None
    left, right = node.left, node.comparators[0]
    if _is_kindish(left):
        other = right
    elif _is_kindish(right):
        other = left
    else:
        return None
    if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
        other, (ast.Tuple, ast.List, ast.Set)
    ):
        refs: list[KindRef] = []
        for elt in other.elts:
            sub = _kind_refs(elt)
            if sub is None:
                return None
            refs.extend(sub)
        return HandleSite(node, refs, op)
    refs = _kind_refs(other)
    if refs is None:
        return None
    return HandleSite(node, refs, op)


def protocol_sends(module: Module) -> list[SendSite]:
    """All protocol send sites in one module."""
    sites: list[SendSite] = []
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and node.args
            and isinstance(node.args[0], ast.Tuple)
            and node.args[0].elts
        ):
            continue
        tup = node.args[0]
        refs = _kind_refs(tup.elts[0])
        if refs is None:
            continue
        arity: Optional[int] = len(tup.elts)
        if any(isinstance(e, ast.Starred) for e in tup.elts):
            arity = None
        size = node.args[1] if len(node.args) > 1 else None
        if size is None:
            for kw in node.keywords:
                if kw.arg == "nbytes":
                    size = kw.value
        sites.append(SendSite(node, refs, arity, size))
    return sites


def handle_sites(module: Module) -> list[HandleSite]:
    """All kind-comparison sites in one module."""
    sites: list[HandleSite] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Compare):
            site = _compare_refs(node)
            if site is not None:
                sites.append(site)
    return sites


def is_protocol_module(module: Module) -> bool:
    """Whether a module exhibits protocol traffic at all.

    Gates PR001/PR006 comparison checks so ``kind == "MPI"`` style string
    dispatch in unrelated modules is never mistaken for wire traffic.
    """
    if protocol_sends(module):
        return True
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr == "payload":
            return True
    return False


def _is_payload_expr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "payload") or (
        isinstance(node, ast.Name) and node.id == "payload"
    )


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@dataclass
class Unpack:
    """One kind-guarded ``a, b, ... = msg.payload`` destructuring."""

    node: ast.Assign
    kinds: frozenset[str]
    arity: int


def payload_unpacks(module: Module) -> list[Unpack]:
    """Kind-guarded payload destructurings, with the guarding kinds.

    Understands both branch guards (``if kind == K: _, a = msg.payload``)
    and early-exit guards (``if kind != K: return`` followed by the
    unpack in the same block).
    """
    unpacks: list[Unpack] = []

    def scan_stmt(stmt: ast.stmt, kinds: Optional[frozenset[str]]) -> None:
        if isinstance(stmt, ast.Assign) and kinds:
            if (
                len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Tuple)
                and _is_payload_expr(stmt.value)
                and not any(
                    isinstance(t, ast.Starred)
                    for t in stmt.targets[0].elts
                )
            ):
                unpacks.append(
                    Unpack(stmt, kinds, len(stmt.targets[0].elts))
                )
            return
        for block in _blocks_of(stmt):
            guarded = kinds
            if isinstance(stmt, ast.If) and block is stmt.body:
                site = (
                    _compare_refs(stmt.test)
                    if isinstance(stmt.test, ast.Compare)
                    else None
                )
                if site is not None and isinstance(site.op, (ast.Eq, ast.In)):
                    guarded = frozenset(r.value for r in site.refs)
            scan_block(block, guarded)

    def scan_block(
        stmts: Sequence[ast.stmt], kinds: Optional[frozenset[str]]
    ) -> None:
        active = kinds
        for stmt in stmts:
            scan_stmt(stmt, active)
            # Early-exit guard: `if kind != K: ...return` narrows the rest
            # of this block to K.
            if isinstance(stmt, ast.If) and isinstance(stmt.test, ast.Compare):
                site = _compare_refs(stmt.test)
                if (
                    site is not None
                    and isinstance(site.op, (ast.NotEq, ast.NotIn))
                    and _terminates(stmt.body)
                    and not stmt.orelse
                ):
                    active = frozenset(r.value for r in site.refs)

    def _blocks_of(stmt: ast.stmt) -> list[Sequence[ast.stmt]]:
        blocks = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block and isinstance(block[0], ast.stmt):
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    scan_block(module.tree.body, None)
    return unpacks


@register
class UnknownKind(Rule):
    id = "PR001"
    severity = "error"
    description = (
        "Message kind at a protocol call site is not declared in the "
        "protocol registry"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if not is_protocol_module(module):
            return
        seen: set[int] = set()
        for refs in _all_refs(module):
            for ref in refs:
                if not known_kind(ref.value) and id(ref.node) not in seen:
                    seen.add(id(ref.node))
                    yield self.finding(
                        module,
                        ref.node,
                        f"unknown message kind {ref.value!r}; declared "
                        "kinds live in repro.analysis.protocol",
                    )


@register
class ArityMismatch(Rule):
    id = "PR002"
    severity = "error"
    description = (
        "Payload arity at a send or destructuring site disagrees with "
        "the protocol registry"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for site in protocol_sends(module):
            if site.arity is None:
                continue
            for ref in site.refs:
                specs = lookup_kind(ref.value)
                if specs and site.arity not in {s.arity for s in specs}:
                    declared = " or ".join(
                        str(s.arity) for s in specs
                    )
                    yield self.finding(
                        module,
                        site.call,
                        f"{ref.value!r} sent with {site.arity} payload "
                        f"elements; the registry declares {declared}",
                    )
        for unpack in payload_unpacks(module):
            specs = [s for k in unpack.kinds for s in lookup_kind(k)]
            if specs and unpack.arity not in {s.arity for s in specs}:
                kinds = "/".join(sorted(unpack.kinds))
                declared = " or ".join(
                    sorted({str(s.arity) for s in specs})
                )
                yield self.finding(
                    module,
                    unpack.node,
                    f"payload of {kinds} destructured into {unpack.arity} "
                    f"names; the registry declares {declared}",
                )


def _all_refs(module: Module) -> Iterator[list[KindRef]]:
    for send in protocol_sends(module):
        yield send.refs
    for handle in handle_sites(module):
        yield handle.refs


def _module_kinds(module: Module) -> tuple[dict[str, ast.AST], dict[str, ast.AST]]:
    """(sent kinds, handled kinds) of one module, with an anchor node each."""
    sent: dict[str, ast.AST] = {}
    handled: dict[str, ast.AST] = {}
    for send in protocol_sends(module):
        for ref in send.refs:
            sent.setdefault(ref.value, send.call)
    for handle in handle_sites(module):
        for ref in handle.refs:
            handled.setdefault(ref.value, handle.node)
    return sent, handled


def _channel_worlds(
    modules: Sequence[Module],
) -> Iterator[tuple[str, list[Module]]]:
    """Closed worlds to judge: complete channels, then standalone modules."""
    normalized = {
        m.path.replace("\\", "/"): m for m in modules
    }
    claimed: set[str] = set()
    for channel, suffixes in sorted(ROLE_MODULES.items()):
        members = []
        for suffix in suffixes:
            for path, module in normalized.items():
                if path.endswith(suffix):
                    # A role module is claimed even when its channel's
                    # world turns out incomplete: one endpoint of a
                    # two-sided channel must never be judged standalone.
                    claimed.add(module.path)
                    members.append(module)
                    break
        if len(members) == len(suffixes):
            yield channel, members
    for module in modules:
        if module.path in claimed:
            continue
        sent, handled = _module_kinds(module)
        if sent and handled:
            yield "", [module]


def _world_kinds(
    channel: str, members: Sequence[Module]
) -> tuple[dict[str, tuple[Module, ast.AST]], dict[str, tuple[Module, ast.AST]]]:
    sent: dict[str, tuple[Module, ast.AST]] = {}
    handled: dict[str, tuple[Module, ast.AST]] = {}
    for module in members:
        m_sent, m_handled = _module_kinds(module)
        for kind, node in m_sent.items():
            sent.setdefault(kind, (module, node))
        for kind, node in m_handled.items():
            handled.setdefault(kind, (module, node))
    if channel:
        # Internal queue marks are handled in the mpiexec ladder but are
        # never (legally) sent on the wire: exempt from both directions.
        internal = {
            k for k, s in CHANNELS[channel].items() if s.internal
        }
        sent = {k: v for k, v in sent.items() if k not in internal}
        handled = {k: v for k, v in handled.items() if k not in internal}
    return sent, handled


@register
class SentNeverHandled(ProjectRule):
    id = "PR003"
    severity = "error"
    description = (
        "Message kind is sent on a channel but no receiving module "
        "handles it"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        for channel, members in _channel_worlds(modules):
            sent, handled = _world_kinds(channel, members)
            for kind, (module, node) in sorted(sent.items()):
                if kind not in handled:
                    where = channel or "this module"
                    yield self.finding(
                        module,
                        node,
                        f"kind {kind!r} is sent but never handled by any "
                        f"receiver in {where}",
                    )


@register
class HandledNeverSent(ProjectRule):
    id = "PR004"
    severity = "warning"
    description = (
        "Message kind is handled by a receiver but no module ever "
        "sends it (dead protocol arm)"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        for channel, members in _channel_worlds(modules):
            sent, handled = _world_kinds(channel, members)
            for kind, (module, node) in sorted(handled.items()):
                if kind not in sent:
                    where = channel or "this module"
                    yield self.finding(
                        module,
                        node,
                        f"kind {kind!r} is handled but never sent in "
                        f"{where} (dead protocol arm)",
                    )


def _wire_size_call(node: ast.AST) -> Optional[ast.Call]:
    """The node as a ``wire_size(...)`` call, if it is one."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return node if name == "wire_size" else None


@register
class SizeDiscipline(Rule):
    id = "PR005"
    severity = "error"
    description = (
        "Protocol send size must be computed by protocol.wire_size for "
        "the kind being sent"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for site in protocol_sends(module):
            kinds = {r.value for r in site.refs}
            if not any(known_kind(k) for k in kinds):
                continue  # unknown vocabulary: PR001's problem
            if site.size is None:
                yield self.finding(
                    module,
                    site.call,
                    "protocol send without an explicit size; compute it "
                    "with protocol.wire_size(...)",
                )
                continue
            call = _wire_size_call(site.size)
            if call is None:
                yield self.finding(
                    module,
                    site.size,
                    "send size is not routed through protocol.wire_size; "
                    "hard-coded byte counts drift from the registry",
                )
                continue
            if len(call.args) < 2:
                yield self.finding(
                    module,
                    call,
                    "wire_size call needs (channel, kind) arguments",
                )
                continue
            size_refs = _kind_refs(call.args[1])
            if size_refs is not None:
                size_kinds = {r.value for r in size_refs}
                if size_kinds != kinds:
                    yield self.finding(
                        module,
                        call,
                        f"wire_size computes the size of "
                        f"{sorted(size_kinds)} but the send ships "
                        f"{sorted(kinds)}",
                    )
                    continue
            channel_arg = call.args[0]
            channel = None
            if isinstance(channel_arg, ast.Constant) and isinstance(
                channel_arg.value, str
            ):
                channel = channel_arg.value
            else:
                name = None
                if isinstance(channel_arg, ast.Name):
                    name = channel_arg.id
                elif isinstance(channel_arg, ast.Attribute):
                    name = channel_arg.attr
                channel = _CHANNEL_CONSTANTS.get(name or "")
            if channel is not None:
                for kind in sorted(kinds):
                    if (
                        known_kind(kind)
                        and lookup_message(channel, kind) is None
                    ):
                        yield self.finding(
                            module,
                            call,
                            f"kind {kind!r} is not declared on channel "
                            f"{channel!r}",
                        )


@register
class StringlyTypedKind(Rule):
    id = "PR006"
    severity = "error"
    description = (
        "Raw string message kind at a protocol call site; use the "
        "registry constants from repro.analysis.protocol"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if not is_protocol_module(module):
            return
        seen: set[int] = set()
        for refs in _all_refs(module):
            for ref in refs:
                if (
                    ref.raw
                    and known_kind(ref.value)
                    and id(ref.node) not in seen
                ):
                    seen.add(id(ref.node))
                    constant = next(
                        name
                        for name, value in KIND_CONSTANTS.items()
                        if value == ref.value
                    )
                    yield self.finding(
                        module,
                        ref.node,
                        f"raw string kind {ref.value!r}; use "
                        f"protocol.{constant} so senders and receivers "
                        "cannot drift apart",
                    )
