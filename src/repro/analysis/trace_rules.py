"""Static checks of ``trace.log(...)`` call sites against the registry.

Rules:

* **TR001** — unknown trace category (typo or undeclared).
* **TR002** — payload dict is missing a key the category requires.
* **TR003** — payload dict carries a key the category does not declare.
* **TR004** — dynamic category expression (f-string, variable, ``%``/
  ``+`` formatting) that can escape the registry.  A conditional between
  two literal categories (``"job.done" if ok else "job.failed"``) is
  allowed — each branch is checked instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from . import schema
from .framework import Finding, Module, Rule, register

__all__ = [
    "UnknownCategory",
    "MissingPayloadKey",
    "UnknownPayloadKey",
    "DynamicCategory",
    "trace_log_calls",
]


def _receiver_chain(node: ast.expr) -> list[str]:
    """Dotted name parts of an attribute chain (empty if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def trace_log_calls(module: Module) -> Iterator[ast.Call]:
    """Every ``<...>.trace.log(...)`` / ``trace.log(...)`` call in a module."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "log"):
            continue
        chain = _receiver_chain(func.value)
        if chain and chain[-1].lstrip("_").endswith("trace"):
            yield node


def _literal_categories(node: ast.expr) -> Optional[list[tuple[ast.expr, str]]]:
    """Resolve a category expression to literal strings, or None if dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node, node.value)]
    if isinstance(node, ast.IfExp):
        body = _literal_categories(node.body)
        orelse = _literal_categories(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


def _payload_dict(call: ast.Call) -> Optional[ast.Dict]:
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Dict):
        return call.args[1]
    return None


def _literal_keys(payload: ast.Dict) -> Optional[list[str]]:
    """All payload keys if they are string literals (None on **spread)."""
    keys: list[str] = []
    for key in payload.keys:
        if key is None:  # **expansion — unknowable statically
            return None
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return keys


@register
class UnknownCategory(Rule):
    id = "TR001"
    severity = "error"
    description = "trace category is not declared in the schema registry"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in trace_log_calls(module):
            if not call.args:
                continue
            literals = _literal_categories(call.args[0])
            if literals is None:
                continue  # TR004's business
            for node, category in literals:
                if not schema.known_category(category):
                    yield self.finding(
                        module,
                        node,
                        f"unknown trace category {category!r} "
                        "(declare it in repro.analysis.schema)",
                    )


@register
class MissingPayloadKey(Rule):
    id = "TR002"
    severity = "error"
    description = "trace payload is missing a required key"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in trace_log_calls(module):
            yield from _payload_key_findings(self, module, call, missing=True)


@register
class UnknownPayloadKey(Rule):
    id = "TR003"
    severity = "warning"
    description = "trace payload carries an undeclared key"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in trace_log_calls(module):
            yield from _payload_key_findings(self, module, call, missing=False)


def _payload_key_findings(
    rule: Rule, module: Module, call: ast.Call, missing: bool
) -> Iterator[Finding]:
    if not call.args:
        return
    literals = _literal_categories(call.args[0])
    if literals is None:
        return  # dynamic category — TR004's business
    specs = [schema.lookup(c) for _, c in literals]
    if any(s is None for s in specs):
        return  # unknown category — TR001 already fired
    # Branched categories (done/failed) are checkable when every branch
    # declares the same key set.
    if len({(s.required, s.optional) for s in specs}) != 1:
        return
    spec = specs[0]
    payload = _payload_dict(call)
    if payload is None:
        if missing and spec.required and len(call.args) < 2:
            yield rule.finding(
                module,
                call,
                f"category {spec.name!r} requires payload keys "
                f"{sorted(spec.required)} but no payload is passed",
            )
        return
    keys = _literal_keys(payload)
    if keys is None:
        return
    if missing:
        for key in sorted(spec.required - set(keys)):
            yield rule.finding(
                module,
                payload,
                f"payload for {spec.name!r} is missing required key {key!r}",
            )
    else:
        for key in keys:
            if key not in spec.keys:
                yield rule.finding(
                    module,
                    payload,
                    f"payload for {spec.name!r} carries undeclared key "
                    f"{key!r}",
                )


@register
class DynamicCategory(Rule):
    id = "TR004"
    severity = "error"
    description = "dynamic trace category escapes the schema registry"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in trace_log_calls(module):
            if not call.args:
                continue
            if _literal_categories(call.args[0]) is None:
                yield self.finding(
                    module,
                    call.args[0],
                    "trace category is built dynamically; log through a "
                    "registry constant from repro.analysis.schema instead",
                )
