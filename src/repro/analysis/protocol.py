"""Declarative wire-protocol registry for the JETS control plane.

JETS correctness hinges on a three-party message protocol (paper Fig. 4):
pilot workers ``register``/``ready`` with the dispatcher, which ships
``run_task``/``run_proxy``/``shutdown`` back; Hydra proxies ``register``
with their ``mpiexec``, which drives ``start``/``commit``/``abort`` and
collects ``pmi_put``/``exit``.  Until now that protocol existed only
implicitly as string-tuple ``socket.send((...))`` sites and ``kind ==``
ladders.  This module is the single source of truth:

* every message **kind** (exported as a constant so call sites never
  spell raw strings — see rule PR006),
* its **payload shape** (field names; arity is checked statically by
  PR002 and at runtime by :func:`validate_sessions`),
* its **direction** on its channel (worker→dispatcher, dispatcher→worker,
  proxy→mpiexec, mpiexec→proxy),
* its **wire size** discipline (:func:`wire_size` — fixed bytes or
  derived from the owning config's ``ctrl_msg_bytes``, rule PR005),
* a per-channel **session state machine** in the style of
  :mod:`.lifecycle` (``register`` before ``ready`` before ``run_*``;
  ``commit`` only after every proxy registered), replayed over recorded
  wire traffic by :func:`validate_sessions` and the bounded schedule
  explorer (:mod:`.explore`).

The static rules live in :mod:`.protocol_rules` (PR001–PR006).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .lifecycle import StateMachine

__all__ = [
    "MessageSpec",
    "WireMessage",
    "CHANNEL_JETS",
    "CHANNEL_HYDRA",
    "CHANNELS",
    "KIND_CONSTANTS",
    "ROLE_MODULES",
    "JETS_SESSION",
    "HYDRA_SESSION",
    "SESSION_MACHINES",
    "lookup_kind",
    "lookup_message",
    "known_kind",
    "wire_size",
    "channel_for_service",
    "wire_message",
    "SessionValidator",
    "validate_sessions",
    # message-kind constants (use these at call sites, never raw strings)
    "REGISTER",
    "READY",
    "READY_ALL",
    "HEARTBEAT",
    "DONE",
    "RUN_TASK",
    "RUN_PROXY",
    "CANCEL",
    "SHUTDOWN",
    "START",
    "PMI_PUT",
    "COMMIT",
    "EXIT",
    "ABORT",
    "CLOSED",
    "EXTERNAL_ABORT",
    "PROTOCOL_ERROR",
]

# -- channels ------------------------------------------------------------------

#: Worker agent ⇄ JETS dispatcher (service ``"jets"``).
CHANNEL_JETS = "jets"
#: Hydra proxy ⇄ background mpiexec (services ``"mpiexec-*"``).
CHANNEL_HYDRA = "hydra"

# -- message kinds -------------------------------------------------------------

REGISTER = "register"
READY = "ready"
READY_ALL = "ready_all"
HEARTBEAT = "heartbeat"
DONE = "done"
RUN_TASK = "run_task"
RUN_PROXY = "run_proxy"
CANCEL = "cancel"
SHUTDOWN = "shutdown"
START = "start"
PMI_PUT = "pmi_put"
COMMIT = "commit"
EXIT = "exit"
ABORT = "abort"
#: Internal mpiexec queue marks — never legal on the wire.
CLOSED = "closed"
EXTERNAL_ABORT = "external_abort"
PROTOCOL_ERROR = "protocol_error"

#: Constant name -> kind value; :mod:`.protocol_rules` resolves references
#: to these names at call sites (PR006 demands them over raw strings).
KIND_CONSTANTS: dict[str, str] = {
    "REGISTER": REGISTER,
    "READY": READY,
    "READY_ALL": READY_ALL,
    "HEARTBEAT": HEARTBEAT,
    "DONE": DONE,
    "RUN_TASK": RUN_TASK,
    "RUN_PROXY": RUN_PROXY,
    "CANCEL": CANCEL,
    "SHUTDOWN": SHUTDOWN,
    "START": START,
    "PMI_PUT": PMI_PUT,
    "COMMIT": COMMIT,
    "EXIT": EXIT,
    "ABORT": ABORT,
    "CLOSED": CLOSED,
    "EXTERNAL_ABORT": EXTERNAL_ABORT,
    "PROTOCOL_ERROR": PROTOCOL_ERROR,
}


@dataclass(frozen=True)
class MessageSpec:
    """Declared schema of one protocol message kind on one channel.

    Attributes:
        kind: the wire tag (payload tuple head).
        channel: :data:`CHANNEL_JETS` or :data:`CHANNEL_HYDRA`.
        sender: sending role (``worker``/``dispatcher``/``proxy``/
            ``mpiexec``; ``internal`` marks local queue sentinels).
        receiver: receiving role.
        fields: payload element names *after* the kind tag.
        base_bytes: fixed wire size, or ``None`` when the size derives
            from the sending side's ``ctrl_msg_bytes`` (PR005 discipline).
        variable: True when a staging/data payload may ride along
            (``extra`` bytes are legal in :func:`wire_size`).
        internal: local queue mark, never legal on the wire.
    """

    kind: str
    channel: str
    sender: str
    receiver: str
    fields: tuple[str, ...] = ()
    base_bytes: Optional[int] = None
    variable: bool = False
    internal: bool = False

    @property
    def arity(self) -> int:
        """Full payload tuple length, kind tag included."""
        return len(self.fields) + 1


def _msg(kind, channel, sender, receiver, fields=(), base=None,
         variable=False, internal=False) -> MessageSpec:
    return MessageSpec(
        kind=kind,
        channel=channel,
        sender=sender,
        receiver=receiver,
        fields=tuple(fields),
        base_bytes=base,
        variable=variable,
        internal=internal,
    )


#: channel -> kind -> spec.  The whole wire vocabulary.
CHANNELS: dict[str, dict[str, MessageSpec]] = {
    CHANNEL_JETS: {
        spec.kind: spec
        for spec in (
            _msg(REGISTER, CHANNEL_JETS, "worker", "dispatcher",
                 ("worker", "node", "slots"), base=256),
            _msg(READY, CHANNEL_JETS, "worker", "dispatcher",
                 ("worker",), base=64),
            _msg(READY_ALL, CHANNEL_JETS, "worker", "dispatcher",
                 ("worker",), base=64),
            _msg(HEARTBEAT, CHANNEL_JETS, "worker", "dispatcher",
                 ("worker",), base=32),
            _msg(DONE, CHANNEL_JETS, "worker", "dispatcher",
                 ("worker", "job", "status", "value"), base=128,
                 variable=True),
            _msg(RUN_TASK, CHANNEL_JETS, "dispatcher", "worker",
                 ("job",), base=None, variable=True),
            _msg(RUN_PROXY, CHANNEL_JETS, "dispatcher", "worker",
                 ("command", "program"), base=None, variable=True),
            _msg(CANCEL, CHANNEL_JETS, "dispatcher", "worker",
                 ("job", "mpi"), base=None),
            _msg(SHUTDOWN, CHANNEL_JETS, "dispatcher", "worker",
                 (), base=None),
        )
    },
    CHANNEL_HYDRA: {
        spec.kind: spec
        for spec in (
            _msg(REGISTER, CHANNEL_HYDRA, "proxy", "mpiexec",
                 ("proxy",), base=512),
            _msg(PMI_PUT, CHANNEL_HYDRA, "proxy", "mpiexec",
                 ("rank", "key", "value"), base=256),
            _msg(EXIT, CHANNEL_HYDRA, "proxy", "mpiexec",
                 ("proxy", "status", "value"), base=512),
            _msg(START, CHANNEL_HYDRA, "mpiexec", "proxy",
                 (), base=None),
            _msg(COMMIT, CHANNEL_HYDRA, "mpiexec", "proxy",
                 ("comm",), base=0, variable=True),
            _msg(ABORT, CHANNEL_HYDRA, "mpiexec", "proxy",
                 (), base=None),
            _msg(CLOSED, CHANNEL_HYDRA, "internal", "mpiexec",
                 (), base=0, internal=True),
            _msg(EXTERNAL_ABORT, CHANNEL_HYDRA, "internal", "mpiexec",
                 ("reason",), base=0, internal=True),
            _msg(PROTOCOL_ERROR, CHANNEL_HYDRA, "internal", "mpiexec",
                 ("payload",), base=0, internal=True),
        )
    },
}

#: channel -> path suffixes of the modules implementing its endpoints.
#: PR003/PR004 treat a lint set as a closed world only when it contains
#: all (or none — fixture mode) of a channel's declared modules.
ROLE_MODULES: dict[str, tuple[str, ...]] = {
    CHANNEL_JETS: ("repro/core/dispatcher.py", "repro/core/worker.py"),
    CHANNEL_HYDRA: ("repro/mpi/hydra.py",),
}


def lookup_message(channel: str, kind: str) -> Optional[MessageSpec]:
    """The spec of ``kind`` on ``channel`` (None if undeclared)."""
    return CHANNELS.get(channel, {}).get(kind)


def lookup_kind(kind: str) -> tuple[MessageSpec, ...]:
    """All specs named ``kind`` across channels (``register`` has two)."""
    return tuple(
        channel[kind] for channel in CHANNELS.values() if kind in channel
    )


def known_kind(kind: str) -> bool:
    """Whether any channel declares ``kind``."""
    return bool(lookup_kind(kind))


def wire_size(
    channel: str,
    kind: str,
    ctrl: Optional[int] = None,
    extra: int = 0,
) -> int:
    """The declared wire size of one message, in bytes.

    ``ctrl`` supplies the sending side's ``ctrl_msg_bytes`` for kinds
    whose size derives from it; ``extra`` adds a data payload (staging
    bytes, KVS commit bytes) and is only legal on ``variable`` kinds.
    Every protocol ``socket.send`` must compute its size through here so
    the static checker (PR005) can verify the discipline.
    """
    spec = lookup_message(channel, kind)
    if spec is None:
        raise ValueError(f"unknown protocol message {channel}:{kind}")
    if spec.internal:
        raise ValueError(f"{channel}:{kind} is internal; it has no wire size")
    if spec.base_bytes is None:
        if ctrl is None:
            raise ValueError(
                f"{channel}:{kind} derives its size from ctrl_msg_bytes; "
                "pass ctrl="
            )
        base = ctrl
    else:
        base = spec.base_bytes
    if extra:
        if not spec.variable:
            raise ValueError(
                f"{channel}:{kind} carries no data payload; extra bytes "
                "are not legal"
            )
        if extra < 0:
            raise ValueError(f"negative extra bytes {extra}")
        base += extra
    return base


def channel_for_service(service: str) -> Optional[str]:
    """Map a socket service name to its protocol channel (None: unknown)."""
    if service == "jets":
        return CHANNEL_JETS
    if service.startswith("mpiexec-"):
        return CHANNEL_HYDRA
    return None


# -- per-channel session state machines ----------------------------------------

def _graph(**edges: tuple[str, ...]):
    return {state: frozenset(nxt) for state, nxt in edges.items()}


#: One worker⇄dispatcher connection: ``register`` first and exactly once,
#: nothing dispatched before a ``ready`` credit.  ``heartbeat`` and
#: ``cancel`` carry no session state (a cancel's effect shows up as the
#: worker's own ``done``/``ready`` response, which restores the credit the
#: original dispatch consumed).  After ``shutdown`` a worker may still
#: flush completions for in-flight work (``done``/``ready`` crossing the
#: shutdown on the wire), but nothing new may be dispatched.  A session
#: may truncate anywhere (worker loss) — only illegal *transitions* are
#: violations, never incompleteness.
JETS_SESSION = StateMachine(
    entity="jets-session",
    states=("registered", "ready", "dispatched", "done", "shutdown"),
    initial=frozenset({"registered"}),
    transitions=_graph(
        registered=("ready", "shutdown"),
        ready=("ready", "dispatched", "done", "shutdown"),
        dispatched=("dispatched", "ready", "done", "shutdown"),
        done=("done", "ready", "dispatched", "shutdown"),
        shutdown=("done", "ready"),
    ),
    events={
        REGISTER: "registered",
        READY: "ready",
        READY_ALL: "ready",
        RUN_TASK: "dispatched",
        RUN_PROXY: "dispatched",
        DONE: "done",
        SHUTDOWN: "shutdown",
    },
    ignored_events=frozenset({HEARTBEAT, CANCEL}),
    id_key="conn",
)

#: One proxy⇄mpiexec connection: PMI wire-up order (``register`` →
#: ``start`` → puts → ``commit`` → ``exit``); ``abort`` is legal from any
#: live state, and an ``abort``/``exit`` pair may cross in flight.
HYDRA_SESSION = StateMachine(
    entity="hydra-session",
    states=("registered", "started", "wiring", "committed", "exited",
            "aborted"),
    initial=frozenset({"registered"}),
    transitions=_graph(
        registered=("started", "aborted"),
        started=("wiring", "aborted"),
        wiring=("wiring", "committed", "aborted"),
        committed=("exited", "aborted"),
        # aborted -> wiring: sessions are replayed in send order, and a
        # proxy keeps forwarding PMI puts until mpiexec's ABORT (already
        # in flight, possibly delayed by an injected net fault) reaches
        # it — the same crossing-traffic allowance as abort/exit.
        aborted=("exited", "aborted", "wiring"),
        exited=("aborted",),
    ),
    events={
        REGISTER: "registered",
        START: "started",
        PMI_PUT: "wiring",
        COMMIT: "committed",
        EXIT: "exited",
        ABORT: "aborted",
    },
    id_key="conn",
)

#: channel -> session machine.
SESSION_MACHINES: dict[str, StateMachine] = {
    CHANNEL_JETS: JETS_SESSION,
    CHANNEL_HYDRA: HYDRA_SESSION,
}


# -- recorded-traffic validation ------------------------------------------------

@dataclass(frozen=True)
class WireMessage:
    """One observed send, in global send order (netsim-tap agnostic)."""

    conn: object
    channel: str
    kind: str
    payload: tuple
    nbytes: int = 0
    sender: str = ""
    service: str = ""
    time: float = 0.0


def wire_message(ev) -> Optional[WireMessage]:
    """Adapt one tapped :class:`~repro.netsim.sockets.WireEvent` to a
    :class:`WireMessage` (None for services outside the registry)."""
    channel = channel_for_service(ev.service)
    if channel is None:
        return None
    payload = ev.payload if isinstance(ev.payload, tuple) else (ev.payload,)
    return WireMessage(
        conn=ev.conn_id,
        channel=channel,
        kind=payload[0] if payload else "",
        payload=payload,
        nbytes=ev.nbytes,
        sender=ev.sender,
        service=ev.service,
        time=ev.time,
    )


class SessionValidator:
    """Incremental protocol conformance: feed each send as it happens.

    The streaming form of :func:`validate_sessions`: register
    :meth:`tap` directly as a ``Network.add_tap`` observer (it adapts
    and counts every wire event, feeding registry-known channels) or
    call :meth:`feed` per :class:`WireMessage`.  Per-message checks
    (declared kind, arity, ready-credit accounting) are appended as the
    stream flows; per-connection session-machine replay advances one
    transition at a time, so state is bounded by live connections rather
    than total traffic.  :meth:`finish` merges everything in the same
    order the post-hoc scan reports.
    """

    def __init__(self):
        #: Per-message problems, in send order.
        self.problems: list[str] = []
        #: All tapped wire events (any service), for traffic accounting.
        self.seen = 0
        self._index = 0
        self._conn_order: list[object] = []
        self._conn_label: dict[object, str] = {}
        self._states: dict[object, Optional[str]] = {}
        self._machines: dict[object, StateMachine] = {}
        self._session_problems: dict[object, list[str]] = {}
        self._credits: dict[object, Optional[int]] = {}
        self._slots: dict[object, int] = {}
        self._hydra_last_register: dict[str, int] = {}
        self._hydra_first_commit: dict[str, int] = {}

    def tap(self, ev) -> None:
        """``Network.add_tap`` entry point: adapt, count, and feed."""
        self.seen += 1
        msg = wire_message(ev)
        if msg is not None:
            self.feed(msg)

    def feed(self, msg: WireMessage) -> None:
        """Validate one observed send (in global send order)."""
        index = self._index
        self._index = index + 1
        problems = self.problems
        label = f"{msg.service or msg.channel}#{msg.conn}"
        spec = lookup_message(msg.channel, msg.kind)
        if spec is None:
            problems.append(
                f"msg {index} [{label}]: kind {msg.kind!r} is not declared "
                f"on channel {msg.channel!r}"
            )
            return
        if spec.internal:
            problems.append(
                f"msg {index} [{label}]: internal mark {msg.kind!r} "
                "observed on the wire"
            )
            return
        if len(msg.payload) != spec.arity:
            problems.append(
                f"msg {index} [{label}]: {msg.kind!r} payload has "
                f"{len(msg.payload)} elements, registry declares "
                f"{spec.arity} ({('kind', *spec.fields)!r})"
            )
        conn = msg.conn
        if conn not in self._conn_label:
            self._conn_order.append(conn)
            self._conn_label[conn] = label

        # Session-machine replay, one transition at a time (the exact
        # fold StateMachine.validate performs over a full sequence).
        machine = SESSION_MACHINES[msg.channel]
        self._machines[conn] = machine
        if (
            msg.kind not in machine.ignored_events
            and msg.kind in machine.events
        ):
            state = machine.events[msg.kind]
            current = self._states.get(conn)
            if not machine.can(current, state):
                origin = current if current is not None else "<entry>"
                self._session_problems.setdefault(conn, []).append(
                    f"session [{self._conn_label[conn]}]: illegal "
                    f"{machine.entity} transition {origin} -> {state}"
                )
            self._states[conn] = state

        if msg.channel == CHANNEL_JETS:
            credits = self._credits
            have = credits.get(conn)
            if msg.kind == REGISTER and len(msg.payload) == spec.arity:
                self._slots[conn] = int(msg.payload[3])
                credits[conn] = 0
            elif msg.kind == READY and have is not None:
                credits[conn] = min(self._slots[conn], have + 1)
            elif msg.kind == READY_ALL and have is not None:
                credits[conn] = self._slots[conn]
            elif msg.kind == RUN_TASK and have is not None:
                if have < 1:
                    problems.append(
                        f"msg {index} [{label}]: run_task dispatched with "
                        "no ready credit outstanding"
                    )
                else:
                    credits[conn] = have - 1
            elif msg.kind == RUN_PROXY and have is not None:
                if have < self._slots[conn]:
                    problems.append(
                        f"msg {index} [{label}]: run_proxy dispatched to a "
                        f"worker with {have}/{self._slots[conn]} slots free "
                        "(MPI jobs claim whole workers)"
                    )
                credits[conn] = 0
        elif msg.channel == CHANNEL_HYDRA:
            if msg.kind == REGISTER:
                self._hydra_last_register[msg.service] = index
            elif msg.kind == COMMIT:
                self._hydra_first_commit.setdefault(msg.service, index)

    def finish(self) -> list[str]:
        """All violations so far, in the post-hoc scan's report order.

        Non-destructive: feeding more messages and calling finish again
        yields the updated verdicts.
        """
        problems = list(self.problems)
        for conn in self._conn_order:
            problems.extend(self._session_problems.get(conn, ()))
        for service, commit_index in sorted(self._hydra_first_commit.items()):
            last_register = self._hydra_last_register.get(service, -1)
            if last_register > commit_index:
                problems.append(
                    f"service [{service}]: commit at msg {commit_index} "
                    f"precedes a proxy register at msg {last_register} "
                    "(commit requires every proxy registered)"
                )
        return problems


def validate_sessions(messages: Iterable["WireMessage"]) -> list[str]:
    """Replay recorded wire traffic against the protocol registry.

    Checks, per message: the kind is declared on its channel and not an
    internal mark; the payload arity matches.  Per connection: the kind
    sequence satisfies the channel's session machine, and (jets) the
    dispatcher never dispatches past the worker's announced ready
    credits.  Per mpiexec service: ``commit`` is only sent once every
    proxy that ever registers has registered.  Returns human-readable
    violations (empty = conformant).
    """
    validator = SessionValidator()
    feed = validator.feed
    for msg in messages:
        feed(msg)
    return validator.finish()
