"""Central trace schema registry: every legal trace category, declared.

Every reported metric in this reproduction is derived from trace records
(paper Section 6.1.5), so a typo'd category or a missing payload key
silently drops data from spans, timelines and Eq. (1) utilization.  This
registry declares the full category vocabulary and the payload keys each
category must / may carry; the static pass (:mod:`.trace_rules`) checks
``trace.log(...)`` call sites against it and the runtime validator
(:mod:`.tracecheck`) checks recorded runs.

Lifecycle categories (``job.*``, ``worker.*``, ``proxy.*``) are *derived*
from the state machines in :mod:`.lifecycle` so the two views cannot
drift apart.

Call sites should log through the exported category constants (e.g.
:data:`WORKER_IDLE`) rather than building category strings dynamically —
a dynamic category escapes both the registry and the static checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .lifecycle import JOB_MACHINE, PROXY_MACHINE, WORKER_MACHINE

__all__ = [
    "CategorySpec",
    "REGISTRY",
    "PREFIX_FAMILIES",
    "lookup",
    "known_category",
    "payload_problems",
    # category constants (the ones components log directly)
    "RUN_ALLOCATION",
    "ALLOCATION_START",
    "ALLOCATION_END",
    "FAULT_KILL",
    "FAULT_PROXY_KILL",
    "FAULT_STRAGGLER",
    "FAULT_NET_DROP",
    "FAULT_NET_DELAY",
    "FAULT_PARTITION",
    "FAULT_HEAL",
    "FAULT_STAGING",
    "FAULT_DISPATCHER_CRASH",
    "RESUME_BEGIN",
    "RESUME_SKIP",
    "RESUME_RESUBMIT",
    "JOURNAL_RUN_BEGIN",
    "JOURNAL_RUN_END",
    "JOURNAL_JOB_SUBMITTED",
    "JOURNAL_JOB_LAUNCHED",
    "JOURNAL_JOB_DONE",
    "JOURNAL_JOB_FAILED",
    "JOURNAL_JOB_RETRY",
    "JOURNAL_WORKER_REGISTERED",
    "JOURNAL_WORKER_LOST",
    "RECOVER_BACKOFF",
    "RECOVER_HUNG",
    "RECOVER_GANG_TEARDOWN",
    "RECOVER_RECONCILE",
    "RECOVER_ZOMBIE",
    "RECOVER_QUARANTINE",
    "RECOVER_READMIT",
    "RECOVER_RESPAWN",
    "DISPATCHER_REGISTER",
    "PROTOCOL_ERROR",
    "COASTERS_BLOCK_REQUESTED",
    "COASTERS_BLOCK_READY",
    "WORKER_IDLE",
    "WORKER_BUSY",
    "JOB_DONE",
    "JOB_FAILED",
    "OBS_PROGRESS",
    "COUNTER_PREFIX",
]


@dataclass(frozen=True)
class CategorySpec:
    """Declared schema of one trace category."""

    name: str
    required: frozenset[str] = field(default_factory=frozenset)
    optional: frozenset[str] = field(default_factory=frozenset)
    description: str = ""

    @property
    def keys(self) -> frozenset[str]:
        return self.required | self.optional

    def payload_problems(self, data: Any) -> list[str]:
        """Human-readable schema violations of one payload dict."""
        if not self.required and data is None:
            return []
        if not isinstance(data, dict):
            return [f"payload must be a dict, got {type(data).__name__}"]
        problems = [
            f"missing required key {key!r}"
            for key in sorted(self.required)
            if key not in data
        ]
        problems.extend(
            f"unknown key {key!r}"
            for key in sorted(k for k in data if isinstance(k, str))
            if key not in self.keys
        )
        return problems


def _spec(name: str, required=(), optional=(), description: str = "") -> CategorySpec:
    return CategorySpec(
        name=name,
        required=frozenset(required),
        optional=frozenset(optional),
        description=description,
    )


# -- category constants --------------------------------------------------------

RUN_ALLOCATION = "run.allocation"
ALLOCATION_START = "allocation.start"
ALLOCATION_END = "allocation.end"
FAULT_KILL = "fault.kill"
FAULT_PROXY_KILL = "fault.proxy_kill"
FAULT_STRAGGLER = "fault.straggler"
FAULT_NET_DROP = "fault.net_drop"
FAULT_NET_DELAY = "fault.net_delay"
FAULT_PARTITION = "fault.partition"
FAULT_HEAL = "fault.heal"
FAULT_STAGING = "fault.staging"
FAULT_DISPATCHER_CRASH = "fault.dispatcher_crash"
RESUME_BEGIN = "resume.begin"
RESUME_SKIP = "resume.skip"
RESUME_RESUBMIT = "resume.resubmit"
JOURNAL_RUN_BEGIN = "journal.run_begin"
JOURNAL_RUN_END = "journal.run_end"
JOURNAL_JOB_SUBMITTED = "journal.job_submitted"
JOURNAL_JOB_LAUNCHED = "journal.job_launched"
JOURNAL_JOB_DONE = "journal.job_done"
JOURNAL_JOB_FAILED = "journal.job_failed"
JOURNAL_JOB_RETRY = "journal.job_retry"
JOURNAL_WORKER_REGISTERED = "journal.worker_registered"
JOURNAL_WORKER_LOST = "journal.worker_lost"
RECOVER_BACKOFF = "recover.backoff"
RECOVER_HUNG = "recover.hung"
RECOVER_GANG_TEARDOWN = "recover.gang_teardown"
RECOVER_RECONCILE = "recover.reconcile"
RECOVER_ZOMBIE = "recover.zombie"
RECOVER_QUARANTINE = "recover.quarantine"
RECOVER_READMIT = "recover.readmit"
RECOVER_RESPAWN = "recover.respawn"
DISPATCHER_REGISTER = "dispatcher.register"
PROTOCOL_ERROR = "protocol.error"
COASTERS_BLOCK_REQUESTED = "coasters.block_requested"
COASTERS_BLOCK_READY = "coasters.block_ready"
WORKER_IDLE = "worker.idle"
WORKER_BUSY = "worker.busy"
JOB_DONE = "job.done"
JOB_FAILED = "job.failed"
OBS_PROGRESS = "obs.progress"

#: Dynamic family for instrument mirroring (``counter.<name>``); the one
#: sanctioned dynamic-category funnel, validated at Counter.connect time.
COUNTER_PREFIX = "counter."

# -- lifecycle-derived payload schemas ----------------------------------------

#: Extra payload keys individual lifecycle events carry beyond the
#: machine's id key: event suffix -> (required, optional).
_JOB_EVENT_KEYS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "submitted": (("mpi", "nodes", "ppn"), ()),
    "queued": (("attempt",), ()),
    "grouped": (("attempt", "workers"), ()),
    "dispatch": (("nodes",), ("attempt", "worker", "workers", "node_ids")),
    "mpiexec_spawned": (("attempt",), ()),
    "pmi_wireup": ((), ()),
    "app_running": ((), ("worker", "serial")),
    "retry": (("attempt", "error"), ("reason",)),
    "done": (
        ("attempt", "nodes", "ppn", "duration_hint", "nominal"),
        ("error", "app_start", "app_end"),
    ),
    "failed": (
        ("attempt", "nodes", "ppn", "duration_hint", "nominal"),
        ("error", "app_start", "app_end"),
    ),
}

_WORKER_EVENT_KEYS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "start": (("node",), ()),
    "registered": (("node",), ()),
    "ready": ((), ()),
    "idle": ((), ()),
    "busy": ((), ()),
    "heartbeat_missed": (("last_seen",), ()),
    "lost": (("reason",), ()),
    "killed": (("cause",), ()),
    "stop": ((), ()),
}

_PROXY_EVENT_KEYS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "launched": (("job", "worker", "node"), ()),
    "registered": (("job",), ("node",)),
    "wired": (("job",), ()),
    "exited": (("job", "status"), ()),
}


def _lifecycle_specs() -> list[CategorySpec]:
    specs: list[CategorySpec] = []
    for machine, event_keys in (
        (JOB_MACHINE, _JOB_EVENT_KEYS),
        (WORKER_MACHINE, _WORKER_EVENT_KEYS),
        (PROXY_MACHINE, _PROXY_EVENT_KEYS),
    ):
        events = set(machine.events) | set(machine.ignored_events)
        for event in sorted(events):
            required, optional = event_keys.get(event, ((), ()))
            specs.append(
                _spec(
                    f"{machine.entity}.{event}",
                    required=(machine.id_key, *required),
                    optional=optional,
                    description=(
                        f"{machine.entity} lifecycle event "
                        f"({machine.events.get(event, 'no state change')})"
                    ),
                )
            )
    return specs


# -- non-lifecycle categories --------------------------------------------------

_STATIC_SPECS = [
    _spec(
        RUN_ALLOCATION,
        required=("machine", "nodes"),
        optional=("cores_per_node", "slots", "walltime", "blocks", "spectrum"),
        description="run metadata logged once the allocation is up",
    ),
    _spec(
        ALLOCATION_START,
        required=("nodes", "walltime"),
        description="batch scheduler granted an allocation",
    ),
    _spec(
        ALLOCATION_END,
        required=("nodes", "reason"),
        description="allocation released or expired",
    ),
    _spec(
        FAULT_KILL,
        required=("worker",),
        description="fault injector killed a pilot",
    ),
    _spec(
        FAULT_PROXY_KILL,
        required=("worker", "job"),
        description="fault injector crashed a Hydra proxy mid-wire-up",
    ),
    _spec(
        FAULT_STRAGGLER,
        required=("node", "factor", "duration"),
        description="fault injector rate-scaled a node's compute",
    ),
    _spec(
        FAULT_NET_DROP,
        required=("channel", "probability", "until"),
        description="fault injector opened a lossy-link window",
    ),
    _spec(
        FAULT_NET_DELAY,
        required=("channel", "delay", "until"),
        description="fault injector opened an added-latency window",
    ),
    _spec(
        FAULT_PARTITION,
        required=("nodes", "until"),
        description="fault injector partitioned a node set off the fabric",
    ),
    _spec(
        FAULT_HEAL,
        required=("nodes",),
        description="a partition or straggler window ended",
    ),
    _spec(
        FAULT_STAGING,
        required=("node", "until"),
        description="fault injector failed staging I/O on a node",
    ),
    _spec(
        FAULT_DISPATCHER_CRASH,
        required=("at",),
        description=(
            "fault injector killed the dispatcher process mid-run; "
            "recovery is a fresh process resuming from the run journal"
        ),
    ),
    _spec(
        RESUME_BEGIN,
        required=("journal", "segment"),
        optional=("crash_time", "outstanding"),
        description=(
            "resume engine rebuilt dispatcher state from a run journal "
            "and is restarting the interrupted run as a new segment"
        ),
    ),
    _spec(
        RESUME_SKIP,
        required=("job", "outcome"),
        description=(
            "journal replay found this job already settled (done/failed) "
            "before the crash; it is not resubmitted"
        ),
    ),
    _spec(
        RESUME_RESUBMIT,
        required=("job", "attempt"),
        description=(
            "journal replay found this job in flight at the crash; it is "
            "resubmitted with its attempt counter preserved"
        ),
    ),
    # -- write-ahead run journal records (repro/core/journal.py).  These
    # are written to the journal file, not the trace, but registering
    # them keeps journals valid under `jets lint-trace` (each journal
    # segment is one monotone run tagged with its segment index).
    _spec(
        JOURNAL_RUN_BEGIN,
        required=("machine", "nodes", "seed"),
        optional=(
            "jobs", "policy", "grouping", "slots", "cores_per_node",
            "stage", "resume",
        ),
        description="durable run header (flushed before any job record)",
    ),
    _spec(
        JOURNAL_RUN_END,
        required=("ok",),
        optional=("completed", "failed"),
        description="run drained (or was capped) and shut down cleanly",
    ),
    _spec(
        JOURNAL_JOB_SUBMITTED,
        required=("job", "mpi", "nodes", "ppn"),
        optional=(
            "command", "max_attempts", "attempts", "duration_hint",
            "priority",
        ),
        description="dispatcher accepted a job (replay re-specs from this)",
    ),
    _spec(
        JOURNAL_JOB_LAUNCHED,
        required=("job", "attempt"),
        description="job placed on workers; in flight until done/failed",
    ),
    _spec(
        JOURNAL_JOB_DONE,
        required=("job", "attempt"),
        description="job completed successfully (replay skips it)",
    ),
    _spec(
        JOURNAL_JOB_FAILED,
        required=("job", "attempt"),
        optional=("error",),
        description="job failed permanently (replay skips it)",
    ),
    _spec(
        JOURNAL_JOB_RETRY,
        required=("job", "attempt"),
        optional=("error", "reason"),
        description="attempt failed and was requeued; attempt counter bumped",
    ),
    _spec(
        JOURNAL_WORKER_REGISTERED,
        required=("worker", "node"),
        description="pilot registered with the dispatcher",
    ),
    _spec(
        JOURNAL_WORKER_LOST,
        required=("worker",),
        optional=("reason",),
        description="dispatcher declared a pilot lost",
    ),
    _spec(
        RECOVER_BACKOFF,
        required=("job", "attempt", "delay"),
        description="retry held back by exponential backoff before requeue",
    ),
    _spec(
        RECOVER_HUNG,
        required=("job", "attempt", "phase"),
        description="hung-job deadline fired; the attempt is aborted",
    ),
    _spec(
        RECOVER_GANG_TEARDOWN,
        required=("job", "attempt", "workers"),
        description=(
            "surviving members of a partially-launched MPI group "
            "cancelled so their slots return to the aggregator"
        ),
    ),
    _spec(
        RECOVER_RECONCILE,
        required=("worker",),
        description=(
            "idle worker recycled after its ready credits stayed "
            "inconsistent past the reconciliation timeout"
        ),
    ),
    _spec(
        RECOVER_ZOMBIE,
        required=("worker", "node"),
        description=(
            "pilot keeper reaped a live agent the dispatcher no longer "
            "knows (a dropped close left a zombie connection)"
        ),
    ),
    _spec(
        RECOVER_QUARANTINE,
        required=("node", "failures", "until"),
        description="node blacklisted after repeated pilot failures",
    ),
    _spec(
        RECOVER_READMIT,
        required=("node",),
        description="quarantined node re-admitted on probation",
    ),
    _spec(
        RECOVER_RESPAWN,
        required=("node", "worker"),
        description="pilot keeper respawned a fresh worker on a node",
    ),
    _spec(
        DISPATCHER_REGISTER,
        required=("worker", "node"),
        description="dispatcher-side registration bookkeeping",
    ),
    _spec(
        PROTOCOL_ERROR,
        required=("channel", "kind"),
        optional=("worker", "job", "detail"),
        description=(
            "endpoint received a message violating the wire protocol; "
            "the offending peer is torn down, the service keeps running"
        ),
    ),
    _spec(
        COASTERS_BLOCK_REQUESTED,
        required=("size",),
        description="Coasters block provisioning requested",
    ),
    _spec(
        COASTERS_BLOCK_READY,
        required=("size",),
        description="Coasters block came up",
    ),
    _spec(
        OBS_PROGRESS,
        required=("events", "records"),
        optional=("jobs", "counts", "gauges"),
        description=(
            "live-progress heartbeat folded from the trace stream "
            "(kernel events, record/family counts, job tallies, gauge "
            "levels) — all seed-deterministic, emitted every N sim-"
            "seconds when progress tracking is enabled"
        ),
    ),
]

#: name -> spec for every exactly-named category.
REGISTRY: dict[str, CategorySpec] = {
    spec.name: spec for spec in (*_lifecycle_specs(), *_STATIC_SPECS)
}

#: Dynamic prefix families: prefix -> spec template applied to members.
PREFIX_FAMILIES: dict[str, CategorySpec] = {
    COUNTER_PREFIX: _spec(
        COUNTER_PREFIX + "*",
        required=("counter", "value"),
        description="traced Counter increments (one member per counter)",
    ),
}


def lookup(category: str) -> Optional[CategorySpec]:
    """The spec for ``category``, via exact name or prefix family."""
    spec = REGISTRY.get(category)
    if spec is not None:
        return spec
    for prefix, family in PREFIX_FAMILIES.items():
        if category.startswith(prefix) and len(category) > len(prefix):
            return family
    return None


def known_category(category: str) -> bool:
    """Whether ``category`` is declared (exactly or via a family)."""
    return lookup(category) is not None


def payload_problems(category: str, data: Any) -> list[str]:
    """Schema violations of one record; unknown categories yield one."""
    spec = lookup(category)
    if spec is None:
        return [f"unknown trace category {category!r}"]
    return spec.payload_problems(data)
