"""``jets lint`` / ``jets lint-trace`` / ``jets sanitize`` subcommands.

Usage::

    jets lint [PATH ...] [--select RULES] [--ignore RULES]
              [--min-severity LEVEL] [--format text|json]
              [--hot-profile BENCH_profile.json]
              [--list-rules] [--explain RULE] [--catalog]
    jets lint-trace RUN.jsonl [--run N] [--no-schema] [--no-lifecycle]
    jets sanitize [PATH ...] [--static-only | --dynamic-only | --fixture]
                  [--schedules N] [--seed S] [--strict]
    jets hotpath [FUNC] [--path P] [--hot-profile BENCH_profile.json]
                 [--format text|json]

``jets lint`` runs the static rule sets over Python sources (default:
``src`` if present, else the current directory) and exits non-zero when
any finding at or above ``--min-severity`` survives the inline
``# repro: noqa[RULE]`` suppressions.  ``--format json`` emits one
machine-readable document (path/line/col/rule/severity/message per
finding) for CI annotation.  ``jets lint-trace`` validates a recorded
JSONL run against the trace schema registry and the lifecycle state
machines.

``jets hotpath`` builds the project call graph (see
:mod:`.callgraph`) and dumps the computed hot set — every function
reachable from the declared kernel entry points, optionally unioned
with a measured ``jets bench --profile`` profile.  With a FUNC
argument it instead *explains* reachability: the shortest
entry→function call chain, or "not on the hot path".  The same
``--hot-profile`` file escalates the PF perf rules from warning to
error during ``jets lint``.

``jets sanitize`` is the two-layer race/determinism sanitizer: the
static happens-before and RNG-sharing rules (HB*/RS*, alongside the
full DT/TR/SK/PR sets) over the sources, then a dynamic pass running
the schedule-exploration smoke workload with a
:class:`~repro.analysis.hbmodel.HappensBeforeChecker` attached — vector
clocks over the live trace, flagging same-timestamp record pairs with
no happens-before path.  ``--fixture`` instead runs the built-in seeded
race demo end-to-end: the checker must find the planted race and the
schedule-permutation confirmation loop must classify it
outcome-changing (the sanitizer self-test CI runs).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import textwrap
from typing import Optional, Sequence

from .framework import SEVERITIES, all_rules, lint_paths
from .tracecheck import TraceValidator

__all__ = [
    "build_lint_parser",
    "build_lint_trace_parser",
    "build_sanitize_parser",
    "build_hotpath_parser",
    "lint_main",
    "lint_trace_main",
    "sanitize_main",
    "hotpath_main",
    "rule_catalog",
]


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jets lint",
        description="Static invariant checks (trace schema, determinism, "
        "simkernel misuse, happens-before hazards) over Python sources.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: ./src or .)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--min-severity", choices=SEVERITIES, default="warning",
        help="findings below this level are reported but do not fail "
        "the run (default: warning)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text); json emits one document "
        "with files/findings/errors for CI annotation",
    )
    parser.add_argument(
        "--hot-profile", default=None, metavar="FILE",
        help="BENCH_profile.json from `jets bench --profile`; profiled "
        "functions join the hot set the PF rules escalate on",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print a rule's full description and examples, then exit",
    )
    parser.add_argument(
        "--catalog", action="store_true",
        help="print the rule catalog as a markdown table and exit "
        "(the README generator)",
    )
    return parser


def _explain_rule(rule_id: str) -> int:
    """Print one rule's documentation; exit code for lint_main."""
    wanted = rule_id.upper()
    for cls in all_rules():
        if cls.id != wanted:
            continue
        print(f"{cls.id} [{cls.severity}] — {cls.description}")
        doc = inspect.getdoc(cls)
        if doc:
            print()
            print(doc)
        if cls.example_bad:
            print()
            print("flagged:")
            print(textwrap.indent(cls.example_bad, "    "))
        if cls.example_good:
            print()
            print("fixed:")
            print(textwrap.indent(cls.example_good, "    "))
        return 0
    known = ", ".join(sorted(c.id for c in all_rules()))
    print(f"jets lint: unknown rule {rule_id} (known: {known})",
          file=sys.stderr)
    return 2


def rule_catalog() -> str:
    """The registered rules as a markdown table (README generator)."""
    lines = [
        "| Rule | Severity | Checks |",
        "| --- | --- | --- |",
    ]
    for cls in sorted(all_rules(), key=lambda c: c.id):
        lines.append(f"| {cls.id} | {cls.severity} | {cls.description} |")
    return "\n".join(lines)


def build_lint_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jets lint-trace",
        description="Validate a recorded JSONL trace against the schema "
        "registry and lifecycle state machines.",
    )
    parser.add_argument("tracefile", help="JSONL trace from --trace-out")
    parser.add_argument(
        "--run", type=int, default=None,
        help="validate only the given tagged run (default: each run)",
    )
    parser.add_argument(
        "--no-schema", action="store_true",
        help="skip category/payload schema checks",
    )
    parser.add_argument(
        "--no-lifecycle", action="store_true",
        help="skip lifecycle state-machine checks",
    )
    parser.add_argument(
        "--max-issues", type=int, default=50, metavar="N",
        help="print at most N issues per run (default: 50)",
    )
    return parser


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets lint`` entry point; returns the exit code."""
    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        for rule in sorted(all_rules(), key=lambda r: r.id):
            print(f"{rule.id}  [{rule.severity:7s}] {rule.description}")
        return 0
    if args.explain:
        return _explain_rule(args.explain)
    if args.catalog:
        print(rule_catalog())
        return 0
    paths = list(args.paths)
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]
    select = (
        [s for s in args.select.split(",") if s] if args.select else None
    )
    ignore = (
        [s for s in args.ignore.split(",") if s] if args.ignore else None
    )
    profile_ids = None
    if args.hot_profile:
        from .callgraph import load_profile

        try:
            profile_ids, _ = load_profile(args.hot_profile)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"jets lint: bad --hot-profile: {exc}", file=sys.stderr)
            return 2
    from .perf_rules import set_hot_profile

    set_hot_profile(profile_ids)
    try:
        result = lint_paths(paths, select=select, ignore=ignore)
    except ValueError as exc:
        print(f"jets lint: {exc}", file=sys.stderr)
        return 2
    finally:
        set_hot_profile(None)
    threshold = SEVERITIES.index(args.min_severity)
    failing = [
        f for f in result.findings
        if SEVERITIES.index(f.severity) >= threshold
    ]
    if args.format == "json":
        print(json.dumps(
            {
                "files": result.files,
                "findings": [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "rule": f.rule,
                        "severity": f.severity,
                        "message": f.message,
                        "hot_path": f.hot,
                    }
                    for f in result.findings
                ],
                "errors": result.errors,
            },
            indent=2,
        ))
        return 2 if result.errors else (1 if failing else 0)
    for error in result.errors:
        print(f"jets lint: {error}", file=sys.stderr)
    for finding in result.findings:
        print(finding.render())
    summary = ", ".join(
        f"{result.count(sev)} {sev}" for sev in reversed(SEVERITIES)
        if result.count(sev)
    )
    print(
        f"jets lint: {result.files} files checked — "
        + (summary if summary else "clean")
    )
    if result.errors:
        return 2
    return 1 if failing else 0


def lint_trace_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets lint-trace`` entry point; returns the exit code.

    Records stream through one incremental :class:`.TraceValidator` per
    tagged run — a spilled million-record dump validates in flat memory,
    never materialized as a list.
    """
    args = build_lint_trace_parser().parse_args(argv)
    from ..obs.export import iter_jsonl

    validators: dict[int, TraceValidator] = {}
    try:
        for run_id, rec in iter_jsonl(args.tracefile, run=args.run):
            validator = validators.get(run_id)
            if validator is None:
                validator = validators[run_id] = TraceValidator(
                    check_schema=not args.no_schema,
                    check_lifecycle=not args.no_lifecycle,
                )
            validator.feed(rec)
    except OSError as exc:
        print(f"jets lint-trace: cannot read {args.tracefile}: {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"jets lint-trace: bad trace file: {exc}", file=sys.stderr)
        return 2
    if not validators:
        if args.run is not None:
            print(f"jets lint-trace: no run {args.run} in {args.tracefile}",
                  file=sys.stderr)
        else:
            print(
                f"jets lint-trace: {args.tracefile} holds no trace records",
                file=sys.stderr,
            )
        return 2

    total = 0
    for run_id in sorted(validators):
        validator = validators[run_id]
        issues = validator.issues
        total += len(issues)
        tag = f"run {run_id}: " if len(validators) > 1 or run_id else ""
        for issue in issues[: args.max_issues]:
            print(f"{tag}{issue.render()}")
        if len(issues) > args.max_issues:
            print(f"{tag}... {len(issues) - args.max_issues} more issues")
        print(
            f"jets lint-trace: {tag}{validator.records_seen} records — "
            + (f"{len(issues)} issues" if issues else "valid")
        )
    return 1 if total else 0


def build_sanitize_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jets sanitize",
        description="Two-layer race/determinism sanitizer: static "
        "happens-before rules over sources plus a dynamic vector-clock "
        "pass over a live run, with schedule-permutation confirmation.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="sources for the static layer (default: ./src or .)",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="run only the static rule layer",
    )
    parser.add_argument(
        "--dynamic-only", action="store_true",
        help="run only the dynamic happens-before layer",
    )
    parser.add_argument(
        "--fixture", action="store_true",
        help="self-test: run the seeded race demo; exit 0 only if the "
        "checker finds the planted race AND permuted schedules confirm "
        "it outcome-changing",
    )
    parser.add_argument(
        "--schedules", type=int, default=8, metavar="N",
        help="schedules for the dynamic layer / confirmation loop "
        "(default: 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for schedule permutation (default: 0)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="unconfirmed dynamic race candidates fail the run instead "
        "of being reported informationally",
    )
    parser.add_argument(
        "--max-candidates", type=int, default=20, metavar="N",
        help="print at most N race candidates (default: 20)",
    )
    return parser


def _sanitize_static(paths: Sequence[str]) -> tuple[int, int]:
    """Static layer: full rule set; returns (findings, exit code)."""
    result = lint_paths(paths)
    for error in result.errors:
        print(f"jets sanitize: {error}", file=sys.stderr)
    for finding in result.findings:
        print(finding.render())
    n = len(result.findings)
    print(
        f"jets sanitize: static layer — {result.files} files, "
        + (f"{n} findings" if n else "clean")
    )
    if result.errors:
        return n, 2
    return n, (1 if n else 0)


def _confirm_fixture(schedules: int, seed: int) -> tuple[int, int]:
    """Permute the demo's schedule; returns (divergent, total) counts."""
    from ..obs.export import CanonicalDigest
    from ..simkernel import SeededOrder
    from .explore import _derive_seed
    from .hbmodel import seeded_race_demo

    def digest_of(order) -> str:
        _, trace, _ = seeded_race_demo(order=order)
        digest = CanonicalDigest()
        for rec in trace.records:
            digest.feed(rec)
        return digest.hexdigest()

    baseline = digest_of(None)
    divergent = 0
    for index in range(1, schedules + 1):
        if digest_of(SeededOrder(_derive_seed(seed, index))) != baseline:
            divergent += 1
    return divergent, schedules


def _sanitize_fixture(args) -> int:
    """``--fixture``: the sanitizer self-test on the seeded race demo."""
    from .hbmodel import seeded_race_demo

    _, _, checker = seeded_race_demo(checker=True)
    candidates = checker.finish() if checker is not None else []
    for cand in candidates[: args.max_candidates]:
        print(f"  candidate: {cand.render()}")
    if not candidates:
        print(
            "jets sanitize: fixture FAILED — seeded race not detected",
            file=sys.stderr,
        )
        return 1
    divergent, total = _confirm_fixture(args.schedules, args.seed)
    verdict = "outcome-changing" if divergent else "benign"
    print(
        f"jets sanitize: fixture — {len(candidates)} candidate(s); "
        f"{divergent}/{total} permuted schedules diverge from the FIFO "
        f"baseline — {verdict}"
    )
    if not divergent:
        print(
            "jets sanitize: fixture FAILED — no permuted schedule changed "
            "the outcome (expected outcome-changing)",
            file=sys.stderr,
        )
        return 1
    print("jets sanitize: fixture ok (planted race found and confirmed)")
    return 0


def _sanitize_dynamic(args) -> int:
    """Dynamic layer: HB checker riding the exploration smoke workload."""
    from .explore import ExploreConfig, run_schedule
    from .hbmodel import HappensBeforeChecker

    config = ExploreConfig(
        schedules=args.schedules, seed=args.seed, faults=False,
        serial_tasks=2, mpi_tasks=1,
    )
    checkers: list[HappensBeforeChecker] = []

    def attach(env, platform) -> None:
        checkers.append(
            HappensBeforeChecker(env).attach(
                platform.trace, platform.network
            )
        )

    failures = 0
    candidates: dict[tuple, object] = {}
    for index in range(config.schedules):
        result = run_schedule(config, index, attach=attach)
        if not result.ok:
            failures += 1
            for problem in result.problems[:5]:
                print(f"  schedule {index}: {problem}")
        for cand in checkers[-1].finish():
            existing = candidates.get(cand.key())
            if existing is not None:
                existing.count += cand.count  # type: ignore[attr-defined]
            else:
                candidates[cand.key()] = cand
    ordered = sorted(
        candidates.values(),
        key=lambda c: (-c.count, c.time, c.key()),  # type: ignore
    )
    for cand in ordered[: args.max_candidates]:
        print(f"  candidate: {cand.render()}")  # type: ignore[attr-defined]
    print(
        f"jets sanitize: dynamic layer — {config.schedules} schedules, "
        f"{len(ordered)} race candidate(s)"
        + (f", {failures} schedule failures" if failures else "")
    )
    if failures:
        return 1
    if ordered and args.strict:
        return 1
    return 0


def sanitize_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets sanitize`` entry point; returns the exit code.

    Exit 0 means: static rules clean AND the dynamic layer ran without
    oracle failures (race candidates are informational unless
    ``--strict``).  With ``--fixture``, exit 0 means the planted race
    was found and confirmed outcome-changing.
    """
    args = build_sanitize_parser().parse_args(argv)
    if args.static_only and args.dynamic_only:
        print(
            "jets sanitize: --static-only and --dynamic-only are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2
    if args.fixture:
        return _sanitize_fixture(args)

    worst = 0
    if not args.dynamic_only:
        paths = list(args.paths)
        if not paths:
            paths = ["src"] if os.path.isdir("src") else ["."]
        _, code = _sanitize_static(paths)
        worst = max(worst, code)
        if code == 2:
            return 2
    if not args.static_only:
        worst = max(worst, _sanitize_dynamic(args))
    if worst == 0:
        print("jets sanitize: clean")
    return worst


def build_hotpath_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jets hotpath",
        description="Dump the statically computed hot set (functions "
        "reachable from the kernel entry points), or explain how one "
        "function is reached from an entry.",
    )
    parser.add_argument(
        "func", nargs="?", default=None, metavar="FUNC",
        help="function to explain: a graph id (module:qualname), a "
        "Class.method qualname, or a bare name (default: dump the "
        "whole hot set)",
    )
    parser.add_argument(
        "--path", action="append", default=None, metavar="PATH",
        help="source files/directories to analyze (repeatable; "
        "default: ./src or .)",
    )
    parser.add_argument(
        "--hot-profile", default=None, metavar="FILE",
        help="BENCH_profile.json whose functions join the hot set",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    return parser


def _collect_modules(paths: Sequence[str]) -> tuple[list, list[str]]:
    """Parse every .py under ``paths`` into framework Modules."""
    import ast as _ast

    from .framework import Module, iter_python_files

    modules, errors = [], []
    for path in iter_python_files(paths):
        try:
            source = path.read_text()
            tree = _ast.parse(source, filename=str(path))
        except OSError as exc:
            errors.append(f"{path}: {exc}")
            continue
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error: {exc}")
            continue
        modules.append(Module(str(path), source, tree))
    return modules, errors


def _render_chain(chain, graph) -> list[str]:
    """One indented line per hop of a root→target chain."""
    lines = []
    for depth, (fid, kind) in enumerate(chain):
        info = graph.functions.get(fid)
        where = f"  ({info.path}:{info.lineno})" if info else ""
        if depth == 0:
            lines.append(f"{fid}  [{kind}]{where}")
        else:
            pad = "  " * depth
            lines.append(f"{pad}└─ {kind} → {fid}{where}")
    return lines


def hotpath_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets hotpath`` entry point; returns the exit code.

    Without FUNC: exit 0 after dumping the hot set.  With FUNC:
    exit 0 if every match is on the hot path, 1 if any resolved match
    is cold, 2 if the name does not resolve (or sources fail to parse).
    """
    args = build_hotpath_parser().parse_args(argv)
    from .callgraph import CallGraph, load_profile

    paths = list(args.path) if args.path else (
        ["src"] if os.path.isdir("src") else ["."]
    )
    profile_ids: Optional[set] = None
    if args.hot_profile:
        try:
            profile_ids, _ = load_profile(args.hot_profile)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"jets hotpath: bad --hot-profile: {exc}",
                  file=sys.stderr)
            return 2
    modules, errors = _collect_modules(paths)
    for error in errors:
        print(f"jets hotpath: {error}", file=sys.stderr)
    if not modules:
        print("jets hotpath: no Python sources found", file=sys.stderr)
        return 2
    graph = CallGraph.build(modules)
    hot = graph.hot_set(profile_ids)

    if args.func is None:
        ordered = sorted(hot)
        if args.format == "json":
            print(json.dumps(
                {
                    "entries": list(graph.entries),
                    "profile": sorted(profile_ids) if profile_ids else [],
                    "roots": dict(sorted(graph.roots.items())),
                    "hot": ordered,
                    "functions": len(graph.functions),
                },
                indent=2,
            ))
            return 0
        for fid in ordered:
            why = graph.roots.get(fid)
            print(f"{fid}" + (f"  [{why}]" if why else ""))
        print(
            f"jets hotpath: {len(ordered)} of {len(graph.functions)} "
            f"functions on the hot path "
            f"({len(graph.roots)} entry roots"
            + (f", profile ∪ {len(profile_ids)} ids" if profile_ids else "")
            + ")"
        )
        return 0

    matches = graph.resolve(args.func)
    if not matches:
        print(
            f"jets hotpath: no function matches {args.func!r} "
            f"(try module:Class.method, Class.method, or a bare name)",
            file=sys.stderr,
        )
        return 2
    if args.format == "json":
        doc = []
        for fid in matches:
            chain = graph.chain(fid, profile_ids)
            doc.append({
                "id": fid,
                "hot": fid in hot,
                "chain": [
                    {"id": cid, "via": kind} for cid, kind in chain
                ] if chain else None,
            })
        print(json.dumps({"query": args.func, "matches": doc}, indent=2))
        return 0 if all(m["hot"] for m in doc) else 1
    cold = 0
    for fid in matches:
        chain = graph.chain(fid, profile_ids)
        if chain is None:
            cold += 1
            print(f"{fid}: NOT on the hot path (no entry reaches it)")
            continue
        print(f"{fid}: HOT — reached via:")
        for line in _render_chain(chain, graph):
            print(f"  {line}")
    return 1 if cold else 0
