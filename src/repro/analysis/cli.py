"""``jets lint`` / ``jets lint-trace`` subcommands.

Usage::

    jets lint [PATH ...] [--select RULES] [--min-severity LEVEL] [--list-rules]
    jets lint-trace RUN.jsonl [--run N] [--no-schema] [--no-lifecycle]

``jets lint`` runs the static rule sets over Python sources (default:
``src`` if present, else the current directory) and exits non-zero when
any finding at or above ``--min-severity`` survives the inline
``# repro: noqa[RULE]`` suppressions.  ``jets lint-trace`` validates a
recorded JSONL run against the trace schema registry and the lifecycle
state machines.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .framework import SEVERITIES, all_rules, lint_paths
from .tracecheck import TraceValidator

__all__ = [
    "build_lint_parser",
    "build_lint_trace_parser",
    "lint_main",
    "lint_trace_main",
]


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jets lint",
        description="Static invariant checks (trace schema, determinism, "
        "simkernel misuse) over Python sources.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: ./src or .)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--min-severity", choices=SEVERITIES, default="warning",
        help="findings below this level are reported but do not fail "
        "the run (default: warning)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def build_lint_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jets lint-trace",
        description="Validate a recorded JSONL trace against the schema "
        "registry and lifecycle state machines.",
    )
    parser.add_argument("tracefile", help="JSONL trace from --trace-out")
    parser.add_argument(
        "--run", type=int, default=None,
        help="validate only the given tagged run (default: each run)",
    )
    parser.add_argument(
        "--no-schema", action="store_true",
        help="skip category/payload schema checks",
    )
    parser.add_argument(
        "--no-lifecycle", action="store_true",
        help="skip lifecycle state-machine checks",
    )
    parser.add_argument(
        "--max-issues", type=int, default=50, metavar="N",
        help="print at most N issues per run (default: 50)",
    )
    return parser


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets lint`` entry point; returns the exit code."""
    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        for rule in sorted(all_rules(), key=lambda r: r.id):
            print(f"{rule.id}  [{rule.severity:7s}] {rule.description}")
        return 0
    paths = list(args.paths)
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]
    select = (
        [s for s in args.select.split(",") if s] if args.select else None
    )
    try:
        result = lint_paths(paths, select=select)
    except ValueError as exc:
        print(f"jets lint: {exc}", file=sys.stderr)
        return 2
    for error in result.errors:
        print(f"jets lint: {error}", file=sys.stderr)
    for finding in result.findings:
        print(finding.render())
    threshold = SEVERITIES.index(args.min_severity)
    failing = [
        f for f in result.findings
        if SEVERITIES.index(f.severity) >= threshold
    ]
    summary = ", ".join(
        f"{result.count(sev)} {sev}" for sev in reversed(SEVERITIES)
        if result.count(sev)
    )
    print(
        f"jets lint: {result.files} files checked — "
        + (summary if summary else "clean")
    )
    if result.errors:
        return 2
    return 1 if failing else 0


def lint_trace_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets lint-trace`` entry point; returns the exit code.

    Records stream through one incremental :class:`.TraceValidator` per
    tagged run — a spilled million-record dump validates in flat memory,
    never materialized as a list.
    """
    args = build_lint_trace_parser().parse_args(argv)
    from ..obs.export import iter_jsonl

    validators: dict[int, TraceValidator] = {}
    try:
        for run_id, rec in iter_jsonl(args.tracefile, run=args.run):
            validator = validators.get(run_id)
            if validator is None:
                validator = validators[run_id] = TraceValidator(
                    check_schema=not args.no_schema,
                    check_lifecycle=not args.no_lifecycle,
                )
            validator.feed(rec)
    except OSError as exc:
        print(f"jets lint-trace: cannot read {args.tracefile}: {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"jets lint-trace: bad trace file: {exc}", file=sys.stderr)
        return 2
    if not validators:
        if args.run is not None:
            print(f"jets lint-trace: no run {args.run} in {args.tracefile}",
                  file=sys.stderr)
        else:
            print(
                f"jets lint-trace: {args.tracefile} holds no trace records",
                file=sys.stderr,
            )
        return 2

    total = 0
    for run_id in sorted(validators):
        validator = validators[run_id]
        issues = validator.issues
        total += len(issues)
        tag = f"run {run_id}: " if len(validators) > 1 or run_id else ""
        for issue in issues[: args.max_issues]:
            print(f"{tag}{issue.render()}")
        if len(issues) > args.max_issues:
            print(f"{tag}... {len(issues) - args.max_issues} more issues")
        print(
            f"jets lint-trace: {tag}{validator.records_seen} records — "
            + (f"{len(issues)} issues" if issues else "valid")
        )
    return 1 if total else 0
