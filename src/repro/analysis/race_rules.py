"""Static happens-before and RNG-sharing hazards (HB*/RS* rules).

These rules power the static layer of ``jets sanitize``.  They lean on
:class:`repro.analysis.framework.Dataflow` — per-module def-use chains
plus detection of *callback boundaries* (function bodies that run as
simkernel callbacks: generator factories handed to ``env.process``,
callables registered on ``event.callbacks`` / ``subscribe`` /
``add_tap``).  Two callbacks of the same object may be delivered at the
same simulated timestamp in either order, so anything they share without
an explicit ordering edge is schedule-dependent state:

* **HB001** — shared mutable state (``self.attr`` or a closure variable)
  written from two or more distinct callbacks, with at least one
  read-modify-write or cross-callback read.  Last-writer-wins and
  increment races both look exactly like this.
* **HB002** — a function defined inside a loop capturing the loop
  variable by reference; when the function runs later (as a callback)
  every instance sees the *final* loop value.
* **RS001** — RNG stream aliasing: the same literal stream name drawn
  via ``.stream("name")`` from two or more distinct scopes.  Streams are
  deterministic *per consumer*; two entities interleaving draws from one
  stream make each draw's value depend on the event schedule.
* **RS002** — iteration over a set (directly or through a variable whose
  binding is a set expression) whose loop body schedules events: the
  hash-seed-dependent order becomes the event insertion order.  Dict
  views are deliberately excluded — dict iteration is insertion-ordered,
  which the deterministic kernel pins.

HB001 findings are warnings, not errors: a static pass cannot see
event-chain ordering edges (A's callback scheduled B, so B's callbacks
run strictly after A's).  When ordering is real, suppress with a
justification comment; when it is not, the dynamic
:class:`repro.analysis.hbmodel.HappensBeforeChecker` will usually find
the same pair at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from .framework import (
    Dataflow,
    Finding,
    Module,
    ProjectRule,
    Rule,
    register,
)

__all__ = [
    "SharedCallbackState",
    "LoopVariableCapture",
    "StreamAliasing",
    "SetOrderIntoSchedule",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_SCOPE_NODES = (ast.Module,) + _FUNC_NODES

#: Method names whose call schedules/settles simkernel events.
_SCHED_ATTRS = frozenset(
    {
        "process",
        "timeout",
        "schedule",
        "succeed",
        "fail",
        "put",
        "send",
        "request",
        "interrupt",
        "submit",
        "trigger",
    }
)


def _func_name(node: ast.AST) -> str:
    return getattr(node, "name", "<lambda>")


def _target_names(target: ast.expr) -> set[str]:
    """Names bound by a loop target (handles tuple unpacking)."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _def_scope(df: Dataflow, node: ast.AST, name: str) -> Optional[ast.AST]:
    """The innermost scope at/above ``node`` that assigns ``name``."""
    scope: Optional[ast.AST] = df.scope_of(node)
    while scope is not None:
        if df.defs(scope, name):
            return scope
        if isinstance(scope, ast.Module):
            return None
        nxt = df.scope_of(scope)
        scope = None if nxt is scope else nxt
    return None


@register
class SharedCallbackState(Rule):
    """Shared mutable state written from two or more callbacks.

    Tracks two sharing shapes: ``self.attr`` writes spread across
    distinct callback methods of one class, and writes through a closure
    variable (``state[...] = v``, ``total += n``) bound in a scope
    outside the writing callback.  A finding fires when at least two
    distinct callbacks write the same location *and* the location is
    also read from a callback (or any write is a read-modify-write) —
    pure double-initialisation without readers is noise.
    """

    id = "HB001"
    severity = "warning"
    description = "state written from multiple callbacks without ordering"
    example_bad = (
        "def writer_a(): shared['x'] = 1   # both run at t, either order\n"
        "def writer_b(): shared['x'] = 2"
    )
    example_good = (
        "done_a = writer_a_event()\n"
        "done_a.callbacks.append(writer_b)  # explicit ordering edge"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        df = module.dataflow
        if not df.callbacks:
            return
        # key -> {"writes": [(callback, node)], "rmw": bool, "read": bool}
        state: dict[tuple, dict] = {}

        def record_write(key: tuple, cb: ast.AST, node: ast.AST,
                         rmw: bool) -> None:
            entry = state.setdefault(
                key, {"writes": [], "rmw": False, "read": False}
            )
            entry["writes"].append((cb, node))
            entry["rmw"] = entry["rmw"] or rmw

        def record_read(key: tuple) -> None:
            entry = state.setdefault(
                key, {"writes": [], "rmw": False, "read": False}
            )
            entry["read"] = True

        def key_for(target: ast.expr, site: ast.AST) -> Optional[tuple]:
            """A stable identity for the written location, or None."""
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                cls = df.class_of(site)
                return ("self", id(cls), base.attr, base.attr)
            if isinstance(base, ast.Name):
                scope = _def_scope(df, site, base.id)
                cb = df.in_callback(site)
                if scope is None or cb is None or scope is cb:
                    return None  # local to the callback: not shared
                # Only shared if defined *outside* every callback that
                # touches it — scope being a non-callback ancestor.
                if df.in_callback(scope) is cb:
                    return None
                return ("name", id(scope), base.id, base.id)
            return None

        for node in ast.walk(module.tree):
            targets: list[tuple[ast.expr, bool]] = []
            if isinstance(node, ast.Assign):
                targets = [(t, False) for t in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [(node.target, False)]
            elif isinstance(node, ast.AugAssign):
                targets = [(node.target, True)]
            for target, rmw in targets:
                # Plain name rebinding is scope-local unless declared
                # nonlocal/global; only attribute/subscript stores (and
                # augmented stores) mutate shared structure.
                if isinstance(target, ast.Name) and not rmw:
                    continue
                cb = df.in_callback(node)
                if cb is None:
                    continue
                key = key_for(target, node)
                if key is not None:
                    record_write(key, cb, node, rmw)
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and df.in_callback(node) is not None
                ):
                    record_read(("self", id(df.class_of(node)), node.attr,
                                 node.attr))
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                base = node.value
                if isinstance(base, ast.Name):
                    cb = df.in_callback(node)
                    if cb is not None:
                        scope = _def_scope(df, node, base.id)
                        if scope is not None and scope is not cb:
                            record_read(("name", id(scope), base.id, base.id))

        for key, entry in state.items():
            writers = {cb for cb, _ in entry["writes"]}
            if len(writers) < 2 or not (entry["rmw"] or entry["read"]):
                continue
            first = min(entry["writes"], key=lambda w: w[1].lineno)
            names = ", ".join(sorted(_func_name(cb) for cb in writers))
            yield self.finding(
                module,
                first[1],
                f"'{key[3]}' is written from {len(writers)} callbacks "
                f"({names}) with no ordering edge; same-timestamp delivery "
                "order decides the outcome",
            )


@register
class LoopVariableCapture(Rule):
    """Function defined in a loop capturing the loop variable.

    Python closures capture *variables*, not values: every function
    created in the loop shares the single loop variable, and a callback
    that fires after the loop finishes sees its final value.  Bind the
    value explicitly (default argument or ``functools.partial``).
    """

    id = "HB002"
    severity = "warning"
    description = "callback captures loop variable by reference"
    example_bad = (
        "for job in jobs:\n"
        "    done.callbacks.append(lambda e: finish(job))  # all see last job"
    )
    example_good = (
        "for job in jobs:\n"
        "    done.callbacks.append(lambda e, job=job: finish(job))"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        df = module.dataflow
        parent_of = df.parent.get
        for func in ast.walk(module.tree):
            if not isinstance(func, _FUNC_NODES):
                continue
            # Loop targets between this function and its enclosing scope.
            loop_vars: set[str] = set()
            cur = parent_of(func)
            while cur is not None and not isinstance(cur, _SCOPE_NODES):
                if isinstance(cur, (ast.For, ast.AsyncFor)):
                    loop_vars |= _target_names(cur.target)
                cur = parent_of(cur)
            if not loop_vars:
                continue
            # An immediately-invoked function consumes the current value.
            parent = parent_of(func)
            if isinstance(parent, ast.Call) and parent.func is func:
                continue
            params = {
                a.arg
                for a in (
                    func.args.args
                    + func.args.kwonlyargs
                    + func.args.posonlyargs
                )
            }
            if func.args.vararg:
                params.add(func.args.vararg.arg)
            if func.args.kwarg:
                params.add(func.args.kwarg.arg)
            body = func.body if isinstance(func.body, list) else [func.body]
            captured: dict[str, ast.Name] = {}
            for stmt in body:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in loop_vars
                        and node.id not in params
                        and not df.defs(func, node.id)
                        and node.id not in captured
                    ):
                        captured[node.id] = node
            for name in sorted(captured):
                yield self.finding(
                    module,
                    func,
                    f"{_func_name(func)} captures loop variable '{name}' by "
                    "reference; late-firing callbacks all see its final "
                    f"value — bind it ({name}={name}) instead",
                )


@register
class StreamAliasing(ProjectRule):
    """One RNG stream name drawn from multiple scopes.

    ``RngRegistry.stream(name)`` returns *the same* underlying generator
    for a given name.  Two entities drawing from one stream interleave
    their draws, so each value depends on which entity ran first — i.e.
    on the event schedule.  Give each consumer its own stream (suffix
    the entity id into the name).
    """

    id = "RS001"
    severity = "warning"
    description = "RNG stream drawn from multiple scopes (aliasing)"
    example_bad = (
        'class Worker:  # every worker draws from one stream\n'
        '    def run(self): d = rng.stream("jitter").random()'
    )
    example_good = (
        "class Worker:\n"
        '    def run(self): d = rng.stream(f"jitter-{self.name}").random()'
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        sites: dict[str, list[tuple[Module, ast.Call, tuple]]] = {}
        for module in modules:
            df = module.dataflow
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "stream"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    scope = df.scope_of(node)
                    sites.setdefault(node.args[0].value, []).append(
                        (module, node, (module.path, id(scope)))
                    )
        for name, entries in sorted(sites.items()):
            scopes = {key for _, _, key in entries}
            if len(scopes) < 2:
                continue
            for module, node, _ in entries:
                yield self.finding(
                    module,
                    node,
                    f"RNG stream '{name}' is drawn from {len(scopes)} "
                    "scopes; interleaved draws make every value "
                    "schedule-dependent — give each consumer its own "
                    "stream name",
                )


@register
class SetOrderIntoSchedule(Rule):
    """Set iteration order flowing into event scheduling.

    DT004 flags iterating a set at all; this rule escalates when the
    loop body *schedules events* (``env.process``/``timeout``/``put``/
    ``send``/…), because then the hash-seed-dependent visit order
    becomes the event insertion order and every downstream tiebreak
    shifts.  The def-use pass also resolves one level of indirection:
    ``pending = set(...)`` … ``for t in pending:``.
    """

    id = "RS002"
    severity = "error"
    description = "set iteration order feeds event scheduling"
    example_bad = (
        "ready = {j.name for j in jobs}\n"
        "for name in ready: env.process(run(name))"
    )
    example_good = "for name in sorted(ready): env.process(run(name))"

    def check(self, module: Module) -> Iterator[Finding]:
        from .determinism_rules import _is_set_expr

        df = module.dataflow
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            it = node.iter
            set_typed = _is_set_expr(it)
            via = ""
            if not set_typed and isinstance(it, ast.Name):
                defs = df.reaching_defs(it, it.id)
                if defs and all(_is_set_expr(d) for d in defs):
                    set_typed = True
                    via = f" (bound to a set at line {defs[0].lineno})"
            if not set_typed:
                continue
            schedules = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _SCHED_ATTRS
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if schedules:
                yield self.finding(
                    module,
                    it,
                    f"loop over a set{via} schedules events in its body; "
                    "hash-seed iteration order becomes event order — "
                    "iterate sorted(...) instead",
                )
