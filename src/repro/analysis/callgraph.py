"""Project-wide call graph and hot-set computation for the perf lint.

Built on top of the per-module :class:`~.framework.Dataflow` pass, this
resolves a *static over-approximation* of the call graph across every
module in one lint invocation:

* **module-level and local calls** — ``f(...)`` resolves to a function
  named ``f`` in the same module, else to any module-level ``f`` in the
  project (imports are not tracked; name identity is the approximation);
* **method dispatch** — ``self.m(...)`` resolves within the enclosing
  class, then through its base classes by name; ``obj.m(...)`` falls
  back to *class-hierarchy-analysis by name*: every project method
  called ``m`` is a candidate (ubiquitous builtin-collection method
  names are excluded to keep the approximation useful);
* **process factories** — ``env.process(self._run(...))`` adds a
  ``process`` edge from the registering function to the factory, and
  the factory body itself is dispatched from the kernel event loop;
* **callback registrations** — callables handed to ``subscribe`` /
  ``add_tap`` / ``_add_callback`` / ``set_provenance`` or appended to
  ``*.callbacks`` get a ``callback`` edge from the registration site,
  and a ``dispatch`` edge from ``Environment.step``/``run`` (callbacks
  *run inside* the kernel loop, so if the kernel is in the analyzed
  set, every registered callback body is on the hot path).

The **hot set** is everything reachable from the declared kernel entry
points (:data:`DEFAULT_ENTRIES`), optionally unioned with functions
named by a measured profile (``jets bench --profile`` →
``BENCH_profile.json`` → ``jets lint --hot-profile``).  The perf rule
family (:mod:`.perf_rules`, PF001–PF006) escalates from warning to
error on this set, and ``jets hotpath`` dumps it and explains
reachability via shortest entry→function chains.

Over-approximation is the deliberate trade: a function wrongly *in*
the hot set gets a stricter severity on a real (if colder) hazard; a
function wrongly *out* still gets the warning-level finding.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import PurePath
from typing import Iterable, Optional, Sequence

from .framework import Module

__all__ = [
    "DEFAULT_ENTRIES",
    "FuncInfo",
    "ClassInfo",
    "CallGraph",
    "module_name_for",
    "shared_graph",
    "load_profile",
]

#: Declared kernel entry points, matched against ``Class.method`` /
#: function qualnames in any module.  These are the roots of the hot
#: set: the simkernel event loop, the event/process resume machinery,
#: the store/resource dispatch fixpoints, and the dispatcher/aggregator
#: message handlers the JETS scaling story hinges on.
DEFAULT_ENTRIES: tuple[str, ...] = (
    "Environment.step",
    "Environment.run",
    "Event.succeed",
    "Event.fail",
    "Process._resume",
    "Store._dispatch",
    "PriorityStore._dispatch",
    "FilterStore._dispatch",
    "Container._dispatch",
    "Resource._grant",
    "JetsDispatcher._handle_worker",
    "JetsDispatcher._scheduler_loop",
    "JetsDispatcher._health_monitor",
    "JetsDispatcher._on_worker_done",
    "JetsDispatcher._worker_lost",
    "JetsDispatcher._finish",
    "Aggregator.mark_ready",
    "Aggregator.place",
    "Aggregator.release",
    "WorkerAgent._body",
)

#: Entries whose bodies *drive* registered callbacks: if one of these is
#: in the analyzed set, every callback-registered function gets a
#: ``dispatch`` edge from it.
_DISPATCH_ENTRIES = ("Environment.step", "Environment.run")

#: Ubiquitous builtin-collection/str method names excluded from
#: name-based CHA: resolving ``d.items()`` to some project method named
#: ``items`` would drown the graph in false edges.
_CHA_SKIP = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "copy",
    "update", "keys", "values", "items", "setdefault", "add", "discard",
    "sort", "reverse", "count", "index", "join", "split", "rsplit",
    "strip", "lstrip", "rstrip", "format", "startswith", "endswith",
    "encode", "decode", "write", "writelines", "read", "readline",
    "flush", "popleft", "appendleft",
})

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    ``.../src/repro/simkernel/core.py`` → ``repro.simkernel.core``;
    files outside a ``src``/``repro`` root fall back to their stem, so
    fixture files analyzed standalone still get stable ids.
    """
    p = PurePath(path)
    parts = list(p.parts[:-1])
    if p.stem != "__init__":
        parts.append(p.stem)
    last_index = {part: i for i, part in enumerate(parts)}
    for anchor in ("src", "repro"):
        i = last_index.get(anchor)
        if i is not None:
            tail = parts[i + 1:] if anchor == "src" else parts[i:]
            if tail:
                return ".".join(tail)
    return parts[-1] if parts else p.stem or "module"


@dataclass
class FuncInfo:
    """One function/method node in the graph."""

    id: str           # "repro.simkernel.core:Environment.step"
    module: str
    qualname: str     # "Environment.step" / "main" / "outer.inner"
    name: str         # bare name
    path: str
    lineno: int
    node: Optional[ast.AST]   # None for the synthetic <module> node
    is_method: bool = False


@dataclass
class ClassInfo:
    """One project class, as seen by PF004 (slots audit)."""

    name: str
    module: str
    path: str
    node: ast.ClassDef
    slotted: bool
    is_exception: bool
    is_dataclass: bool = False
    base_names: tuple[str, ...] = ()


def _class_is_slotted(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def _class_is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _base_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[T]-style bases
        return _base_name(expr.value)
    return None


_EXC_SUFFIXES = ("Error", "Exception", "Warning", "Interrupt")
#: Bases that make instantiation a lookup or an already-compact layout.
_SLOT_EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "NamedTuple",
    "tuple", "TypedDict",
})


def _looks_exceptional(name: str) -> bool:
    return name.endswith(_EXC_SUFFIXES) or name in (
        "BaseException", "KeyboardInterrupt", "StopIteration",
    )


class CallGraph:
    """The project call graph; build once per lint run via :meth:`build`."""

    def __init__(self) -> None:
        #: function id -> FuncInfo
        self.functions: dict[str, FuncInfo] = {}
        #: caller id -> {callee id: edge kind}; kinds: call, method,
        #: cha, process, callback, dispatch, init
        self.edges: dict[str, dict[str, str]] = {}
        #: hot-set roots: id -> reason ("entry:<pattern>")
        self.roots: dict[str, str] = {}
        #: class name -> every project class with that name
        self.classes: dict[str, list[ClassInfo]] = {}
        self._by_node: dict[int, str] = {}
        self._by_name: dict[str, list[str]] = {}
        self._methods: dict[str, list[str]] = {}  # method name -> ids
        self._rev: Optional[dict[str, list[tuple[str, str]]]] = None
        self._hot_cache: dict[frozenset, frozenset] = {}
        self.entries: tuple[str, ...] = DEFAULT_ENTRIES

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        modules: Sequence[Module],
        entries: Sequence[str] = DEFAULT_ENTRIES,
    ) -> "CallGraph":
        graph = cls()
        graph.entries = tuple(entries)
        for module in modules:
            graph._index_module(module)
        for module in modules:
            graph._edges_for_module(module)
        graph._mark_entries(entries)
        graph._wire_dispatch(modules)
        return graph

    def _index_module(self, module: Module) -> None:
        mod = module_name_for(module.path)

        def visit(node: ast.AST, prefix: str, in_class: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNC_DEFS):
                    qual = f"{prefix}{child.name}" if prefix else child.name
                    self._add_function(
                        mod, qual, child, module.path, in_class
                    )
                    visit(child, f"{qual}.", False)
                elif isinstance(child, ast.ClassDef):
                    self._add_class(mod, child, module.path)
                    qual = (
                        f"{prefix}{child.name}" if prefix else child.name
                    )
                    visit(child, f"{qual}.", True)
                else:
                    visit(child, prefix, in_class)

        visit(module.tree, "", False)
        # Synthetic node for the module body, so module-level calls have
        # a caller and profiles can name "<module>" frames.
        self._add_function(mod, "<module>", None, module.path, False)

    def _add_function(
        self,
        mod: str,
        qualname: str,
        node: Optional[ast.AST],
        path: str,
        is_method: bool,
    ) -> None:
        fid = f"{mod}:{qualname}"
        if fid in self.functions:  # redefinition: keep the first
            if node is not None:
                self._by_node[id(node)] = fid
            return
        name = qualname.rsplit(".", 1)[-1]
        info = FuncInfo(
            id=fid, module=mod, qualname=qualname, name=name, path=path,
            lineno=getattr(node, "lineno", 0), node=node,
            is_method=is_method,
        )
        self.functions[fid] = info
        if node is not None:
            self._by_node[id(node)] = fid
        self._by_name.setdefault(name, []).append(fid)
        if is_method:
            self._methods.setdefault(name, []).append(fid)

    def _add_class(
        self, mod: str, node: ast.ClassDef, path: str
    ) -> None:
        bases = tuple(
            b for b in (_base_name(e) for e in node.bases) if b
        )
        info = ClassInfo(
            name=node.name, module=mod, path=path, node=node,
            slotted=_class_is_slotted(node),
            is_exception=_looks_exceptional(node.name)
            or any(_looks_exceptional(b) for b in bases),
            is_dataclass=_class_is_dataclass(node),
            base_names=bases,
        )
        self.classes.setdefault(node.name, []).append(info)

    # -- edges -------------------------------------------------------------

    def _add_edge(self, src: str, dst: str, kind: str) -> None:
        if src == dst:
            return
        self.edges.setdefault(src, {}).setdefault(dst, kind)

    def _caller_id(self, module: Module, node: ast.AST) -> str:
        """The graph id of the function whose body holds ``node``
        (lambdas are attributed to their enclosing named function)."""
        df = module.dataflow
        cur = df.enclosing_function(node)
        while cur is not None:
            fid = self._by_node.get(id(cur))
            if fid is not None:
                return fid
            cur = df.enclosing_function(cur)
        return f"{module_name_for(module.path)}:<module>"

    def _edges_for_module(self, module: Module) -> None:
        mod = module_name_for(module.path)
        df = module.dataflow
        for call in ast.walk(module.tree):
            if not isinstance(call, ast.Call):
                continue
            src = self._caller_id(module, call)
            func = call.func
            if isinstance(func, ast.Name):
                self._resolve_name_call(src, mod, func.id)
            elif isinstance(func, ast.Attribute):
                self._resolve_attr_call(src, module, call, func)
            # env.process(factory(...)): edge to the factory as well.
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "process"
                and call.args
                and isinstance(call.args[0], ast.Call)
            ):
                inner = call.args[0].func
                if isinstance(inner, ast.Name):
                    self._resolve_name_call(
                        src, mod, inner.id, kind="process"
                    )
                elif (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    self._resolve_self_call(
                        src, module, call, inner.attr, kind="process"
                    )

    def _resolve_name_call(
        self, src: str, mod: str, name: str, kind: str = "call"
    ) -> None:
        same = [
            fid for fid in self._by_name.get(name, [])
            if self.functions[fid].module == mod
            and not self.functions[fid].is_method
        ]
        if not same:
            same = [
                fid for fid in self._by_name.get(name, [])
                if not self.functions[fid].is_method
                and "." not in self.functions[fid].qualname
            ]
        for fid in same:
            self._add_edge(src, fid, kind)
        # Constructor call: edge into __init__ of the matching class.
        for cls_info in self.classes.get(name, []):
            init = f"{cls_info.module}:{cls_info.name}.__init__"
            if init in self.functions:
                self._add_edge(src, init, "init")

    def _resolve_self_call(
        self,
        src: str,
        module: Module,
        site: ast.AST,
        attr: str,
        kind: str = "method",
    ) -> None:
        df = module.dataflow
        cls = df.class_of(site)
        mod = module_name_for(module.path)
        seen: set[str] = set()
        queue = [cls.name] if cls is not None else []
        while queue:
            cname = queue.pop(0)
            if cname in seen:
                continue
            seen.add(cname)
            for cls_info in self.classes.get(cname, []):
                fid = f"{cls_info.module}:{cls_info.name}.{attr}"
                if fid in self.functions:
                    self._add_edge(src, fid, kind)
                    return
                queue.extend(cls_info.base_names)
        # Not found in the hierarchy: fall back to CHA by name.
        self._resolve_cha(src, attr, kind="cha")

    def _resolve_attr_call(
        self,
        src: str,
        module: Module,
        call: ast.Call,
        func: ast.Attribute,
    ) -> None:
        attr = func.attr
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            self._resolve_self_call(src, module, call, attr)
            return
        self._resolve_cha(src, attr, kind="cha")
        # Constructor via module attribute: hydra.JobResult(...)
        for cls_info in self.classes.get(attr, []):
            init = f"{cls_info.module}:{cls_info.name}.__init__"
            if init in self.functions:
                self._add_edge(src, init, "init")

    def _resolve_cha(self, src: str, attr: str, kind: str) -> None:
        if attr.startswith("__") or attr in _CHA_SKIP:
            return
        for fid in self._methods.get(attr, []):
            self._add_edge(src, fid, kind)

    def _mark_entries(self, entries: Sequence[str]) -> None:
        for fid, info in self.functions.items():
            for pattern in entries:
                if info.qualname == pattern or info.qualname.endswith(
                    "." + pattern
                ):
                    self.roots[fid] = f"entry:{pattern}"
                    break

    def _wire_dispatch(self, modules: Sequence[Module]) -> None:
        """``dispatch`` edges from the kernel loop to every registered
        callback body — callbacks *run inside* ``Environment.step``."""
        step_ids = [
            fid for fid, why in self.roots.items()
            if why.split(":", 1)[1] in _DISPATCH_ENTRIES
        ]
        if not step_ids:
            return
        for module in modules:
            for cb in module.dataflow.callbacks:
                fid = self._by_node.get(id(cb))
                if fid is None:
                    continue
                for step in step_ids:
                    self._add_edge(step, fid, "dispatch")
                # The registering function also reaches the callback.
                # (Dataflow does not record the site, so the dispatch
                # edge is the load-bearing one for reachability.)

    # -- queries -----------------------------------------------------------

    def id_of(self, node: ast.AST) -> Optional[str]:
        """Graph id of a function-def AST node, if indexed."""
        return self._by_node.get(id(node))

    def match_profile(self, profile_ids: Iterable[str]) -> set[str]:
        """Map profile function ids onto graph ids (exact, then
        qualname-suffix match)."""
        matched: set[str] = set()
        for pid in profile_ids:
            if pid in self.functions:
                matched.add(pid)
                continue
            qual = pid.rsplit(":", 1)[-1]
            for fid, info in self.functions.items():
                if info.qualname == qual or info.qualname.endswith(
                    "." + qual
                ):
                    matched.add(fid)
        return matched

    def hot_set(
        self, profile_ids: Optional[Iterable[str]] = None
    ) -> frozenset[str]:
        """Every function reachable from the entry roots (∪ profile)."""
        extra = (
            frozenset(self.match_profile(profile_ids))
            if profile_ids else frozenset()
        )
        cached = self._hot_cache.get(extra)
        if cached is not None:
            return cached
        seen: set[str] = set()
        queue = sorted(set(self.roots) | extra)
        while queue:
            fid = queue.pop()
            if fid in seen:
                continue
            seen.add(fid)
            for dst in self.edges.get(fid, {}):
                if dst not in seen:
                    queue.append(dst)
        result = frozenset(seen)
        self._hot_cache[extra] = result
        return result

    def _reverse(self) -> dict[str, list[tuple[str, str]]]:
        if self._rev is None:
            rev: dict[str, list[tuple[str, str]]] = {}
            for src, dsts in self.edges.items():
                for dst, kind in dsts.items():
                    rev.setdefault(dst, []).append((src, kind))
            for lst in rev.values():
                lst.sort()
            self._rev = rev
        return self._rev

    def chain(
        self, target: str, profile_ids: Optional[Iterable[str]] = None
    ) -> Optional[list[tuple[str, str]]]:
        """Shortest root→``target`` chain as ``[(id, edge kind), ...]``.

        The first element's kind is the root reason (``entry:...`` or
        ``profile``); returns None if ``target`` is not reachable.
        """
        roots = dict(self.roots)
        if profile_ids:
            for fid in self.match_profile(profile_ids):
                roots.setdefault(fid, "profile")
        if target in roots:
            return [(target, roots[target])]
        rev = self._reverse()
        # BFS backward from the target until any root is met.
        prev: dict[str, tuple[str, str]] = {}
        queue = [target]
        seen = {target}
        while queue:
            cur = queue.pop(0)
            for src, kind in rev.get(cur, []):
                if src in seen:
                    continue
                seen.add(src)
                prev[src] = (cur, kind)
                if src in roots:
                    chain = [(src, roots[src])]
                    node = src
                    while node != target:
                        nxt, kind = prev[node]
                        chain.append((nxt, kind))
                        node = nxt
                    return chain
                queue.append(src)
        return None

    def resolve(self, name: str) -> list[str]:
        """Graph ids matching a user-supplied function name: exact id,
        then ``Class.method`` qualname, then bare name."""
        if name in self.functions:
            return [name]
        matches = sorted(
            fid for fid, info in self.functions.items()
            if info.qualname == name
            or info.qualname.endswith("." + name)
        )
        if matches:
            return matches
        return sorted(self._by_name.get(name, []))


def shared_graph(modules: Sequence[Module]) -> CallGraph:
    """The per-lint-run CallGraph, built once and cached on the first
    module (every PF rule sees the same ``modules`` list)."""
    if not modules:
        return CallGraph()
    anchor = modules[0]
    cached = getattr(anchor, "_shared_callgraph", None)
    if cached is not None and cached[0] == len(modules):
        return cached[1]
    graph = CallGraph.build(modules)
    anchor._shared_callgraph = (len(modules), graph)
    return graph


def load_profile(path: str) -> tuple[set[str], dict]:
    """Read a ``BENCH_profile.json`` and return the union of profiled
    hot function ids across workloads, plus the raw document."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "workloads" not in doc:
        raise ValueError(
            f"{path}: not a bench profile (missing 'workloads')"
        )
    ids: set[str] = set()
    for entries in doc.get("workloads", {}).values():
        for entry in entries:
            fid = entry.get("id") if isinstance(entry, dict) else None
            if fid:
                ids.add(fid)
    return ids, doc
