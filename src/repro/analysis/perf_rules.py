"""Hot-path performance rules (PF001-PF007).

The JETS scaling story lives or dies in the per-event inner loops: the
kernel event loop, the store dispatch fixpoints, and the dispatcher /
aggregator message handlers sustain ~10k tasks/s only while they stay
allocation-lean.  These rules make that discipline machine-checked
instead of tribal: each pattern is a *warning* anywhere, escalated to
an *error* when the enclosing function is in the statically computed
hot set (see :mod:`.callgraph`), optionally widened by a measured
profile (``jets lint --hot-profile BENCH_profile.json``).

The rules are deliberately narrow — each trigger requires the hazard to
be demonstrably per-iteration or per-event cost (a loop-invariant copy,
a repeated attribute chain, formatting at a trace call site) so that a
clean ``src/`` stays achievable without blanketing the tree in noqa.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from .callgraph import CallGraph, shared_graph
from .framework import Finding, Module, ProjectRule, register

__all__ = ["set_hot_profile", "hot_profile"]

#: Function ids from a measured profile (``--hot-profile``); unioned
#: into the hot set for the duration of one lint invocation.
_HOT_PROFILE: Optional[frozenset[str]] = None


def set_hot_profile(ids: Optional[Sequence[str]]) -> None:
    """Install (or clear, with None) the measured hot profile."""
    global _HOT_PROFILE
    _HOT_PROFILE = frozenset(ids) if ids is not None else None


def hot_profile() -> Optional[frozenset[str]]:
    return _HOT_PROFILE


_LOOPS = (ast.For, ast.AsyncFor, ast.While)


class PerfRule(ProjectRule):
    """Base for PF rules: hot-set lookup + severity escalation."""

    severity = "warning"

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        graph = shared_graph(modules)
        hot = graph.hot_set(_HOT_PROFILE)
        for module in modules:
            yield from self.check_module(module, graph, hot)

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def is_hot(
        self,
        module: Module,
        graph: CallGraph,
        hot: frozenset[str],
        node: ast.AST,
    ) -> bool:
        """Whether ``node`` sits inside a hot-set function (any
        enclosing named function counts; lambdas inherit)."""
        df = module.dataflow
        cur = df.enclosing_function(node)
        while cur is not None:
            fid = graph.id_of(cur)
            if fid is not None and fid in hot:
                return True
            cur = df.enclosing_function(cur)
        return False

    def pf_finding(
        self, module: Module, node: ast.AST, message: str, hot: bool
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity="error" if hot else "warning",
            message=message + (" [hot path]" if hot else ""),
            hot=hot,
        )


def _enclosing_loop(module: Module, node: ast.AST) -> Optional[ast.AST]:
    """The innermost loop whose *body* re-executes ``node`` each
    iteration, within the same function.

    A ``for`` loop's ``iter``/``target`` expressions evaluate once, so
    a node reached through them is attributed to the next loop out (a
    ``while`` test, by contrast, does run per iteration).  The search
    stops at a function boundary.
    """
    df = module.dataflow
    prev: ast.AST = node
    cur = df.parent.get(node)
    while cur is not None:
        if isinstance(cur, (ast.For, ast.AsyncFor)):
            if prev is not cur.iter and prev is not cur.target:
                return cur
        elif isinstance(cur, ast.While):
            return cur
        elif isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return None
        prev = cur
        cur = df.parent.get(cur)
    return None


def _names_bound_in(node: ast.AST) -> set[str]:
    """Every name bound anywhere inside ``node`` (loop targets,
    assignments, with-items, comprehension targets, func params)."""
    bound: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            bound.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(sub.name)
        elif isinstance(sub, ast.arg):
            bound.add(sub.arg)
    return bound


_BUILTIN_COPIES = frozenset({"list", "dict", "set", "tuple", "frozenset"})
_LAZY_REDUCERS = frozenset({"sum", "min", "max", "any", "all"})


@register
class AllocationInEventLoop(PerfRule):
    """Per-iteration allocation that a hoist or a generator removes.

    Two shapes: (a) a builtin copy — ``list(x)`` / ``dict(x)`` /
    ``set(x)`` / ``tuple(x)`` — inside a loop whose argument is not
    rebound by the loop, so the identical copy is rebuilt every
    iteration; (b) ``sum``/``min``/``max``/``any``/``all`` over a list
    comprehension, which materializes a throwaway list where a
    generator expression streams.  On the kernel event path either
    shape turns into an allocation per *event*, which is exactly the
    churn PR 5's slots/inline-heappush work removed.  Copies that are
    semantically required (snapshots of mutating state) take a
    ``# repro: noqa[PF001]`` with the reason.
    """

    id = "PF001"
    description = (
        "allocation in a per-event loop (loop-invariant copy or "
        "reducer over a list comprehension); error on the hot path"
    )
    example_bad = (
        "while self.queue:\n"
        "    for view in list(self.workers):  # same copy every pass\n"
        "        view.poll()"
    )
    example_good = (
        "views = list(self.workers)\n"
        "while self.queue:\n"
        "    for view in views:\n"
        "        view.poll()"
    )

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        bound_cache: dict[int, set[str]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Name):
                continue
            if (
                func.id in _LAZY_REDUCERS
                and node.args
                and isinstance(node.args[0], ast.ListComp)
            ):
                yield self.pf_finding(
                    module, node,
                    f"{func.id}() over a list comprehension "
                    "materializes a throwaway list; use a generator "
                    "expression",
                    self.is_hot(module, graph, hot, node),
                )
                continue
            if (
                func.id in _BUILTIN_COPIES
                and len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Name)
            ):
                loop = _enclosing_loop(module, node)
                if loop is None:
                    continue
                bound = bound_cache.get(id(loop))
                if bound is None:
                    bound = bound_cache[id(loop)] = _names_bound_in(loop)
                arg = node.args[0].id
                if arg in bound or func.id in bound:
                    continue
                yield self.pf_finding(
                    module, node,
                    f"loop-invariant {func.id}({arg}) rebuilt every "
                    "iteration; hoist the copy out of the loop",
                    self.is_hot(module, graph, hot, node),
                )


def _attr_chain(node: ast.Attribute) -> Optional[tuple[str, ...]]:
    """``self.platform.trace.log`` → ("self","platform","trace","log");
    None if the chain is broken by a call/subscript or non-Name root."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    return tuple(parts)


@register
class UnhoistedAttributeChain(PerfRule):
    """The same multi-step attribute chain resolved repeatedly in one
    loop.

    ``self.platform.trace.log(...)`` costs three dict lookups per call;
    executed twice (or more) per iteration of a per-event loop that is
    measurable interpreter overhead the compiler will not remove.  The
    fix is one line: bind the chain to a local before the loop
    (``log = self.platform.trace.log``).  Chains rooted at a name the
    loop rebinds are exempt (the lookup genuinely differs per
    iteration), as are chains interrupted by calls or subscripts.
    """

    id = "PF002"
    description = (
        "multi-step attribute chain resolved 2+ times per loop "
        "iteration; hoist to a local (error on the hot path)"
    )
    example_bad = (
        "while True:\n"
        "    msg = yield sock.recv()\n"
        "    self.platform.trace.log(...)\n"
        "    self.platform.trace.log(...)"
    )
    example_good = (
        "log = self.platform.trace.log\n"
        "while True:\n"
        "    msg = yield sock.recv()\n"
        "    log(...)\n"
        "    log(...)"
    )

    #: Minimum attribute links (a.b.c = 2 links) for a chain to count.
    min_links = 2

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        df = module.dataflow
        # innermost loop id -> chain -> [attribute nodes]
        per_loop: dict[int, dict[tuple[str, ...], list[ast.Attribute]]]
        per_loop = {}
        loops: dict[int, ast.AST] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            parent = df.parent.get(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # not the maximal chain
            chain = _attr_chain(node)
            if chain is None or len(chain) - 1 < self.min_links:
                continue
            loop = _enclosing_loop(module, node)
            if loop is None:
                continue
            loops[id(loop)] = loop
            per_loop.setdefault(id(loop), {}).setdefault(
                chain, []
            ).append(node)
        bound_cache: dict[int, set[str]] = {}
        for loop_key, chains in per_loop.items():
            loop = loops[loop_key]
            bound = bound_cache.get(loop_key)
            if bound is None:
                bound = bound_cache[loop_key] = _names_bound_in(loop)
            for chain, nodes in chains.items():
                if len(nodes) < 2 or chain[0] in bound:
                    continue
                first = min(
                    nodes, key=lambda n: (n.lineno, n.col_offset)
                )
                dotted = ".".join(chain)
                yield self.pf_finding(
                    module, first,
                    f"attribute chain '{dotted}' resolved "
                    f"{len(nodes)}x per loop iteration; bind it to a "
                    "local before the loop",
                    self.is_hot(module, graph, hot, first),
                )


def _is_trace_log_call(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "log"):
        return False
    recv = func.value
    if isinstance(recv, ast.Name):
        return recv.id == "trace"
    if isinstance(recv, ast.Attribute):
        return recv.attr == "trace"
    return False


def _formatted_exprs(expr: ast.expr) -> Iterator[ast.expr]:
    """Eager string-formatting sub-expressions of a call argument."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.JoinedStr):
            if any(
                isinstance(v, ast.FormattedValue) for v in sub.values
            ):
                yield sub
        elif isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mod):
            left = sub.left
            if isinstance(left, ast.Constant) and isinstance(
                left.value, str
            ):
                yield sub
        elif isinstance(sub, ast.Call):
            f = sub.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "format"
                and isinstance(f.value, ast.Constant)
                and isinstance(f.value.value, str)
            ):
                yield sub


@register
class FormattingAtTraceCallSite(PerfRule):
    """String formatting evaluated eagerly inside a ``trace.log`` call.

    ``trace.log`` runs once per traced event; an f-string (or ``%`` /
    ``.format``) in its arguments is formatted *before* the call, so
    the cost is paid even when every sink drops the record.  Payload
    fields should carry the raw values — the exporter renders them
    lazily, and goldens stay byte-stable because rendering is
    centralized.  This is the trace-call-site audit for the obs layer:
    on the dispatcher/aggregator event path one f-string per message is
    a measurable slice of the 10k tasks/s budget.
    """

    id = "PF003"
    description = (
        "eager string formatting (f-string/%/.format) inside a "
        "trace.log call site; error on the hot path"
    )
    example_bad = (
        'trace.log(t, "worker", "killed",\n'
        '          {"cause": f"protocol error: {kind!r}"})'
    )
    example_good = (
        'trace.log(t, "worker", "killed",\n'
        '          {"cause": "protocol error", "kind": kind})'
    )

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_trace_log_call(node):
                continue
            args = list(node.args) + [
                kw.value for kw in node.keywords if kw.value is not None
            ]
            is_hot = self.is_hot(module, graph, hot, node)
            for arg in args:
                for bad in _formatted_exprs(arg):
                    yield self.pf_finding(
                        module, bad,
                        "string formatted eagerly at a trace.log call "
                        "site; pass raw fields and let the exporter "
                        "render",
                        is_hot,
                    )


@register
class HotClassWithoutSlots(PerfRule):
    """Instantiating a slot-less dataclass on the hot path.

    Every instance of a class without ``__slots__`` carries a per-
    instance ``__dict__`` (~56+ bytes and a dict allocation); on the
    per-event path that multiplies by the event rate.  PR 5 already
    slotted the event hierarchy — this rule keeps new hot-path record
    classes honest.  Flagged when a project-defined, slot-less
    *dataclass* is instantiated *inside a loop*: error when the loop
    runs in a hot function (per-event allocation), warning elsewhere.
    Scoped to dataclasses deliberately: they advertise record
    semantics and take ``slots=True`` for free, while retrofitting
    ``__slots__`` onto service/facade classes is invasive and buys
    little (they are built once, not per event).  One-time setup
    instantiation is exempt even in hot functions; so are exception
    classes (raising is the slow path by definition).
    """

    id = "PF004"
    description = (
        "slot-less dataclass instantiated in a (hot-path) loop; "
        "declare it dataclass(slots=True)"
    )
    example_bad = (
        "class WorkerView:  # no __slots__\n"
        "    ...\n"
        "def _handle_worker(self, sock):\n"
        "    view = WorkerView(sock)  # hot: one __dict__ per message"
    )
    example_good = (
        "@dataclass(slots=True)\n"
        "class WorkerView:\n"
        "    ..."
    )

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                cname = func.id
            elif isinstance(func, ast.Attribute):
                cname = func.attr
            else:
                continue
            infos = graph.classes.get(cname)
            if not infos:
                continue
            if any(
                c.slotted
                or c.is_exception
                or not c.is_dataclass
                or set(c.base_names)
                & {
                    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
                    "NamedTuple", "tuple", "TypedDict", "Protocol",
                }
                for c in infos
            ):
                continue
            if _enclosing_loop(module, node) is None:
                continue
            is_hot = self.is_hot(module, graph, hot, node)
            yield self.pf_finding(
                module, node,
                f"class {cname} has no __slots__; each instance "
                "allocates a __dict__ — add __slots__ or "
                "dataclass(slots=True)",
                is_hot,
            )


@register
class TryInEventLoop(PerfRule):
    """``try``/``except`` setup inside a hot per-event loop.

    Entering a ``try`` block per iteration adds interpreter block-stack
    work on every event; hoisting the loop inside the ``try`` (or
    moving the guarded call out) pays it once.  Scoped to *hot*
    functions only: in cold driver/tooling code, per-item ``try`` is
    the normal error-recovery idiom and is deliberately not flagged.
    ``try`` blocks that contain a ``yield`` are exempt everywhere —
    catching :class:`Interrupt`/failure around a yield point is how
    simkernel process bodies are *supposed* to handle cancellation.
    """

    id = "PF005"
    description = (
        "try/except inside a per-event loop in a hot function "
        "(try-around-yield is exempt)"
    )
    example_bad = (
        "while self.queue:\n"
        "    try:\n"
        "        self._place(self.queue[0])\n"
        "    except KeyError:\n"
        "        break"
    )
    example_good = (
        "try:\n"
        "    while self.queue:\n"
        "        self._place(self.queue[0])\n"
        "except KeyError:\n"
        "    pass"
    )

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            if _enclosing_loop(module, node) is None:
                continue
            if any(
                isinstance(sub, (ast.Yield, ast.YieldFrom))
                for stmt in node.body
                for sub in ast.walk(stmt)
            ):
                continue
            if not self.is_hot(module, graph, hot, node):
                continue
            yield self.pf_finding(
                module, node,
                "try/except entered every iteration of a per-event "
                "loop; hoist the loop into the try or move the guarded "
                "call out",
                True,
            )


#: heapq's heap-maintenance functions (the query helpers — merge,
#: nlargest, nsmallest — are not heap *scheduling* and stay unflagged).
_HEAP_FNS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace"}
)

#: The one module allowed to own scheduling heaps: the kernel scheduler
#: (its calendar-queue overflow heap and the legacy explore engine).
_SCHEDULER_MODULE = "repro.simkernel.core"


@register
class HeapOutsideScheduler(PerfRule):
    """Direct ``heapq`` traffic outside the kernel scheduler.

    The event-loop flattening work moved scheduling off the flat
    ``heapq`` of per-event tuples onto the calendar queue precisely
    because sift-up/sift-down plus a tuple allocation per push is
    measurable at per-event rates — a new ``heappush`` on a hot path
    (worse, one pushing a tuple entry, which re-creates the old
    time-ordered-tuple pattern wholesale) quietly reintroduces the cost
    the kernel just shed.  Time/priority ordering belongs in
    :class:`~repro.simkernel.core.Environment`; only the scheduler
    module itself (its sorted-overflow structure and the legacy explore
    engine) owns a scheduling heap.  Genuine non-scheduling heaps (e.g.
    priority-ordered *items* in a store) take a
    ``# repro: noqa[PF007]`` with the reason.
    """

    id = "PF007"
    description = (
        "direct heapq use (or tuple heap entries) outside the kernel "
        "scheduler; error on the hot path"
    )
    example_bad = (
        "import heapq\n"
        "def _handle_worker(self, msg):\n"
        "    heapq.heappush(self.pending, (deadline, seq, msg))"
    )
    example_good = (
        "# schedule through the kernel instead of a private time heap\n"
        "self.env.timeout(deadline - self.env.now, value=msg)"
    )

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        from .callgraph import module_name_for

        if module_name_for(module.path) == _SCHEDULER_MODULE:
            return
        # Names bound by `from heapq import heappush [as push]` (plus
        # local aliases like `heappop = heapq.heappop`).
        local_heap_fns: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "heapq":
                for alias in node.names:
                    if alias.name in _HEAP_FNS:
                        local_heap_fns[alias.asname or alias.name] = (
                            alias.name
                        )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "heapq"
                and node.value.attr in _HEAP_FNS
            ):
                local_heap_fns[node.targets[0].id] = node.value.attr
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "heapq"
                and func.attr in _HEAP_FNS
            ):
                fname = func.attr
            elif isinstance(func, ast.Name) and func.id in local_heap_fns:
                fname = local_heap_fns[func.id]
            else:
                continue
            tuple_entry = (
                fname in ("heappush", "heappushpop", "heapreplace")
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Tuple)
            )
            detail = (
                " with a tuple entry (the flat-heap pattern the "
                "calendar queue replaced)"
                if tuple_entry
                else ""
            )
            yield self.pf_finding(
                module, node,
                f"heapq.{fname}(){detail} outside the kernel scheduler; "
                "schedule through the Environment calendar queue or "
                "justify the private heap",
                self.is_hot(module, graph, hot, node),
            )


_LIST_MAKERS = frozenset({"list", "sorted"})


def _is_list_typed(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.ListComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in _LIST_MAKERS
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        return _is_list_typed(expr.left) or _is_list_typed(expr.right)
    return False


@register
class ListMembershipInHotFunction(PerfRule):
    """O(n) membership test against a list in a hot function.

    ``x in some_list`` scans linearly; on the per-event path that turns
    the event loop quadratic as the list grows.  Flagged when every
    reaching definition of the tested name is list-typed (literal,
    comprehension, ``list()``/``sorted()`` call) — a set or frozenset
    makes the same test O(1).  Outside hot functions only membership
    tests *inside loops* warn; a one-off scan in cold code is fine.
    """

    id = "PF006"
    description = (
        "O(n) list-membership test in a hot function (or in a loop); "
        "use a set/frozenset"
    )
    example_bad = (
        "active = []  # job ids\n"
        "while self.queue:\n"
        "    if job.id in active: ..."
    )
    example_good = (
        "active = set()\n"
        "while self.queue:\n"
        "    if job.id in active: ..."
    )

    def check_module(
        self, module: Module, graph: CallGraph, hot: frozenset[str]
    ) -> Iterator[Finding]:
        df = module.dataflow
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if len(node.ops) != 1 or not isinstance(
                node.ops[0], (ast.In, ast.NotIn)
            ):
                continue
            target = node.comparators[0]
            if not isinstance(target, ast.Name):
                continue
            defs = df.reaching_defs(node, target.id)
            if not defs or not all(_is_list_typed(d) for d in defs):
                continue
            is_hot = self.is_hot(module, graph, hot, node)
            if not is_hot and _enclosing_loop(module, node) is None:
                continue
            yield self.pf_finding(
                module, node,
                f"membership test scans list '{target.id}' (O(n)); "
                "use a set/frozenset",
                is_hot,
            )
