"""Pluggable AST lint framework with ``# repro: noqa[RULE]`` suppressions.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
objects.  The runner owns file discovery, parsing, suppression handling
and severity filtering; rules stay declarative.  Repo-specific rule sets
live in :mod:`.trace_rules`, :mod:`.determinism_rules` and
:mod:`.simkernel_rules` and register themselves via :func:`register`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Type

__all__ = [
    "Severity",
    "Finding",
    "Module",
    "Dataflow",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "rules_for",
    "lint_source",
    "lint_paths",
    "LintResult",
]

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")
Severity = str

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9, ]+)\])?", re.IGNORECASE
)


def _iter_comments(
    source: str, lines: Sequence[str]
) -> Iterator[tuple[int, int, str]]:
    """Yield ``(lineno, col, text)`` for each comment token in ``source``.

    Falls back to a whole-line scan if tokenization fails (the caller has
    already ast-parsed the source, so that should not happen in practice).
    """
    import io
    import tokenize

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(lines, 1):
            if "#" in line:
                col = line.index("#")
                yield lineno, col, line[col:]


@dataclass(frozen=True, order=True, slots=True)
class Finding:
    """One rule violation, anchored to a source position."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str
    #: Whether the finding sits in a hot-set function (perf rules);
    #: surfaced as ``hot_path`` in ``--format json``.
    hot: bool = False

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


#: Nodes that open a new variable scope (module + function-likes).
_SCOPE_NODES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: Attribute method names whose callable argument becomes a simkernel
#: callback (delivered at event time, with no ordering guarantee among
#: same-time events).
_CALLBACK_REGISTERS = frozenset(
    {"subscribe", "add_tap", "_add_callback", "set_provenance"}
)


class Dataflow:
    """Intra-module def-use chains and simkernel callback boundaries.

    A deliberately lightweight, flow-insensitive pass over one parsed
    module, shared by the HB/RS race rules (:mod:`.race_rules`):

    * **def-use chains** — per scope (module body, each function/lambda),
      every name's assignment sites (:meth:`defs`, :meth:`reaching_defs`)
      and load sites (:meth:`uses`);
    * **callback boundaries** — the set of function nodes whose bodies
      run *as simkernel callbacks*: generator factories handed to
      ``env.process(...)``, and callables registered via
      ``*.callbacks.append(...)``, ``subscribe(...)``, ``add_tap(...)``,
      ``_add_callback(...)`` or ``set_provenance(...)``.  Two distinct
      callback bodies of one class may be delivered at the same sim time
      in either order, which is what HB001 leans on;
    * **loop captures** — for each ``for``/``while``/comprehension, the
      loop variables and the nested function nodes defined inside it
      (HB002's late-binding hazard).
    """

    def __init__(self, tree: ast.Module):
        self.tree = tree
        #: child node -> parent node, for upward walks.
        self.parent: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parent[child] = node
        #: scope node -> name -> assigned value expressions.
        self._defs: dict[ast.AST, dict[str, list[ast.expr]]] = {}
        #: scope node -> name -> Name load nodes.
        self._uses: dict[ast.AST, dict[str, list[ast.Name]]] = {}
        self._index_names()
        #: function nodes whose bodies execute as simkernel callbacks.
        self.callbacks: set[ast.AST] = set()
        self._detect_callbacks()

    # -- structure ---------------------------------------------------------

    def scope_of(self, node: ast.AST) -> ast.AST:
        """The innermost scope (function/lambda/module) holding ``node``."""
        cur = self.parent.get(node)
        while cur is not None and not isinstance(cur, _SCOPE_NODES):
            cur = self.parent.get(cur)
        return cur if cur is not None else self.tree

    def class_of(self, node: ast.AST) -> Optional[ast.ClassDef]:
        """The innermost enclosing class of ``node`` (None at module level)."""
        cur = self.parent.get(node)
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return cur
            cur = self.parent.get(cur)
        return None

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function/lambda holding ``node`` (None at module)."""
        scope = self.scope_of(node)
        return scope if isinstance(scope, _FUNC_NODES) else None

    def in_callback(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost *callback-boundary* function holding ``node``."""
        cur: Optional[ast.AST] = self.enclosing_function(node)
        while cur is not None:
            if cur in self.callbacks:
                return cur
            cur = self.enclosing_function(cur)
        return None

    # -- def-use chains ----------------------------------------------------

    def _index_names(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._add_def(target, target.id, node.value)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    self._add_def(node.target, node.target.id, node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    self._add_def(node.target, node.target.id, node.value)
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    self._add_def(node.target, node.target.id, node.value)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                scope = self.scope_of(node)
                self._uses.setdefault(scope, {}).setdefault(
                    node.id, []
                ).append(node)

    def _add_def(self, target: ast.AST, name: str, value: ast.expr) -> None:
        scope = self.scope_of(target)
        self._defs.setdefault(scope, {}).setdefault(name, []).append(value)

    def defs(self, scope: ast.AST, name: str) -> list[ast.expr]:
        """Assignment value expressions of ``name`` in ``scope`` alone."""
        return self._defs.get(scope, {}).get(name, [])

    def uses(self, scope: ast.AST, name: str) -> list[ast.Name]:
        """Load sites of ``name`` in ``scope`` alone."""
        return self._uses.get(scope, {}).get(name, [])

    def reaching_defs(self, node: ast.AST, name: str) -> list[ast.expr]:
        """Assignment sites of ``name`` visible from ``node``.

        Walks scopes outward and returns the *innermost* scope's def
        sites (Python's lexical lookup, flow-insensitively).
        """
        scope: Optional[ast.AST] = self.scope_of(node)
        while scope is not None:
            found = self._defs.get(scope, {}).get(name)
            if found:
                return found
            if isinstance(scope, ast.Module):
                break
            nxt = self.scope_of(scope)
            scope = None if nxt is scope else nxt
        return []

    # -- callback boundaries -----------------------------------------------

    def _detect_callbacks(self) -> None:
        local_funcs: dict[tuple[int, str], ast.AST] = {}
        methods: dict[tuple[int, str], ast.AST] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_funcs[(id(self.scope_of(node)), node.name)] = node
                parent = self.parent.get(node)
                if isinstance(parent, ast.ClassDef):
                    methods[(id(parent), node.name)] = node
        for call in ast.walk(self.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            attr = func.attr
            if attr == "process":
                # env.process(self._run()) / env.process(loop(...)):
                # the generator factory's body is the callback.
                for arg in call.args[:1]:
                    if isinstance(arg, ast.Call):
                        self._mark(arg.func, call, local_funcs, methods)
            elif attr in _CALLBACK_REGISTERS:
                for arg in call.args[:1]:
                    self._mark(arg, call, local_funcs, methods)
            elif attr == "append" and isinstance(func.value, ast.Attribute):
                if func.value.attr == "callbacks":
                    for arg in call.args[:1]:
                        self._mark(arg, call, local_funcs, methods)

    def _mark(
        self,
        ref: ast.AST,
        site: ast.AST,
        local_funcs: dict[tuple[int, str], ast.AST],
        methods: dict[tuple[int, str], ast.AST],
    ) -> None:
        if isinstance(ref, ast.Lambda):
            self.callbacks.add(ref)
            return
        if isinstance(ref, ast.Name):
            scope: Optional[ast.AST] = self.scope_of(site)
            while scope is not None:
                found = local_funcs.get((id(scope), ref.id))
                if found is not None:
                    self.callbacks.add(found)
                    return
                if isinstance(scope, ast.Module):
                    return
                nxt = self.scope_of(scope)
                scope = None if nxt is scope else nxt
            return
        if (
            isinstance(ref, ast.Attribute)
            and isinstance(ref.value, ast.Name)
            and ref.value.id == "self"
        ):
            cls = self.class_of(site)
            if cls is not None:
                found = methods.get((id(cls), ref.attr))
                if found is not None:
                    self.callbacks.add(found)


class Module:
    """One parsed source file handed to every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: line number -> frozenset of suppressed rule ids (empty = all).
        self.noqa: dict[int, frozenset[str]] = {}
        #: line number -> column of the noqa comment (for NQ001 findings).
        self.noqa_col: dict[int, int] = {}
        #: lines whose noqa actually suppressed at least one finding.
        self.used_noqa: set[int] = set()
        self._dataflow: Optional[Dataflow] = None
        # Tokenize so only genuine comments count: the noqa syntax quoted
        # in a docstring or string literal is documentation, not a
        # suppression (and must not trip NQ001 as "unused").
        for lineno, col, comment in _iter_comments(source, self.lines):
            m = _NOQA_RE.search(comment)
            if m:
                rules = m.group("rules")
                self.noqa[lineno] = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                ) if rules else frozenset()
                self.noqa_col[lineno] = col + m.start() + 1

    @property
    def dataflow(self) -> Dataflow:
        """The module's def-use/callback pass, built on first access."""
        if self._dataflow is None:
            self._dataflow = Dataflow(self.tree)
        return self._dataflow

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is noqa'd on ``line`` (usage is recorded for
        the unused-suppression check, NQ001)."""
        rules = self.noqa.get(line)
        if rules is None:
            return False
        if not rules or rule.upper() in rules:
            self.used_noqa.add(line)
            return True
        return False


class Rule:
    """Base class: subclasses set ``id``/``severity``/``description`` and
    implement :meth:`check`."""

    id: str = ""
    severity: Severity = "error"
    description: str = ""
    #: Optional snippets rendered by ``jets lint --explain RULE``.
    example_bad: str = ""
    example_good: str = ""

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: Module, node: ast.AST, message: str
    ) -> Finding:
        """A finding of this rule at ``node``'s position."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole lint set at once.

    Per-module rules can't see that a message kind sent in ``worker.py``
    is handled in ``dispatcher.py``; subclasses implement
    :meth:`check_project` over every parsed module instead of
    :meth:`check`.  The runner calls it exactly once per lint
    invocation, after all files are parsed.
    """

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        raise NotImplementedError


_RULES: list[Type[Rule]] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if any(r.id == rule_cls.id for r in _RULES):
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _RULES.append(rule_cls)
    return rule_cls


def all_rules() -> list[Type[Rule]]:
    """Every registered rule class (imports the built-in rule sets)."""
    from . import (  # noqa: F401
        determinism_rules,
        perf_rules,
        protocol_rules,
        race_rules,
        simkernel_rules,
        trace_rules,
    )

    return list(_RULES)


def rules_for(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Rule]:
    """Instantiate registered rules, filtered by ``select``/``ignore`` ids."""
    classes = all_rules()
    known = {c.id for c in classes}
    if select is not None:
        wanted = {s.upper() for s in select}
        unknown = wanted - known
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        classes = [c for c in classes if c.id in wanted]
    if ignore is not None:
        dropped = {s.upper() for s in ignore}
        unknown = dropped - known
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        classes = [c for c in classes if c.id not in dropped]
    return [c() for c in classes]


@register
class UnusedSuppression(Rule):
    """``# repro: noqa`` comment that suppresses nothing.

    A suppression matching no finding is dead weight: either the hazard
    it silenced was fixed (delete the comment) or the rule id is wrong —
    in which case the *real* finding is not suppressed at all.  Detection
    runs in the lint runner after every other rule has reported, and only
    when the full rule set is active: under ``--select``/``--ignore`` a
    noqa can look unused merely because its rule did not run.
    """

    id = "NQ001"
    severity = "warning"
    description = "suppression comment that suppresses no finding"
    example_bad = "x = compute()  # repro: noqa[DT001]  (nothing trips DT001 here)"
    example_good = "t = time.time()  # repro: noqa[DT001]  wall clock ok: log banner"

    def check(self, module: Module) -> Iterator[Finding]:
        # Emitted by the runner (see _unused_noqa); the class exists so
        # NQ001 shows up in --list-rules/--explain and can be --ignore'd.
        return iter(())


def _covers_all(rules: Sequence[Rule]) -> bool:
    """Whether the active set is the full registry (NQ001 gate)."""
    active = {r.id for r in rules}
    return all(c.id in active for c in all_rules())


def _unused_noqa(module: Module) -> Iterator[Finding]:
    """NQ001 findings for suppression lines that suppressed nothing."""
    for line, rules in sorted(module.noqa.items()):
        if line in module.used_noqa or "NQ001" in rules:
            continue
        label = ", ".join(sorted(rules)) if rules else "bare"
        yield Finding(
            path=module.path,
            line=line,
            col=module.noqa_col.get(line, 1),
            rule="NQ001",
            severity="warning",
            message=f"unused suppression ({label}): no finding matched",
        )


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)  # unreadable/unparsable

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def worst(self) -> Optional[Severity]:
        """The gravest severity present, or None."""
        present = {f.severity for f in self.findings}
        for sev in reversed(SEVERITIES):
            if sev in present:
                return sev
        return None


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Lint one source string; noqa suppressions applied.

    Project rules see a one-module world here — cross-module checks
    degrade to their standalone (fixture) behaviour.
    """
    if rules is None:
        rules = rules_for()
    tree = ast.parse(source, filename=path)
    module = Module(path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        raw = (
            rule.check_project([module])
            if isinstance(rule, ProjectRule)
            else rule.check(module)
        )
        for f in raw:
            if not module.suppressed(f.rule, f.line):
                findings.append(f)
    if _covers_all(rules):
        findings.extend(_unused_noqa(module))
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into .py files (sorted, deduped)."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            c = c.resolve()
            if c not in seen:
                seen.add(c)
                yield c


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every .py file under ``paths``.

    Per-module rules run file by file; project rules run once over the
    whole parsed set so cross-module invariants (a kind sent in one file,
    handled in another) are checked against the full picture.  Unused
    suppressions (NQ001) are reported last, once every rule — including
    project rules — has had its chance to consume a noqa.
    """
    rules = rules_for(select, ignore)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    result = LintResult()
    record_error = result.errors.append
    modules: list[Module] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text()
        except OSError as exc:
            record_error(f"{path}: {exc}")
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            record_error(f"{path}: syntax error: {exc}")
            continue
        module = Module(str(path), source, tree)
        modules.append(module)
        for rule in module_rules:
            for f in rule.check(module):
                if not module.suppressed(f.rule, f.line):
                    result.findings.append(f)
        result.files += 1
    if project_rules and modules:
        by_path = {m.path: m for m in modules}
        for rule in project_rules:
            for f in rule.check_project(modules):
                module = by_path.get(f.path)
                if module is None or not module.suppressed(f.rule, f.line):
                    result.findings.append(f)
    if _covers_all(rules):
        for module in modules:
            result.findings.extend(_unused_noqa(module))
    result.findings.sort()
    return result
