"""Pluggable AST lint framework with ``# repro: noqa[RULE]`` suppressions.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
objects.  The runner owns file discovery, parsing, suppression handling
and severity filtering; rules stay declarative.  Repo-specific rule sets
live in :mod:`.trace_rules`, :mod:`.determinism_rules` and
:mod:`.simkernel_rules` and register themselves via :func:`register`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Type

__all__ = [
    "Severity",
    "Finding",
    "Module",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "rules_for",
    "lint_source",
    "lint_paths",
    "LintResult",
]

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")
Severity = str

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9, ]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source position."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


class Module:
    """One parsed source file handed to every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: line number -> frozenset of suppressed rule ids (empty = all).
        self.noqa: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.lines, 1):
            m = _NOQA_RE.search(line)
            if m:
                rules = m.group("rules")
                self.noqa[lineno] = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                ) if rules else frozenset()

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is noqa'd on ``line``."""
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return not rules or rule.upper() in rules


class Rule:
    """Base class: subclasses set ``id``/``severity``/``description`` and
    implement :meth:`check`."""

    id: str = ""
    severity: Severity = "error"
    description: str = ""

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: Module, node: ast.AST, message: str
    ) -> Finding:
        """A finding of this rule at ``node``'s position."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole lint set at once.

    Per-module rules can't see that a message kind sent in ``worker.py``
    is handled in ``dispatcher.py``; subclasses implement
    :meth:`check_project` over every parsed module instead of
    :meth:`check`.  The runner calls it exactly once per lint
    invocation, after all files are parsed.
    """

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        raise NotImplementedError


_RULES: list[Type[Rule]] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if any(r.id == rule_cls.id for r in _RULES):
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _RULES.append(rule_cls)
    return rule_cls


def all_rules() -> list[Type[Rule]]:
    """Every registered rule class (imports the built-in rule sets)."""
    from . import (  # noqa: F401
        determinism_rules,
        protocol_rules,
        simkernel_rules,
        trace_rules,
    )

    return list(_RULES)


def rules_for(select: Optional[Iterable[str]] = None) -> list[Rule]:
    """Instantiate registered rules, optionally filtered by id."""
    classes = all_rules()
    if select is not None:
        wanted = {s.upper() for s in select}
        unknown = wanted - {c.id for c in classes}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        classes = [c for c in classes if c.id in wanted]
    return [c() for c in classes]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)  # unreadable/unparsable

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def worst(self) -> Optional[Severity]:
        """The gravest severity present, or None."""
        present = {f.severity for f in self.findings}
        for sev in reversed(SEVERITIES):
            if sev in present:
                return sev
        return None


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Lint one source string; noqa suppressions applied.

    Project rules see a one-module world here — cross-module checks
    degrade to their standalone (fixture) behaviour.
    """
    if rules is None:
        rules = rules_for()
    tree = ast.parse(source, filename=path)
    module = Module(path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        raw = (
            rule.check_project([module])
            if isinstance(rule, ProjectRule)
            else rule.check(module)
        )
        for f in raw:
            if not module.suppressed(f.rule, f.line):
                findings.append(f)
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into .py files (sorted, deduped)."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            c = c.resolve()
            if c not in seen:
                seen.add(c)
                yield c


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every .py file under ``paths``.

    Per-module rules run file by file; project rules run once over the
    whole parsed set so cross-module invariants (a kind sent in one file,
    handled in another) are checked against the full picture.
    """
    rules = rules_for(select)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    result = LintResult()
    modules: list[Module] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text()
        except OSError as exc:
            result.errors.append(f"{path}: {exc}")
            continue
        try:
            result.findings.extend(
                lint_source(source, str(path), module_rules)
            )
            if project_rules:
                tree = ast.parse(source, filename=str(path))
                modules.append(Module(str(path), source, tree))
        except SyntaxError as exc:
            result.errors.append(f"{path}: syntax error: {exc}")
            continue
        result.files += 1
    if project_rules and modules:
        by_path = {m.path: m for m in modules}
        for rule in project_rules:
            for f in rule.check_project(modules):
                module = by_path.get(f.path)
                if module is None or not module.suppressed(f.rule, f.line):
                    result.findings.append(f)
    result.findings.sort()
    return result
