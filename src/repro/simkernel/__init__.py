"""Deterministic discrete-event simulation kernel.

The substrate every simulated component (cluster, network, MPI stack, JETS
middleware, Swift engine) is built on.  See :mod:`repro.simkernel.core` for
the scheduler, :mod:`repro.simkernel.resources` for synchronization
primitives, :mod:`repro.simkernel.monitor` for instrumentation, and
:mod:`repro.simkernel.rng` for reproducible random streams.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SchedulingOrder,
    SeededOrder,
    SimulationError,
    Timeout,
)
from .monitor import (
    Counter,
    Gauge,
    IntervalLog,
    StreamingTrace,
    Trace,
    TraceRecord,
    TraceSink,
)
from .resources import (
    Container,
    FilterStore,
    PriorityStore,
    Request,
    Resource,
    Store,
)
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "Gauge",
    "Interrupt",
    "IntervalLog",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "RngRegistry",
    "SchedulingOrder",
    "SeededOrder",
    "SimulationError",
    "Store",
    "StreamingTrace",
    "Timeout",
    "Trace",
    "TraceRecord",
    "TraceSink",
]
