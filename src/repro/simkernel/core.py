"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine in the style of SimPy.
Every other subsystem in this reproduction (cluster nodes, network fabric,
the JETS dispatcher, MPI bootstrap, the Swift dataflow engine) is expressed
as :class:`Process` coroutines scheduled by an :class:`Environment`.

Determinism: events are ordered by ``(time, priority, tiebreak, sequence)``
where the sequence number is a monotonically increasing counter, so two
runs with the same seed produce identical traces.  The ``tiebreak`` term is
0.0 by default (pure FIFO among same-time, same-priority events — the
historical ordering, bit-identical to older kernels); a pluggable
:class:`SchedulingOrder` may perturb it to systematically explore
alternative legal schedules (``jets explore``), exactly because any
ordering of simultaneous events is a schedule the real system could
exhibit.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SchedulingOrder",
    "SeededOrder",
    "SimulationError",
    "PENDING",
    "URGENT",
    "NORMAL",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Priority for events that must fire before same-time normal events.
URGENT = 0
#: Default event priority.
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary application-level reason
    (for example, the fault injector passes the failed node).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    Processes ``yield`` events to wait for them.  An event is *triggered*
    once :meth:`succeed` or :meth:`fail` has been called; its callbacks run
    when the scheduler pops it from the event heap.

    Events are the kernel's unit of allocation — a 512-node campaign
    churns through millions — so the whole hierarchy is ``__slots__``-ed
    and subclasses write their fields directly instead of paying for
    chained ``__init__`` double-writes.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set when a failed event's exception has been delivered somewhere,
        #: suppressing the "unhandled failure" error at teardown.
        self._defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled to fire)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined Environment._schedule fast path (succeed is the single
        # hottest scheduling site); the tiebreak and provenance branches
        # stay out of line (_fast is False whenever either is installed).
        env = self.env
        if env._fast:
            env._seq += 1
            heapq.heappush(env._heap, (env._now, NORMAL, env._seq, self))
        else:
            env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time via a
            # zero-delay relay event so ordering stays deterministic.
            _Relay(self.env, self, callback)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} at {id(self):#x}>"


class _Relay(Event):
    """Zero-delay bridge re-delivering an already-processed event.

    Mirrors the origin's outcome — including ``_defused``, so a late
    listener on an already-handled failure does not re-raise it at
    :meth:`Environment.step` — and delivers the *origin* (not itself) to
    the callback, so listeners can't tell a relayed delivery from a
    direct one.  If the listener defuses the origin's failure during
    delivery, that defusal propagates back to the relay too.
    """

    __slots__ = ("_origin", "_callback")

    def __init__(
        self,
        env: "Environment",
        origin: Event,
        callback: Callable[[Event], None],
    ):
        self.env = env
        self.callbacks = [self._fire]
        self._value = origin._value if origin._value is not PENDING else None
        self._ok = origin._ok
        self._defused = origin._defused
        self._origin = origin
        self._callback = callback
        env._schedule(self, URGENT)

    def _fire(self, _relay: Event) -> None:
        self._callback(self._origin)
        if not self._ok and self._origin._defused:
            self._defused = True


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__: timeouts are born triggered, so write
        # the final field values once instead of PENDING-then-overwrite.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        # Inlined Environment._schedule fast path (timeouts dominate the
        # heap in transfer-heavy campaigns).
        if env._fast:
            env._seq += 1
            heapq.heappush(
                env._heap, (env._now + delay, NORMAL, env._seq, self)
            )
        else:
            env._schedule(self, NORMAL, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout is triggered automatically")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout is triggered automatically")


class Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._schedule(self, URGENT)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator yields :class:`Event` instances.  The value of a yielded
    event is sent back into the generator; a failed event is thrown in as
    its exception.  The return value of the generator becomes the value of
    the process-as-event.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._generator is self.env._active_generator:
            raise SimulationError("a process cannot interrupt itself")
        bridge = Event(self.env)
        bridge._ok = False
        bridge._value = Interrupt(cause)
        bridge._defused = True
        bridge.callbacks.append(self._resume)
        self.env._schedule(bridge, URGENT)

    def _resume(self, event: Event) -> None:
        # Ignore resumptions from a stale target (e.g. the event we were
        # waiting on fires after an interrupt already moved us on).
        # is_alive / processed / _add_callback are inlined below: this is
        # the kernel's hottest function (every generator step runs it).
        if self._value is not PENDING:  # not alive
            if not event._ok:
                event._defused = True
            return
        if self._target is not None and event is not self._target and not isinstance(
            event._value, Interrupt
        ):
            if not event._ok:
                event._defused = True
            return
        env = self.env
        generator = self._generator
        env._active_process = self
        env._active_generator = generator
        try:
            while True:
                if event._ok:
                    next_target = generator.send(event._value)
                else:
                    event._defused = True
                    next_target = generator.throw(event._value)
                if not isinstance(next_target, Event):
                    next_target = generator.throw(
                        SimulationError(
                            f"process {self.name!r} yielded a non-event: "
                            f"{next_target!r}"
                        )
                    )
                if next_target.env is not env:
                    raise SimulationError("yielded event from another environment")
                self._target = next_target
                callbacks = next_target.callbacks
                if callbacks is None:  # processed: loop with its value
                    event = next_target
                    continue
                callbacks.append(self._resume)
                break
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = stop.value
            self.env._schedule(self, NORMAL)
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            self._defused = False
            self.env._schedule(self, NORMAL)
        finally:
            self.env._active_process = None
            self.env._active_generator = None


class Condition(Event):
    """Waits for a set of events per an evaluation function."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event], evaluate):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self._events:
            self._ok = True
            self._value = {}
            env._schedule(self, NORMAL)
            return
        for ev in self._events:
            if ev.processed:
                self._on_event(ev)
            else:
                ev._add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self._ok = False
            self._value = event._value
            self.env._schedule(self, NORMAL)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self._ok = True
            self._value = {
                ev: ev._value for ev in self._events if ev.triggered and ev._ok
            }
            self.env._schedule(self, NORMAL)


class AllOf(Condition):
    """Triggers when all given events have succeeded (fails on first failure)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda evs, count: count == len(evs))


class AnyOf(Condition):
    """Triggers when at least one of the given events has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda evs, count: count >= 1)


class SchedulingOrder:
    """Policy for ordering simultaneous same-priority events.

    The scheduler pops ``(time, priority, tiebreak, seq)``; the default
    order returns a constant 0.0 tiebreak, reducing the key to the
    historical ``(time, priority, seq)`` FIFO — existing runs stay
    bit-identical.  Subclasses return other tiebreaks to permute ties:
    every permutation is a schedule the real (asynchronous) system could
    exhibit, which is what the bounded schedule explorer leans on.
    """

    __slots__ = ()

    def tiebreak(self, event: "Event") -> float:
        """Tiebreak key for one newly scheduled event (lower pops first)."""
        return 0.0


class SeededOrder(SchedulingOrder):
    """Deterministic pseudo-random tie permutation.

    Draws each tiebreak from an inline xorshift64* stream so the kernel
    needs no RNG dependency and two runs with the same seed replay the
    same schedule exactly.  Seed 0 is reserved for the FIFO baseline.
    """

    __slots__ = ("seed", "_state")

    _MASK = (1 << 64) - 1
    _MIX = 0x2545F4914F6CDD1D
    _GOLDEN = 0x9E3779B97F4A7C15

    def __init__(self, seed: int):
        self.seed = int(seed)
        if self.seed == 0:
            self._state = None  # FIFO baseline: constant tiebreak
        else:
            self._state = (self.seed ^ self._GOLDEN) & self._MASK or self._MIX

    def tiebreak(self, event: "Event") -> float:
        if self._state is None:
            return 0.0
        x = self._state
        x ^= x >> 12
        x = (x ^ (x << 25)) & self._MASK
        x ^= x >> 27
        self._state = x or self._GOLDEN
        return ((x * self._MIX) & self._MASK) / float(1 << 64)


class Environment:
    """The simulation clock and event scheduler.

    Example::

        env = Environment()

        def proc(env):
            yield env.timeout(5)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5.0
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_order",
        "_fast",
        "_prov",
        "_cause",
        "_active_process",
        "_active_generator",
        "events_processed",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        order: Optional[SchedulingOrder] = None,
    ):
        self._now = float(initial_time)
        # Heap entries are ``(time, priority, seq, event)`` under the
        # default FIFO order and ``(time, priority, tiebreak, seq, event)``
        # when a SchedulingOrder injects tiebreaks; consumers only touch
        # ``entry[0]`` (time) and ``entry[-1]`` (event), so both arities
        # coexist with the comparison semantics unchanged per-environment.
        self._heap: list[tuple] = []
        self._seq = 0
        self._order = order
        #: Event-provenance hook (``hook(cause, event, when)``) and the
        #: event whose callbacks are currently being delivered.  Both are
        #: observation-only: installing a hook never changes event order.
        self._prov: Optional[Callable] = None
        self._cause: Optional[Event] = None
        # The inlined scheduling fast paths (Event.succeed and
        # Timeout.__init__) are legal only when neither a tiebreak order
        # nor a provenance hook needs to see the schedule.
        self._fast = order is None
        self._active_process: Optional[Process] = None
        self._active_generator: Optional[Generator] = None
        #: Events popped and delivered so far (read by ``jets bench``).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def set_provenance(self, hook: Optional[Callable]) -> None:
        """Install (or clear, with ``None``) the event-provenance hook.

        ``hook(cause, event, when)`` is invoked for every scheduled
        event: ``cause`` is the event whose callbacks were being
        delivered at schedule time (``None`` for events scheduled from
        outside the delivery loop, e.g. setup code), ``event`` the newly
        scheduled one, and ``when`` its delivery time.  Together these
        calls expose the kernel's true causal forest — event B scheduled
        during the delivery of A cannot happen without A — which the
        happens-before checker (:mod:`repro.analysis.hbmodel`) folds
        into vector clocks.

        Observation-only: heap-entry arity and event ordering follow the
        :class:`SchedulingOrder` exactly as without a hook, so the
        default FIFO schedule stays byte-identical.  Installing a hook
        mid-``run()`` takes effect for scheduling immediately but for
        cause tracking only at the next ``run()``/``step()`` call.
        """
        self._prov = hook
        self._fast = self._order is None and hook is None

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        if self._order is None:
            # Fast path: the FIFO baseline needs no tiebreak slot at all.
            heapq.heappush(
                self._heap,
                (self._now + delay, priority, self._seq, event),
            )
        else:
            heapq.heappush(
                self._heap,
                (
                    self._now + delay,
                    priority,
                    self._order.tiebreak(event),
                    self._seq,
                    event,
                ),
            )
        if self._prov is not None:
            self._prov(self._cause, event, self._now + delay)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise SimulationError("no more events")
        entry = heapq.heappop(self._heap)
        when, event = entry[0], entry[-1]
        self._now = when
        self.events_processed += 1
        if self._prov is not None:
            self._cause = event
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        self._cause = None
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(
                repr(exc)
            )

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run up to that time), or an :class:`Event` (run until it fires and
        return its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until is in the past")

        # Inlined hot loop (equivalent to repeated `step()` calls): all
        # events at one timestamp are popped in a single inner batch,
        # skipping the per-event peek/stop checks that can't change
        # within a batch.  Events scheduled by a callback are never
        # earlier than `now`, so same-time arrivals join the current
        # batch in exactly the order `step()` would have popped them;
        # the stop event is still re-checked after every event so
        # `until`-capped runs process precisely the same prefix.
        heap = self._heap
        heappop = heapq.heappop
        # Hoisted: cause tracking is only paid for when a provenance hook
        # is installed (a hook installed mid-run starts tracking at the
        # next run() call).
        track = self._prov is not None
        try:
            while heap:
                # `callbacks is None` is the inlined `processed` property.
                if stop_event is not None and stop_event.callbacks is None:
                    if not stop_event._ok:
                        stop_event._defused = True
                        raise stop_event._value
                    return stop_event._value
                when = heap[0][0]
                if when > stop_time:
                    self._now = stop_time
                    return None
                self._now = when
                while heap and heap[0][0] == when:
                    event = heappop(heap)[-1]
                    self.events_processed += 1
                    if track:
                        self._cause = event
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc if isinstance(
                            exc, BaseException
                        ) else SimulationError(repr(exc))
                    if stop_event is not None and stop_event.callbacks is None:
                        break
        finally:
            if track:
                self._cause = None

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "simulation ran out of events before `until` event fired"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None
