"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine in the style of SimPy.
Every other subsystem in this reproduction (cluster nodes, network fabric,
the JETS dispatcher, MPI bootstrap, the Swift dataflow engine) is expressed
as :class:`Process` coroutines scheduled by an :class:`Environment`.

Determinism: events are ordered by ``(time, priority, tiebreak, sequence)``
where the sequence number is a monotonically increasing counter, so two
runs with the same seed produce identical traces.  The ``tiebreak`` term is
0.0 by default (pure FIFO among same-time, same-priority events — the
historical ordering, bit-identical to older kernels); a pluggable
:class:`SchedulingOrder` may perturb it to systematically explore
alternative legal schedules (``jets explore``), exactly because any
ordering of simultaneous events is a schedule the real system could
exhibit.

Two scheduler engines realize that one ordering contract:

* **FIFO calendar queue** (default, no :class:`SchedulingOrder`): events
  live in per-timestamp buckets — append-ordered lists addressed by an
  exact-float time key — with a small heap of *unique* bucket times as
  the sorted overflow for far-future/irregular timestamps.  Bucket
  entries are int handles (bare slot indices) into a freelist-recycled
  event table, so pushing an event allocates no tuple — the slot int
  already exists — and popping one is a cursor bump.  Exact-float keys are the same tie
  criterion the old heap used (``==`` on the time column), which keeps
  the FIFO schedule byte-identical to the heap-based kernels.
* **Legacy tiebreak heap** (any :class:`SchedulingOrder` installed): the
  flat ``heapq`` of ``(time, priority, tiebreak, seq, event)`` 5-tuples,
  unchanged, so ``jets explore`` permutations replay exactly.

See DESIGN.md §16 for the data layout and the legality argument for the
inline succeed→resume fast path.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SchedulingOrder",
    "SeededOrder",
    "SimulationError",
    "PENDING",
    "URGENT",
    "NORMAL",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Priority for events that must fire before same-time normal events.
URGENT = 0
#: Default event priority.
NORMAL = 1

#: Calendar entries are bare slot indices into the handle table — the
#: lane a handle sits in already encodes its priority, so no bits are
#: spent on it (and pushes reuse the existing slot int, allocating
#: nothing).  A *negative* entry ``~slot`` on an urgent lane heads a
#: two-entry callback pair (late listener on a processed event): its
#: slot holds the callback, the following entry's slot the origin event.

#: Hoisted allocator for the inlined event factories.
_new = object.__new__
_heappush = heapq.heappush


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary application-level reason
    (for example, the fault injector passes the failed node).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    Processes ``yield`` events to wait for them.  An event is *triggered*
    once :meth:`succeed` or :meth:`fail` has been called; its callbacks run
    when the scheduler pops it from the calendar queue.

    Events are the kernel's unit of allocation — a 512-node campaign
    churns through millions — so the whole hierarchy is ``__slots__``-ed
    and subclasses write their fields directly instead of paying for
    chained ``__init__`` double-writes.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set when a failed event's exception has been delivered somewhere,
        #: suppressing the "unhandled failure" error at teardown.
        self._defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled to fire)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        # _ok is already True: __init__ sets it and the only writers of
        # False (fail, interrupt bridges, conditions) never call succeed.
        self._value = value
        # Inlined Environment._insert fast path (succeed is the single
        # hottest scheduling site): append an int handle to the current
        # bucket's normal lane.  The tiebreak and provenance branches
        # stay out of line (_fast is False whenever either is installed).
        env = self.env
        if env._fast:
            lane = env._bnow
            if lane is not None:
                free = env._free
                if free:
                    slot = free.pop()
                    env._table[slot] = self
                else:
                    slot = len(env._table)
                    env._table.append(self)
                lane.append(slot)
            else:
                env._insert(self, NORMAL, env._now)
        else:
            env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: deliver at the current time through the
            # scheduler so ordering stays deterministic.  Fast mode pushes
            # a zero-alloc *callback pair* — two int handles on the
            # current bucket's urgent lane (the first complemented, so a
            # negative entry: its slot holds the callback, the next
            # entry's slot the origin) — in exactly the lane position a
            # relay event would occupy.  Outside fast mode (tiebreak order or provenance
            # hook installed, or no live current bucket) the allocating
            # :class:`_Relay` bridge keeps the observable behavior.
            env = self.env
            bucket = env._bcur
            if env._fast and bucket is not None:
                free = env._free
                table = env._table
                if free:
                    slot = free.pop()
                    table[slot] = callback
                else:
                    slot = len(table)
                    table.append(callback)
                if free:
                    oslot = free.pop()
                    table[oslot] = self
                else:
                    oslot = len(table)
                    table.append(self)
                lane = bucket[2]
                if lane is None:
                    bucket[2] = [~slot, oslot]
                else:
                    lane.append(~slot)
                    lane.append(oslot)
            else:
                _Relay(env, self, callback)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} at {id(self):#x}>"


class _Relay(Event):
    """Zero-delay bridge re-delivering an already-processed event.

    Mirrors the origin's outcome — including ``_defused``, so a late
    listener on an already-handled failure does not re-raise it at
    :meth:`Environment.step` — and delivers the *origin* (not itself) to
    the callback, so listeners can't tell a relayed delivery from a
    direct one.  If the listener defuses the origin's failure during
    delivery, that defusal propagates back to the relay too.
    """

    __slots__ = ("_origin", "_callback")

    def __init__(
        self,
        env: "Environment",
        origin: Event,
        callback: Callable[[Event], None],
    ):
        self.env = env
        self.callbacks = [self._fire]
        self._value = origin._value if origin._value is not PENDING else None
        self._ok = origin._ok
        self._defused = origin._defused
        self._origin = origin
        self._callback = callback
        env._schedule(self, URGENT)

    def _fire(self, _relay: Event) -> None:
        self._callback(self._origin)
        if not self._ok and self._origin._defused:
            self._defused = True


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__: timeouts are born triggered, so write
        # the final field values once instead of PENDING-then-overwrite.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        # Inlined Environment._insert fast path (timeouts dominate the
        # calendar in transfer-heavy campaigns): fixed-delay classes hash
        # to a handful of live buckets, so the common case is a bare
        # handle append with no heap traffic at all.
        if env._fast:
            t = env._now + delay
            bucket = env._buckets.get(t)
            if bucket is not None:
                free = env._free
                if free:
                    slot = free.pop()
                    env._table[slot] = self
                else:
                    slot = len(env._table)
                    env._table.append(self)
                bucket[0].append(slot)
            else:
                env._insert(self, NORMAL, t)
        else:
            env._schedule(self, NORMAL, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout is triggered automatically")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout is triggered automatically")


class Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._presume]
        self._value = None
        self._ok = True
        self._defused = False
        env._schedule(self, URGENT)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator yields :class:`Event` instances.  The value of a yielded
    event is sent back into the generator; a failed event is thrown in as
    its exception.  The return value of the generator becomes the value of
    the process-as-event.
    """

    __slots__ = ("_generator", "name", "_target", "_presume", "_gsend")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Bound-method caches: _resume is subscribed to an event on every
        # generator step and send() is called at least as often; creating
        # the bound method each time costs an allocation apiece.
        self._presume = self._resume
        self._gsend = generator.send
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        active = self.env._active_process
        if active is not None and active._generator is self._generator:
            raise SimulationError("a process cannot interrupt itself")
        bridge = Event(self.env)
        bridge._ok = False
        bridge._value = Interrupt(cause)
        bridge._defused = True
        bridge.callbacks.append(self._presume)
        self.env._schedule(bridge, URGENT)

    def _resume(self, event: Event) -> None:
        # Ignore resumptions from a stale target (e.g. the event we were
        # waiting on fires after an interrupt already moved us on).  The
        # common case — resumed by exactly the event we are waiting on —
        # is a single identity compare; only mismatches (first resume,
        # interrupts, stale wakeups, termination races) take the slow
        # branch.  is_alive / processed / _add_callback are inlined
        # below: this is the kernel's hottest function (every generator
        # step runs it).
        if event is not self._target:
            if self._value is not PENDING:  # not alive
                if not event._ok:
                    event._defused = True
                return
            if self._target is not None and not isinstance(
                event._value, Interrupt
            ):
                if not event._ok:
                    event._defused = True
                return
        env = self.env
        generator = self._generator
        gsend = self._gsend
        env._active_process = self
        try:
            while True:
                if event._ok:
                    next_target = gsend(event._value)
                else:
                    event._defused = True
                    next_target = generator.throw(event._value)
                if not isinstance(next_target, Event):
                    next_target = generator.throw(
                        SimulationError(
                            f"process {self.name!r} yielded a non-event: "
                            f"{next_target!r}"
                        )
                    )
                if next_target.env is not env:
                    raise SimulationError("yielded event from another environment")
                self._target = next_target
                callbacks = next_target.callbacks
                if callbacks is None:  # processed: loop with its value
                    event = next_target
                    continue
                # Zero-alloc succeed→resume fast path: the yielded event
                # already succeeded, nobody else listens to it, we are
                # the tail callback of a delivery that emptied its bucket
                # (_solo), and its handle sits at the current bucket's
                # normal-lane cursor with the urgent lane exhausted — so
                # the scheduler's very next pop would deliver exactly
                # this event to exactly this process.  Consume the handle
                # inline and keep stepping the generator without a
                # calendar round-trip.  Legality: DESIGN.md §16.
                if (
                    env._solo
                    and not callbacks
                    and next_target._value is not PENDING
                    and next_target._ok
                ):
                    bucket = env._bcur
                    if bucket is not None:
                        lane = bucket[0]
                        i = bucket[1]
                        if (
                            i < len(lane)
                            and env._table[lane[i]] is next_target
                            and (
                                bucket[2] is None
                                or bucket[3] >= len(bucket[2])
                            )
                        ):
                            slot = lane[i]
                            bucket[1] = i + 1
                            env._table[slot] = None
                            env._free.append(slot)
                            env.events_processed += 1
                            next_target.callbacks = None
                            event = next_target
                            continue
                callbacks.append(self._presume)
                break
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = stop.value
            self.env._schedule(self, NORMAL)
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            self._defused = False
            self.env._schedule(self, NORMAL)
        finally:
            env._active_process = None


class Condition(Event):
    """Waits for a set of events per an evaluation function."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event], evaluate):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self._events:
            self._ok = True
            self._value = {}
            env._schedule(self, NORMAL)
            return
        for ev in self._events:
            if ev.processed:
                self._on_event(ev)
            else:
                ev._add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self._ok = False
            self._value = event._value
            self.env._schedule(self, NORMAL)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self._ok = True
            self._value = {
                ev: ev._value for ev in self._events if ev.triggered and ev._ok
            }
            self.env._schedule(self, NORMAL)


class AllOf(Condition):
    """Triggers when all given events have succeeded (fails on first failure)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda evs, count: count == len(evs))


class AnyOf(Condition):
    """Triggers when at least one of the given events has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda evs, count: count >= 1)


class SchedulingOrder:
    """Policy for ordering simultaneous same-priority events.

    The scheduler pops ``(time, priority, tiebreak, seq)``; the default
    order returns a constant 0.0 tiebreak, reducing the key to the
    historical ``(time, priority, seq)`` FIFO — existing runs stay
    bit-identical.  Subclasses return other tiebreaks to permute ties:
    every permutation is a schedule the real (asynchronous) system could
    exhibit, which is what the bounded schedule explorer leans on.

    Installing *any* order (even the FIFO-equivalent base class) routes
    the environment onto the legacy 5-tuple heap engine; without one the
    calendar queue realizes the same FIFO contract without per-event
    tuple traffic.
    """

    __slots__ = ()

    def tiebreak(self, event: "Event") -> float:
        """Tiebreak key for one newly scheduled event (lower pops first)."""
        return 0.0


class SeededOrder(SchedulingOrder):
    """Deterministic pseudo-random tie permutation.

    Draws each tiebreak from an inline xorshift64* stream so the kernel
    needs no RNG dependency and two runs with the same seed replay the
    same schedule exactly.  Seed 0 is reserved for the FIFO baseline.
    """

    __slots__ = ("seed", "_state")

    _MASK = (1 << 64) - 1
    _MIX = 0x2545F4914F6CDD1D
    _GOLDEN = 0x9E3779B97F4A7C15

    def __init__(self, seed: int):
        self.seed = int(seed)
        if self.seed == 0:
            self._state = None  # FIFO baseline: constant tiebreak
        else:
            self._state = (self.seed ^ self._GOLDEN) & self._MASK or self._MIX

    def tiebreak(self, event: "Event") -> float:
        if self._state is None:
            return 0.0
        x = self._state
        x ^= x >> 12
        x = (x ^ (x << 25)) & self._MASK
        x ^= x >> 27
        self._state = x or self._GOLDEN
        return ((x * self._MIX) & self._MASK) / float(1 << 64)


class Environment:
    """The simulation clock and event scheduler.

    Example::

        env = Environment()

        def proc(env):
            yield env.timeout(5)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5.0

    Under the default FIFO order the scheduler is a calendar queue:

    ``_buckets``
        ``{time: [normal_lane, normal_cursor, urgent_lane, urgent_cursor]}``
        — one bucket per *exact* float timestamp.  Lanes are append-only
        lists of int handles; cursors index the next undelivered handle.
        The urgent lane is lazily allocated (URGENT events are only ever
        scheduled at the current time, so far-future buckets never carry
        one).
    ``_times``
        Min-heap of the *unique* live bucket timestamps — the sorted
        overflow structure.  A time is pushed exactly once (bucket
        creation) and popped only when its bucket has fully drained, so
        ``_times[0]`` is always the next delivery time.
    ``_table`` / ``_free``
        Handle table and its freelist.  A handle is a bare slot index
        (``~slot`` marks a callback-pair head, urgent lanes only); the
        object lives at ``_table[slot]`` until its handle is consumed,
        then the slot is recycled.  Pushing a handle reuses the slot
        int from the freelist (or ``len(table)``), so steady-state
        scheduling allocates nothing.
    ``_bnow`` / ``_bcur``
        Cache of the bucket at ``_now`` (its normal lane, and the bucket
        itself) or ``None`` — the target of the inlined
        :meth:`Event.succeed` / zero-delay :class:`Timeout` fast paths
        and of the inline succeed→resume consumption in
        :meth:`Process._resume`.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_order",
        "_fast",
        "_prov",
        "_cause",
        "_buckets",
        "_times",
        "_table",
        "_free",
        "_bnow",
        "_bcur",
        "_bpool",
        "_solo",
        "_active_process",
        "events_processed",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        order: Optional[SchedulingOrder] = None,
    ):
        self._now = float(initial_time)
        # Legacy engine (any SchedulingOrder installed): heap entries are
        # ``(time, priority, tiebreak, seq, event)`` 5-tuples.  Under the
        # default FIFO order the heap stays empty and the calendar-queue
        # fields below carry the schedule instead.
        self._heap: list[tuple] = []
        self._seq = 0
        self._order = order
        #: Event-provenance hook (``hook(cause, event, when)``) and the
        #: event whose callbacks are currently being delivered.  Both are
        #: observation-only: installing a hook never changes event order.
        self._prov: Optional[Callable] = None
        self._cause: Optional[Event] = None
        # The inlined scheduling fast paths (Event.succeed and
        # Timeout.__init__) are legal only when neither a tiebreak order
        # nor a provenance hook needs to see the schedule.
        self._fast = order is None
        # Calendar queue (see class docstring).
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []
        self._table: list[Optional[Event]] = []
        self._free: list[int] = []
        self._bnow: Optional[list[int]] = None
        self._bcur: Optional[list] = None
        #: Drained bucket objects, recycled by ``_insert``.  Workloads
        #: with mostly-unique timestamps (the overflow-heap stress case)
        #: would otherwise allocate three fresh lists per event.
        self._bpool: list[list] = []
        #: True while the delivery loop is running the *last* callback of
        #: the current event with the inline resume chain enabled — the
        #: per-delivery gate of the succeed→resume fast path.
        self._solo = False
        self._active_process: Optional[Process] = None
        #: Events popped and delivered so far (read by ``jets bench``).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event."""
        # Inlined Event.__init__ (no super-chain dispatch): this factory
        # sits on the succeed→resume fast path of relay-style workloads.
        ev = _new(Event)
        ev.env = self
        ev.callbacks = []
        ev._value = PENDING
        ev._ok = True
        ev._defused = False
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        # Inlined Timeout.__init__ (the extra call frame is measurable in
        # timeout-dominated campaigns); guarded or negative delays fall
        # through to the constructor and its error handling.
        if self._fast and delay >= 0:
            ev = _new(Timeout)
            ev.env = self
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._defused = False
            ev.delay = delay
            t = self._now + delay
            free = self._free
            if free:
                slot = free.pop()
                self._table[slot] = ev
            else:
                slot = len(self._table)
                self._table.append(ev)
            bucket = self._buckets.get(t)
            if bucket is not None:
                bucket[0].append(slot)
            else:
                # Inlined bucket-miss path (the common case for
                # irregular far-future delays): pooled bucket + overflow
                # registration, mirroring _insert for NORMAL priority.
                pool = self._bpool
                if pool:
                    bucket = pool.pop()
                    bucket[0].append(slot)
                else:
                    bucket = [[slot], 0, None, 0]
                self._buckets[t] = bucket
                _heappush(self._times, t)
                if t == self._now:
                    self._bnow = bucket[0]
                    self._bcur = bucket
            return ev
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def set_provenance(self, hook: Optional[Callable]) -> None:
        """Install (or clear, with ``None``) the event-provenance hook.

        ``hook(cause, event, when)`` is invoked for every scheduled
        event: ``cause`` is the event whose callbacks were being
        delivered at schedule time (``None`` for events scheduled from
        outside the delivery loop, e.g. setup code), ``event`` the newly
        scheduled one, and ``when`` its delivery time.  Together these
        calls expose the kernel's true causal forest — event B scheduled
        during the delivery of A cannot happen without A — which the
        happens-before checker (:mod:`repro.analysis.hbmodel`) folds
        into vector clocks.

        Observation-only: scheduler data structure and event ordering
        follow the :class:`SchedulingOrder` exactly as without a hook,
        so the default FIFO schedule stays byte-identical.  Installing a
        hook mid-``run()`` takes effect for scheduling immediately but
        for cause tracking only at the next ``run()``/``step()`` call.
        """
        self._prov = hook
        self._fast = self._order is None and hook is None

    def _insert(self, event: Event, priority: int, t: float) -> None:
        """Calendar-queue insert: handle allocation + bucket append.

        The general (non-inlined) path: creates the bucket and registers
        its time in the ``_times`` overflow heap on first use, and keeps
        the ``_bnow``/``_bcur`` current-bucket cache coherent.
        """
        if priority != NORMAL and priority != URGENT:
            raise SimulationError(f"unsupported priority {priority!r}")
        free = self._free
        if free:
            slot = free.pop()
            self._table[slot] = event
        else:
            slot = len(self._table)
            self._table.append(event)
        buckets = self._buckets
        bucket = buckets.get(t)
        if bucket is None:
            pool = self._bpool
            if pool:
                bucket = pool.pop()
                if priority == NORMAL:
                    bucket[0].append(slot)
                else:
                    bucket[2] = [slot]
            elif priority == NORMAL:
                bucket = [[slot], 0, None, 0]
            else:
                bucket = [[], 0, [slot], 0]
            buckets[t] = bucket
            heapq.heappush(self._times, t)
        elif priority == NORMAL:
            bucket[0].append(slot)
        else:
            lane = bucket[2]
            if lane is None:
                bucket[2] = [slot]
            else:
                lane.append(slot)
        if t == self._now:
            self._bnow = bucket[0]
            self._bcur = bucket

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if delay < 0.0:
            raise ValueError(f"negative delay {delay}")
        t = self._now + delay
        if self._order is None:
            self._insert(event, priority, t)
        else:
            self._seq += 1
            heapq.heappush(
                self._heap,
                (t, priority, self._order.tiebreak(event), self._seq, event),
            )
        if self._prov is not None:
            self._prov(self._cause, event, t)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._order is not None:
            return self._heap[0][0] if self._heap else float("inf")
        return self._times[0] if self._times else float("inf")

    def _bucket_drained(self, bucket: list) -> bool:
        return bucket[1] >= len(bucket[0]) and (
            bucket[2] is None or bucket[3] >= len(bucket[2])
        )

    def _retire_bucket(self, when: float) -> None:
        bucket = self._buckets.pop(when)
        heapq.heappop(self._times)
        bucket[0].clear()
        bucket[1] = 0
        bucket[2] = None
        bucket[3] = 0
        self._bpool.append(bucket)
        self._bnow = None
        self._bcur = None

    def step(self) -> None:
        """Process the next scheduled event."""
        if self._order is not None:
            if not self._heap:
                raise SimulationError("no more events")
            entry = heapq.heappop(self._heap)
            when, event = entry[0], entry[-1]
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
        else:
            times = self._times
            bucket = None
            while times:
                when = times[0]
                bucket = self._buckets[when]
                if not self._bucket_drained(bucket):
                    break
                self._retire_bucket(when)
                bucket = None
            if bucket is None:
                raise SimulationError("no more events")
            self._now = when
            self._bnow = bucket[0]
            self._bcur = bucket
            lane = bucket[2]
            if lane is not None and bucket[3] < len(lane):
                slot = lane[bucket[3]]
                if slot < 0:
                    # Two-entry callback pair: first slot holds the
                    # listener, second the already-processed origin.
                    slot = ~slot
                    oslot = lane[bucket[3] + 1]
                    bucket[3] += 2
                    callbacks = [self._table[slot]]
                    event = self._table[oslot]
                    self._table[slot] = None
                    self._table[oslot] = None
                    self._free.append(slot)
                    self._free.append(oslot)
                else:
                    bucket[3] += 1
                    event = self._table[slot]
                    self._table[slot] = None
                    self._free.append(slot)
                    callbacks, event.callbacks = event.callbacks, None
            else:
                slot = bucket[0][bucket[1]]
                bucket[1] += 1
                event = self._table[slot]
                self._table[slot] = None
                self._free.append(slot)
                callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        if self._prov is not None:
            self._cause = event
        for callback in callbacks:
            callback(event)
        self._cause = None
        if self._order is None:
            bucket = self._buckets.get(self._now)
            if bucket is not None and self._bucket_drained(bucket):
                self._retire_bucket(self._now)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(
                repr(exc)
            )

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run up to that time), or an :class:`Event` (run until it fires and
        return its value).
        """
        if self._order is not None:
            return self._run_ordered(until)
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until is in the past")

        # Inlined hot loop (equivalent to repeated `step()` calls): one
        # outer iteration drains one calendar bucket — every event at
        # that timestamp, urgent lane first — skipping the per-event
        # peek/stop checks that can't change within a batch.  Events
        # scheduled by a callback are never earlier than `now`, so
        # same-time arrivals append to the live bucket and join the
        # current batch in exactly the order `step()` would have popped
        # them; the stop event is still re-checked after every event so
        # `until`-capped runs process precisely the same prefix.
        times = self._times
        buckets = self._buckets
        table = self._table
        free = self._free
        bpool = self._bpool
        heappop = heapq.heappop
        # Hoisted: cause tracking is only paid for when a provenance hook
        # is installed (a hook installed mid-run starts tracking at the
        # next run() call).  The inline succeed→resume chain is enabled
        # only for uncapped-by-event, untracked runs: with a stop event
        # it could run events past the stop point, and with cause
        # tracking the consumed delivery would go unattributed.
        track = self._prov is not None
        chain = stop_event is None and not track
        try:
            while times:
                # `callbacks is None` is the inlined `processed` property.
                if stop_event is not None and stop_event.callbacks is None:
                    if not stop_event._ok:
                        stop_event._defused = True
                        raise stop_event._value
                    return stop_event._value
                when = times[0]
                if when > stop_time:
                    self._now = stop_time
                    return None
                self._now = when
                bucket = buckets[when]
                lane = bucket[0]
                self._bnow = lane
                self._bcur = bucket
                # Cached lane length: refreshed only when the cursor
                # catches up, so same-time arrivals appended mid-drain
                # are still seen.  The solo gate may read it stale — it
                # is a heuristic; the resume fast path revalidates
                # against live bucket state before consuming anything.
                n = len(lane)
                while True:
                    # The urgent lane drains first; within it, a
                    # negative handle (``~slot``) heads a two-entry pair
                    # (late listener on an already-processed event) and
                    # is delivered directly — the zero-alloc equivalent
                    # of a _Relay event in the same lane position.  A
                    # normal-lane pop implies the urgent lane is
                    # exhausted, so the solo gate there only has to
                    # check its own lane.
                    urgent = bucket[2]
                    if urgent is not None and bucket[3] < len(urgent):
                        i = bucket[3]
                        slot = urgent[i]
                        if slot < 0:
                            bucket[3] = i + 2
                            slot = ~slot
                            callback = table[slot]
                            table[slot] = None
                            free.append(slot)
                            oslot = urgent[i + 1]
                            event = table[oslot]
                            table[oslot] = None
                            free.append(oslot)
                            self.events_processed += 1
                            if track:
                                self._cause = event
                            self._solo = False
                            callback(event)
                            if not event._ok and not event._defused:
                                if self._bucket_drained(bucket):
                                    self._retire_bucket(when)
                                exc = event._value
                                raise exc if isinstance(
                                    exc, BaseException
                                ) else SimulationError(repr(exc))
                            if (
                                stop_event is not None
                                and stop_event.callbacks is None
                            ):
                                break
                            continue
                        bucket[3] = i + 1
                        solo = (
                            chain
                            and i + 1 >= len(urgent)
                            and bucket[1] >= n
                        )
                    else:
                        i = bucket[1]
                        if i >= n:
                            n = len(lane)
                            if i >= n:
                                break
                        bucket[1] = i + 1
                        slot = lane[i]
                        solo = chain and i + 1 >= n
                    event = table[slot]
                    table[slot] = None
                    free.append(slot)
                    self.events_processed += 1
                    if track:
                        self._cause = event
                    callbacks = event.callbacks
                    event.callbacks = None
                    if solo and len(callbacks) == 1:
                        self._solo = True
                        callbacks[0](event)
                    else:
                        self._solo = False
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        if self._bucket_drained(bucket):
                            self._retire_bucket(when)
                        exc = event._value
                        raise exc if isinstance(
                            exc, BaseException
                        ) else SimulationError(repr(exc))
                    if stop_event is not None and stop_event.callbacks is None:
                        break
                # Inlined _bucket_drained: once per bucket, but there is
                # one bucket per event in unique-timestamp workloads.
                if bucket[1] >= len(lane) and (
                    bucket[2] is None or bucket[3] >= len(bucket[2])
                ):
                    del buckets[when]
                    heappop(times)
                    lane.clear()
                    bucket[1] = 0
                    bucket[2] = None
                    bucket[3] = 0
                    bpool.append(bucket)
                self._bnow = None
                self._bcur = None
        finally:
            self._solo = False
            if track:
                self._cause = None

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "simulation ran out of events before `until` event fired"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def _run_ordered(self, until: Optional[float | Event] = None) -> Any:
        """Legacy heap engine: :meth:`run` under a :class:`SchedulingOrder`.

        Kept verbatim from the pre-calendar kernel so ``jets explore``
        schedule permutations (and their digests) replay exactly.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until is in the past")

        heap = self._heap
        heappop = heapq.heappop
        track = self._prov is not None
        try:
            while heap:
                if stop_event is not None and stop_event.callbacks is None:
                    if not stop_event._ok:
                        stop_event._defused = True
                        raise stop_event._value
                    return stop_event._value
                when = heap[0][0]
                if when > stop_time:
                    self._now = stop_time
                    return None
                self._now = when
                while heap and heap[0][0] == when:
                    event = heappop(heap)[-1]
                    self.events_processed += 1
                    if track:
                        self._cause = event
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc if isinstance(
                            exc, BaseException
                        ) else SimulationError(repr(exc))
                    if stop_event is not None and stop_event.callbacks is None:
                        break
        finally:
            if track:
                self._cause = None

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "simulation ran out of events before `until` event fired"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None
