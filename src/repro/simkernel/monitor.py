"""Instrumentation: traces, counters and time-weighted gauges.

The experiment harnesses derive every reported metric (utilization, task
rates, load levels) from :class:`Trace` records and :class:`Gauge` series
rather than ad-hoc bookkeeping inside the model, mirroring how the paper
instruments worker/task start/stop times (Section 6.1.5).

Two trace sinks implement the :class:`TraceSink` contract:

* :class:`Trace` — the default in-RAM indexed sink.  Every record is
  retained and indexed per category; post-hoc ``select``/``times``
  queries answer in O(matches).  Memory grows linearly with the run.
* :class:`StreamingTrace` — the bounded-memory sink.  Records flow
  through a retention window (a high-water-marked deque of interned
  compact records); older records spill to a JSONL segment file in the
  exact archival format :func:`repro.obs.export.to_jsonl` writes, so a
  spilled trace is a first-class ``jets report`` / ``jets lint-trace``
  input.  Consumers that need the full record stream subscribe
  (:meth:`TraceSink.subscribe`) and fold each record *at log time*,
  before any eviction — the subscriber contract guarantees every record
  is delivered exactly once, in log order.
"""

from __future__ import annotations

import json
import sys
from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .core import Environment

__all__ = [
    "TraceRecord",
    "TraceSink",
    "Trace",
    "StreamingTrace",
    "Counter",
    "Gauge",
    "IntervalLog",
    "sanitize",
    "record_line",
    "trailer_line",
]


def sanitize(value):
    """Best-effort conversion of a trace payload to JSON-safe data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [sanitize(v) for v in value]
    return str(value)


def record_line(
    rec: "TraceRecord", run: Optional[int] = None, label: str = ""
) -> str:
    """One record as its archival JSONL line (newline included).

    This is the *single* encoder for trace records on disk: the in-RAM
    exporter (:func:`repro.obs.export.to_jsonl`) and the streaming spill
    path both call it, so an in-RAM dump and a spilled streaming trace of
    the same run are byte-identical by construction.
    """
    line: dict = {"t": rec.time, "cat": rec.category}
    if rec.data is not None:
        line["data"] = sanitize(rec.data)
    if run is not None:
        line["run"] = run
    if label:
        line["label"] = label
    return json.dumps(line, separators=(",", ":")) + "\n"


def trailer_line(perf: dict, run: Optional[int] = None) -> str:
    """The ``{"meta": "perf"}`` trailer as a JSONL line."""
    trailer: dict = {"meta": "perf"}
    if run is not None:
        trailer["run"] = run
    trailer.update(sanitize(perf))
    return json.dumps(trailer, separators=(",", ":")) + "\n"


class TraceRecord:
    """One trace entry: (time, category, payload).

    A slotted plain class rather than a dataclass: traces are the
    densest allocation site in a run (every lifecycle transition, wire
    message, and counter tick is one record), and the frozen-dataclass
    ``object.__setattr__`` path plus per-instance ``__dict__`` cost
    measurably at fig09 scale.
    """

    __slots__ = ("time", "category", "data")

    def __init__(self, time: float, category: str, data: Any = None):
        self.time = time
        self.category = category
        self.data = data

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.data == other.data
        )

    def __hash__(self) -> int:
        return hash((self.time, self.category))

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time!r}, category={self.category!r}, "
            f"data={self.data!r})"
        )


class TraceSink:
    """The sink contract every trace implementation satisfies.

    Sinks accept :meth:`log` calls and fan each finished record out to
    registered subscribers *synchronously, in log order, exactly once* —
    before any retention policy may evict it.  Subscribers are plain
    callables taking one :class:`TraceRecord`; they must not log into
    the sink re-entrantly unless they guard against their own records
    (see :class:`repro.obs.progress.ProgressTracker`).
    """

    env: Environment

    def __init__(self, env: Environment):
        self.env = env
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def log(self, category: str, data: Any = None) -> None:
        raise NotImplementedError

    def subscribe(
        self, fn: Callable[[TraceRecord], None]
    ) -> Callable[[TraceRecord], None]:
        """Register ``fn`` to receive every future record; returns it."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`."""
        self._subscribers.remove(fn)


class Trace(TraceSink):
    """Append-only event trace with indexed category filtering.

    Alongside the flat ``records`` list, the trace maintains a
    per-category index of record positions, built incrementally on
    :meth:`log`.  Category strings are interned (the same few dozen
    constants repeat millions of times), and :meth:`select` /
    :meth:`times` answer in O(matches) instead of scanning every record
    — they are called once per category by the report renderer, span
    builder, trace linter, and protocol validator.
    """

    def __init__(self, env: Environment):
        super().__init__(env)
        self.records: list[TraceRecord] = []
        #: category -> ascending record indices (insertion-ordered keys).
        self._index: dict[str, list[int]] = {}

    def log(self, category: str, data: Any = None) -> None:
        """Record ``data`` under ``category`` at the current sim time."""
        category = sys.intern(category)
        records = self.records
        bucket = self._index.get(category)
        if bucket is None:
            bucket = self._index[category] = []
        bucket.append(len(records))
        rec = TraceRecord(self.env.now, category, data)
        records.append(rec)
        if self._subscribers:
            for fn in self._subscribers:
                fn(rec)

    def categories(self, prefix: str = "") -> list[str]:
        """Distinct categories (optionally under ``prefix``), in first-
        appearance order."""
        if prefix:
            return [c for c in self._index if c.startswith(prefix)]
        return list(self._index)

    def _indices(self, category: str, prefix: bool) -> list[int]:
        """Ascending record indices matching a category (or prefix)."""
        if not prefix:
            return self._index.get(category, [])
        buckets = [
            b for c, b in self._index.items() if c.startswith(category)
        ]
        if len(buckets) == 1:
            return buckets[0]
        merged: list[int] = []
        for b in buckets:
            merged.extend(b)
        merged.sort()
        return merged

    def select(self, category: str, prefix: bool = False) -> list[TraceRecord]:
        """All records in ``category``, in time order.

        With ``prefix=True``, ``category`` matches as a prefix instead
        (``select("job.", prefix=True)`` returns every job-lifecycle
        record in one indexed lookup).
        """
        records = self.records
        return [records[i] for i in self._indices(category, prefix)]

    def select_any(self, categories: Iterable[str]) -> list[TraceRecord]:
        """Records in any of the given exact categories, merged in time
        order — one indexed lookup for multi-family consumers (the span
        builder, Fig. 10 interval extraction)."""
        buckets = [
            self._index[c] for c in categories if c in self._index
        ]
        if not buckets:
            return []
        if len(buckets) == 1:
            idx = buckets[0]
        else:
            idx = []
            for b in buckets:
                idx.extend(b)
            idx.sort()
        records = self.records
        return [records[i] for i in idx]

    def times(self, category: str, prefix: bool = False) -> list[float]:
        """Timestamps of all records in ``category`` (or category prefix)."""
        records = self.records
        return [records[i].time for i in self._indices(category, prefix)]

    def __len__(self) -> int:
        return len(self.records)


class StreamingTrace(TraceSink):
    """Bounded-memory trace sink: retention window + JSONL spill segments.

    Records pass through a deque capped at ``window`` entries (the
    high-water mark).  When the window overflows, the oldest records are
    evicted in log order: appended to an in-memory segment buffer and
    written to the ``spill`` file once ``segment_records`` lines
    accumulate (one large write per segment instead of one per record).
    Without a spill path, evicted records are simply dropped and counted
    in :attr:`dropped` — the subscribers have already folded them.

    The spill file uses the archival JSONL format of
    :func:`repro.obs.export.to_jsonl` (via :func:`record_line`), tagged
    with this sink's ``run``/``label``, and :meth:`close` appends the
    deterministic ``{"meta": "perf"}`` trailer — so a fully-spilled
    trace is byte-identical to an in-RAM dump of the same seed and feeds
    straight into ``jets report`` / ``jets lint-trace``.

    The query surface (:meth:`select`, :meth:`times`, :meth:`select_any`,
    :meth:`categories`) answers over the *retained window only*; all-time
    per-category totals survive eviction in :meth:`counts`.  Consumers
    needing the full stream must subscribe before records flow.
    """

    def __init__(
        self,
        env: Environment,
        window: int = 65536,
        spill: Optional[str] = None,
        run: Optional[int] = None,
        label: str = "",
        truncate: bool = False,
        segment_records: int = 8192,
    ):
        super().__init__(env)
        self.window: "deque[TraceRecord]" = deque()
        self.high_water = max(1, int(window))
        self.spill_path = spill
        self.run = run
        self.label = label
        self.segment_records = max(1, int(segment_records))
        #: All-time record count (monotone; includes evicted records).
        self.total = 0
        #: Records written to the spill file so far.
        self.spilled = 0
        #: Records evicted with no spill path configured.
        self.dropped = 0
        #: Records logged after :meth:`close` (e.g. component teardown
        #: finalizers firing after the session flushed); silently
        #: dropped — an in-RAM trace never exports post-dump records
        #: either — but counted for tests and diagnostics.
        self.late = 0
        self.closed = False
        self._truncate = truncate
        self._fh = None
        self._segment: list[str] = []
        #: category -> all-time count (insertion-ordered, interned keys).
        self._counts: dict[str, int] = {}
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    def log(self, category: str, data: Any = None) -> None:
        """Record ``data`` under ``category`` at the current sim time.

        After :meth:`close` the record is counted in :attr:`late` and
        dropped (the spill file is complete; late teardown logs have
        nowhere correct to go).
        """
        if self.closed:
            self.late += 1
            return
        category = sys.intern(category)
        counts = self._counts
        counts[category] = counts.get(category, 0) + 1
        rec = TraceRecord(self.env.now, category, data)
        self.total += 1
        if self._first_time is None:
            self._first_time = rec.time
        self._last_time = rec.time
        window = self.window
        window.append(rec)
        if self._subscribers:
            for fn in self._subscribers:
                fn(rec)
        if len(window) > self.high_water:
            self._evict(len(window) - self.high_water)

    # -- retention / spill ----------------------------------------------------

    def _evict(self, n: int) -> None:
        window = self.window
        if self.spill_path is None:
            for _ in range(n):
                window.popleft()
            self.dropped += n
            return
        segment = self._segment
        run, label = self.run, self.label
        for _ in range(n):
            segment.append(record_line(window.popleft(), run, label))
        self.spilled += n
        if len(segment) >= self.segment_records:
            self._write_segment()

    def _open(self):
        if self._fh is None:
            self._fh = open(self.spill_path, "w" if self._truncate else "a")
            self._truncate = False
        return self._fh

    def _write_segment(self) -> None:
        if self._segment:
            self._open().write("".join(self._segment))
            self._segment.clear()

    def flush(self) -> None:
        """Force the buffered spill segment onto disk (window retained)."""
        if self.spill_path is not None:
            self._write_segment()
            if self._fh is not None:
                self._fh.flush()

    def drain(self) -> None:
        """Spill (or drop) every retained record, emptying the window."""
        if self.window:
            self._evict(len(self.window))
        self.flush()

    def close(self, perf: Optional[dict] = None) -> None:
        """Drain the window, append the perf trailer, release the file.

        ``perf`` should be seed-deterministic (kernel events, record
        count, simulated seconds — never wall-clock) so same-seed spills
        stay byte-identical.  Closing twice is a no-op.
        """
        if self.closed:
            return
        self.drain()
        if self.spill_path is not None:
            fh = self._open()
            if perf is not None:
                fh.write(trailer_line(perf, self.run))
            fh.close()
            self._fh = None
        self.closed = True

    def perf(self) -> dict:
        """The deterministic perf trailer payload for this sink's run."""
        return {
            "events": self.env.events_processed,
            "records": self.total,
            "sim_s": self.env.now,
        }

    # -- query surface (retained window only) ---------------------------------

    @property
    def records(self) -> list[TraceRecord]:
        """The retained window as a list (oldest first)."""
        return list(self.window)

    @property
    def retained(self) -> int:
        """How many records the window currently holds."""
        return len(self.window)

    def counts(self, prefix: str = "") -> dict[str, int]:
        """All-time per-category record counts (eviction-proof)."""
        if prefix:
            return {
                c: n for c, n in self._counts.items() if c.startswith(prefix)
            }
        return dict(self._counts)

    def categories(self, prefix: str = "") -> list[str]:
        """Distinct categories ever logged, in first-appearance order."""
        if prefix:
            return [c for c in self._counts if c.startswith(prefix)]
        return list(self._counts)

    def select(self, category: str, prefix: bool = False) -> list[TraceRecord]:
        """Retained records in ``category`` (or category prefix)."""
        if prefix:
            return [
                r for r in self.window if r.category.startswith(category)
            ]
        return [r for r in self.window if r.category == category]

    def select_any(self, categories: Iterable[str]) -> list[TraceRecord]:
        """Retained records in any given category, in time order."""
        wanted = set(categories)
        return [r for r in self.window if r.category in wanted]

    def times(self, category: str, prefix: bool = False) -> list[float]:
        """Timestamps of retained records in ``category`` (or prefix)."""
        return [r.time for r in self.select(category, prefix)]

    def __len__(self) -> int:
        """All-time record count (total logged, not just retained)."""
        return self.total


class Counter:
    """Monotonic counter with optional trace hookup.

    When connected to a :class:`Trace` (directly or through the
    observability registry), every :meth:`incr` also emits a trace record
    carrying the counter name and new value, so counter activity lands on
    the same timeline as the lifecycle spans.
    """

    def __init__(
        self,
        name: str = "",
        trace: Optional["Trace"] = None,
        category: Optional[str] = None,
    ):
        self.name = name
        self.value = 0
        self._trace: Optional[Trace] = None
        self._category = ""
        if trace is not None:
            self.connect(trace, category)

    def connect(self, trace: "Trace", category: Optional[str] = None) -> "Counter":
        """Hook this counter to ``trace``; returns self for chaining."""
        self._trace = trace
        self._category = category or f"counter.{self.name or 'anonymous'}"
        return self

    @property
    def connected(self) -> bool:
        """Whether increments are mirrored into a trace."""
        return self._trace is not None

    def incr(self, amount: int = 1) -> int:
        """Add ``amount`` and return the new value."""
        self.value += amount
        if self._trace is not None:
            # The counter.* family is the one sanctioned dynamic category:
            # the registry validates it by prefix (PREFIX_FAMILIES).
            self._trace.log(
                self._category,  # repro: noqa[TR004]
                {"counter": self.name, "value": self.value},
            )
        return self.value


class Gauge:
    """A step function of time (e.g. number of busy cores).

    Records ``(time, value)`` breakpoints; integration gives time-weighted
    means, which is exactly the "load level" plotted in the paper's Fig. 13.
    """

    def __init__(self, env: Environment, initial: float = 0.0):
        self.env = env
        self.value = float(initial)
        self.samples: list[tuple[float, float]] = [(env.now, self.value)]

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value at the current time.

        Same-timestamp updates coalesce into one breakpoint (the last
        value wins) — a step function has at most one level per instant,
        and repeated :meth:`add` calls at a single sim time would
        otherwise bloat :meth:`series` and slow :meth:`integral`.
        """
        self.value = float(value)
        now = self.env.now
        if self.samples and self.samples[-1][0] == now:
            self.samples[-1] = (now, self.value)
        else:
            self.samples.append((now, self.value))

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` at the current time."""
        self.set(self.value + delta)

    def series(self) -> list[tuple[float, float]]:
        """The recorded (time, value) breakpoints."""
        return list(self.samples)

    def integral(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Integrate the step function over [start, end] (defaults: full span).

        Bisects to the breakpoints covering the window, so a windowed
        query over a long series costs O(log n + window) rather than a
        full scan.  Segments outside [start, end] contribute exactly 0
        in the scan formulation, so skipping them leaves the float
        summation order — and therefore the result bits — unchanged.
        """
        samples = self.samples
        if not samples:
            return 0.0
        t0 = samples[0][0] if start is None else start
        t1 = self.env.now if end is None else end
        if t1 <= t0:
            return 0.0
        # Last breakpoint at/before t0 .. first breakpoint at/after t1.
        lo = bisect_right(samples, (t0, float("inf"))) - 1
        if lo < 0:
            lo = 0
        hi = bisect_left(samples, (t1, float("-inf")))
        total = 0.0
        last = len(samples) - 1
        for i in range(lo, min(hi, last)):
            ta, va = samples[i]
            seg_lo = ta if ta > t0 else t0
            tb = samples[i + 1][0]
            seg_hi = tb if tb < t1 else t1
            if seg_hi > seg_lo:
                total += va * (seg_hi - seg_lo)
        ta, va = samples[last]
        seg_lo = ta if ta > t0 else t0
        if t1 > seg_lo:
            total += va * (t1 - seg_lo)
        return total

    def mean(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Time-weighted mean over [start, end]."""
        t0 = self.samples[0][0] if start is None else start
        t1 = self.env.now if end is None else end
        span = t1 - t0
        return self.integral(start, end) / span if span > 0 else 0.0

    def max(self) -> float:
        """Maximum recorded value."""
        return max(v for _t, v in self.samples)


@dataclass
class IntervalLog:
    """Log of closed intervals (task executions, worker lifetimes)."""

    intervals: list[tuple[float, float, Any]] = field(default_factory=list)

    def add(self, start: float, end: float, tag: Any = None) -> None:
        """Record an interval [start, end] with an optional tag."""
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        self.intervals.append((start, end, tag))

    def busy_time(self) -> float:
        """Sum of interval durations (with multiplicity)."""
        return sum(e - s for s, e, _ in self.intervals)

    def concurrency_series(self) -> list[tuple[float, int]]:
        """Step series of how many intervals are open over time."""
        deltas: list[tuple[float, int]] = []
        for s, e, _ in self.intervals:
            deltas.append((s, 1))
            deltas.append((e, -1))
        deltas.sort()
        series: list[tuple[float, int]] = []
        level = 0
        for t, d in deltas:
            level += d
            if series and series[-1][0] == t:
                series[-1] = (t, level)
            else:
                series.append((t, level))
        return series

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all intervals."""
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(s for s, _, _ in self.intervals),
            max(e for _, e, _ in self.intervals),
        )

    def durations(self) -> list[float]:
        """All interval durations."""
        return [e - s for s, e, _ in self.intervals]
