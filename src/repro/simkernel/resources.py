"""Shared-resource primitives for the simulation kernel.

Three primitives cover every synchronization pattern in the JETS stack:

* :class:`Resource` — counted capacity with FIFO request queue (CPU cores,
  the dispatcher's service thread, filesystem servers).
* :class:`Store` / :class:`PriorityStore` — producer/consumer queues
  (worker mailboxes, the dispatcher's ready-worker pool, socket buffers).
* :class:`Container` — continuous level (bytes in a buffer).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from .core import PENDING, Environment, Event, SimulationError

__all__ = [
    "Resource",
    "Request",
    "Store",
    "PriorityStore",
    "FilterStore",
    "Container",
]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # holding the resource
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        # Inlined Event.__init__ (one stack frame per core claim adds up
        # at campaign scale).
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """Counted resource with FIFO granting.

    ``request()`` returns an event that fires when one capacity unit is
    granted; ``release(req)`` returns it.  Releasing an ungranted request
    cancels it.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._queue: deque[Request] = deque()
        self._users: set[Request] = set()

    @property
    def count(self) -> int:
        """Number of granted (in-use) capacity units."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim one capacity unit; the returned event fires when granted."""
        req = Request(self)
        self._queue.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted unit (or cancel a pending request)."""
        if request in self._users:
            self._users.discard(request)
            self._grant()
        else:
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        try:
            self._queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.popleft()
            self._users.add(req)
            req.succeed(req)


class StoreGet(Event):
    """Pending get on a store.

    The ``filter`` slot exists for :class:`FilterStore`, which attaches
    the predicate to the get event (plain stores leave it unset).
    """

    __slots__ = ("filter",)


class Store:
    """Unbounded-by-default FIFO item queue with blocking gets.

    ``put(item)`` succeeds immediately when below capacity; ``get()``
    returns an event that fires with the next item.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    @property
    def items(self) -> list:
        """Snapshot of currently stored items (FIFO order)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once inserted.

        Fast paths (valid for :class:`PriorityStore` via the
        ``len(self)``/``_insert``/``_pop`` hooks; :class:`FilterStore`
        overrides ``put``): with no queued putters and free capacity,
        ``_dispatch`` reduces to an insert-and-succeed, plus at most one
        hand-off when consumers are blocked — getters only ever wait
        while the store is empty, so a single put can serve exactly the
        head getter.
        """
        ev = Event(self.env)
        if not self._putters and len(self) < self.capacity:
            self._insert(item)
            ev.succeed()
            if self._getters:
                self._getters.popleft().succeed(self._pop())
        else:
            self._putters.append((ev, item))
            self._dispatch()
        return ev

    def get(self) -> StoreGet:
        """Remove and return the next item (event fires with the item)."""
        ev = StoreGet(self.env)
        # Mirror of the put fast path: with no queued putters,
        # _dispatch can only hand the head item to the head getter —
        # which is this get iff no getter is already waiting.
        if not self._putters:
            if not self._getters and len(self):
                ev.succeed(self._pop())
            else:
                self._getters.append(ev)
        else:
            self._getters.append(ev)
            self._dispatch()
        return ev

    def cancel_get(self, get_event: StoreGet) -> None:
        """Withdraw a pending get (no-op if already fulfilled)."""
        try:
            self._getters.remove(get_event)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        # succeed() only *schedules* callbacks (they run at the heap pop),
        # so no new putters/getters can appear mid-dispatch: one
        # putter-drain plus one getter-drain reaches the fixpoint unless
        # getters freed capacity a blocked putter was waiting for.
        while True:
            while self._putters and len(self._items) < self.capacity:
                ev, item = self._putters.popleft()
                self._insert(item)
                ev.succeed()
            if not (self._getters and self._items):
                return
            while self._getters and self._items:
                self._getters.popleft().succeed(self._pop())
            if not self._putters:
                return

    def _insert(self, item: Any) -> None:
        self._items.append(item)

    def _pop(self) -> Any:
        return self._items.popleft()


class PriorityStore(Store):
    """Store returning items in ascending sort order.

    Items must be comparable (use ``(priority, seq, payload)`` tuples).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: list[Any] = []

    @property
    def items(self) -> list:
        return sorted(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def _insert(self, item: Any) -> None:
        # Item priority order, not event scheduling.
        heapq.heappush(self._heap, item)  # repro: noqa[PF007]

    def _pop(self) -> Any:
        return heapq.heappop(self._heap)  # repro: noqa[PF007]

    def _dispatch(self) -> None:
        # Same fixpoint argument as Store._dispatch.
        while True:
            while self._putters and len(self._heap) < self.capacity:
                ev, item = self._putters.popleft()
                self._insert(item)
                ev.succeed()
            if not (self._getters and self._heap):
                return
            while self._getters and self._heap:
                self._getters.popleft().succeed(self._pop())
            if not self._putters:
                return


class FilterStore(Store):
    """Store whose gets may carry a predicate selecting acceptable items."""

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once inserted.

        No fast path here: filtered getters may wait while (unmatching)
        items sit in the store, so Store.put's blind hand-off would
        bypass the predicates — every put goes through ``_dispatch``.
        """
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Get the first item satisfying ``filter`` (or any item if None)."""
        ev = StoreGet(self.env)
        ev.filter = filter
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        # One ordered pass: getters are offered items FIFO, each taking
        # the first match.  Removing items never lets a previously
        # unmatched getter match, so rescans are only needed when freed
        # capacity admits blocked putters (new items for the leftovers).
        while True:
            while self._putters and len(self._items) < self.capacity:
                ev, item = self._putters.popleft()
                self._items.append(item)
                ev.succeed()
            matched = False
            if self._getters and self._items:
                waiting: deque[StoreGet] = deque()
                while self._getters:
                    getter = self._getters.popleft()
                    pred = getattr(getter, "filter", None)
                    for idx, item in enumerate(self._items):
                        if pred is None or pred(item):
                            del self._items[idx]
                            getter.succeed(item)
                            matched = True
                            break
                    else:
                        waiting.append(getter)
                self._getters = waiting
            if not (matched and self._putters):
                return

    def _insert(self, item: Any) -> None:  # pragma: no cover - via _dispatch
        self._items.append(item)


class Container:
    """Continuous level with blocking put/get (e.g. bytes in a buffer)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._putters: deque[tuple[Event, float]] = deque()
        self._getters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; event fires once it fits under capacity."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._dispatch()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; event fires once that much is available."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._level + self._putters[0][1] <= self.capacity:
                ev, amount = self._putters.popleft()
                self._level += amount
                ev.succeed()
                progressed = True
            if self._getters and self._level >= self._getters[0][1]:
                ev, amount = self._getters.popleft()
                self._level -= amount
                ev.succeed()
                progressed = True
