"""Deterministic named random streams.

Every stochastic element in the simulation (fault injection, NAMD wall-time
draws, network jitter) pulls from a named stream so that adding a new
consumer never perturbs existing streams — runs stay reproducible as the
model grows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of independent, deterministically seeded numpy Generators.

    Streams are derived from a root seed plus the stream name, so
    ``RngRegistry(7).stream("faults")`` is identical across runs and
    independent of every other stream.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            child_seed = np.random.SeedSequence(
                [self.seed, abs(hash_name(name)) % (2**31)]
            )
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams so the next access re-derives fresh ones."""
        self._streams.clear()


def hash_name(name: str) -> int:
    """Stable (process-independent) string hash for stream seeding."""
    h = 2166136261
    for ch in name.encode("utf-8"):
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h
