"""MPI-IO model: collective, aggregated filesystem access.

Section 1.2 of the paper argues that MPTC's key systems benefit over plain
MTC is that tasks can use "powerful software implementations such as
MPI-IO, which aggregate and optimize accesses to distributed and parallel
filesystems ... given N MTC processes, the filesystem would be accessed by
N clients; however, for 16-process MPTC tasks using MPI-IO, the number of
clients would be N/16."  Section 7 plans to "experiment with MPI-IO from
JETS-initiated MPTC workloads".

This module implements that experiment's machinery: two-phase collective
I/O over the simulated communicator and shared filesystem.

* **Independent mode** (:func:`independent_write` / ``read``): every rank
  opens its own stream to the shared FS — N clients, full contention.
* **Collective mode** (:class:`CollectiveFile`): ranks exchange their
  buffers with a subset of *aggregator* ranks over the interconnect
  (fast), and only the aggregators touch the filesystem — N/k clients.

The ``abl_mpiio`` benchmark shows the resulting contention reduction.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..oslayer.filesystem import SharedFilesystem
from .app import RankContext

__all__ = [
    "independent_write",
    "independent_read",
    "CollectiveFile",
    "default_aggregators",
]


def independent_write(ctx: RankContext, nbytes: int) -> Generator:
    """Plain POSIX-style write: this rank is its own filesystem client."""
    fs: Optional[SharedFilesystem] = ctx.node.shared_fs
    if fs is not None:
        yield from fs.write(nbytes)


def independent_read(ctx: RankContext, nbytes: int) -> Generator:
    """Plain POSIX-style read: this rank is its own filesystem client."""
    fs: Optional[SharedFilesystem] = ctx.node.shared_fs
    if fs is not None:
        yield from fs.read(nbytes)


def default_aggregators(size: int, ranks_per_aggregator: int = 16) -> list[int]:
    """ROMIO-style aggregator choice: every k-th rank (at least one)."""
    if ranks_per_aggregator <= 0:
        raise ValueError("ranks_per_aggregator must be positive")
    return list(range(0, size, ranks_per_aggregator)) or [0]


class CollectiveFile:
    """A file opened collectively by every rank of a communicator.

    Implements two-phase I/O: data is shuffled between compute ranks and
    aggregator ranks over the message fabric; aggregators perform large
    contiguous filesystem operations on everyone's behalf.

    SPMD discipline: every rank must call :meth:`write_all` /
    :meth:`read_all` with its own buffer size, like MPI_File_write_all.
    """

    def __init__(
        self,
        ctx: RankContext,
        ranks_per_aggregator: int = 16,
    ):
        self.ctx = ctx
        self.aggregators = default_aggregators(
            ctx.size, ranks_per_aggregator
        )
        self._op = 0

    @property
    def is_aggregator(self) -> bool:
        """Whether the calling rank performs filesystem operations."""
        return self.ctx.rank in self.aggregators

    def _my_aggregator(self) -> int:
        """The aggregator responsible for this rank's data."""
        # Contiguous assignment: rank r belongs to the aggregator whose
        # index is floor(r / ranks_per_group) — derived from positions.
        per = max(1, (self.ctx.size + len(self.aggregators) - 1) // len(self.aggregators))
        idx = min(self.ctx.rank // per, len(self.aggregators) - 1)
        return self.aggregators[idx]

    def _members_of(self, aggregator: int) -> list[int]:
        return [
            r
            for r in range(self.ctx.size)
            if self.aggregators[
                min(
                    r
                    // max(
                        1,
                        (self.ctx.size + len(self.aggregators) - 1)
                        // len(self.aggregators),
                    ),
                    len(self.aggregators) - 1,
                )
            ]
            == aggregator
        ]

    def write_all(self, nbytes: int) -> Generator:
        """Collective write of ``nbytes`` from this rank (two-phase)."""
        ctx = self.ctx
        comm = ctx.comm
        tag = ("mpiio-w", self._op)
        self._op += 1
        agg = self._my_aggregator()
        if ctx.rank == agg:
            members = self._members_of(agg)
            total = nbytes
            # Phase 1: gather the group's buffers over the interconnect.
            for member in members:
                if member == ctx.rank:
                    continue
                _s, _t, size = yield from comm.recv(
                    ctx.rank, source=member, tag=tag
                )
                total += size
            # Phase 2: one large contiguous filesystem write.
            fs = ctx.node.shared_fs
            if fs is not None:
                yield from fs.write(total)
            # Release the group.
            for member in members:
                if member != ctx.rank:
                    yield from comm.send(ctx.rank, member, None, 1, tag=(tag, "done"))
        else:
            yield from comm.send(ctx.rank, agg, nbytes, nbytes, tag=tag)
            yield from comm.recv(ctx.rank, source=agg, tag=(tag, "done"))

    def read_all(self, nbytes: int) -> Generator:
        """Collective read of ``nbytes`` into this rank (two-phase).

        Returns the number of bytes delivered to this rank.
        """
        ctx = self.ctx
        comm = ctx.comm
        tag = ("mpiio-r", self._op)
        self._op += 1
        agg = self._my_aggregator()
        if ctx.rank == agg:
            members = self._members_of(agg)
            sizes: dict[int, int] = {ctx.rank: nbytes}
            for member in members:
                if member == ctx.rank:
                    continue
                _s, _t, size = yield from comm.recv(
                    ctx.rank, source=member, tag=tag
                )
                sizes[member] = size
            fs = ctx.node.shared_fs
            if fs is not None:
                yield from fs.read(sum(sizes.values()))
            for member in members:
                if member != ctx.rank:
                    yield from comm.send(
                        ctx.rank, member, None, sizes[member], tag=(tag, "data")
                    )
            return nbytes
        yield from comm.send(ctx.rank, agg, nbytes, 16, tag=tag)
        yield from comm.recv(ctx.rank, source=agg, tag=(tag, "data"))
        return nbytes
