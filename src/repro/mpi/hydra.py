"""Hydra process-manager model: ``mpiexec`` + proxies, ``launcher=manual``.

This is the machinery the paper modified MPICH2 to expose (contributions 1
and 2, Section 1.2): instead of bootstrapping proxies itself via ssh,
``mpiexec`` started with ``launcher=manual`` *reports proxy commands on its
output* and waits; an external scheduler — JETS — ships those commands to
pilot workers, which exec the Hydra proxy; proxies connect back to
``mpiexec``, perform the PMI wire-up for their user processes, and the MPI
job starts (Fig. 4 steps ③–⑥).

Protocol implemented here, over simulated sockets:

1. ``MpiexecController.launch()`` — pay the mpiexec fork cost on the
   submit host, bind a listener, emit one :class:`ProxyCommand` per host.
2. Each proxy connects and sends ``register``.
3. When all proxies are registered, mpiexec sends ``start``.
4. The proxy forks the user ranks (core-claiming processes on its node);
   each rank's PMI put is forwarded upstream as a ``pmi_put`` message.
5. When all ranks have put, mpiexec commits the KVS and sends ``commit``
   (carrying the wired-up :class:`~repro.mpi.comm.SimComm`) to every
   proxy; ranks start executing the application body.
6. Ranks finish; each proxy sends ``exit`` with its status; when all have
   exited, the controller's ``done`` event fires with a :class:`JobResult`.

Any premature connection close, bad exit status, or watchdog expiry fails
the job: remaining proxies receive ``abort``, in-flight ranks are
interrupted, and ``done`` fires with ``ok=False`` — JETS requeues the job
(Section 5.1: "The mpiexec output is checked for errors").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..analysis import protocol as wire
from ..cluster.node import Node
from ..cluster.platform import Platform
from ..netsim.sockets import ConnectionClosed, Socket
from ..oslayer.process import ExecutableImage
from ..simkernel import Environment, Event, Interrupt, Resource, Store
from .app import MpiProgram, RankContext
from .comm import MpiAbort, SimComm
from .pmi import PmiKvs

__all__ = [
    "HydraConfig",
    "ProxyCommand",
    "JobResult",
    "MpiexecController",
    "run_proxy",
    "PROXY_IMAGE",
]

#: The Hydra proxy binary (pilot-cached by JETS staging, Section 5 item 2).
PROXY_IMAGE = ExecutableImage("hydra_pmi_proxy", 800 << 10)


@dataclass(frozen=True)
class HydraConfig:
    """Cost/behaviour knobs of the Hydra machinery.

    Attributes:
        mpiexec_spawn: fork+startup cost of one mpiexec on the submit host.
        msg_cost: mpiexec-side CPU cost of handling one protocol message
            (the Hydra process is single-threaded, so a 64-proxy job pays
            this serially per register/put/exit — one reason large jobs
            are "individually slower to start", Section 6.1.4).
        ctrl_msg_bytes: size of control-plane messages (register/start/...).
        pmi_msg_bytes: size of one PMI put message.
        kvs_bytes_per_rank: commit-message payload per rank.
        output_check: cost of scanning mpiexec output for errors at exit.
        launch_timeout: watchdog — fail the job if wire-up stalls this long.
    """

    mpiexec_spawn: float = 0.020
    msg_cost: float = 0.0005
    ctrl_msg_bytes: int = 512
    pmi_msg_bytes: int = 256
    kvs_bytes_per_rank: int = 96
    output_check: float = 0.002
    launch_timeout: float = 300.0


@dataclass(frozen=True)
class ProxyCommand:
    """What ``launcher=manual`` prints for one host: enough for any external
    controller to bring up the proxy (paper Section 4.2)."""

    job_id: str
    proxy_id: int
    mpiexec_endpoint: int
    service: str
    ranks: tuple[int, ...]
    world_size: int
    #: This proxy's share of the job's output-staging payload, shipped
    #: back to the dispatcher with the completion report (Coasters-style
    #: data movement over the task connection).
    stage_out_bytes: int = 0


@dataclass
class JobResult:
    """Outcome of one MPI job execution attempt."""

    job_id: str
    ok: bool
    error: str = ""
    world_size: int = 0
    t_launch: float = 0.0
    t_app_start: float = 0.0
    t_app_end: float = 0.0
    t_done: float = 0.0
    rank0_value: Any = None

    @property
    def wireup_time(self) -> float:
        """Time from mpiexec launch to application start."""
        return self.t_app_start - self.t_launch

    @property
    def app_time(self) -> float:
        """Application execution time (commit to last exit)."""
        return self.t_app_end - self.t_app_start


_job_seq = itertools.count()


class MpiexecController:
    """One background ``mpiexec`` driving one MPI job.

    Args:
        platform: the machine.
        job_id: unique id (used for the listener service name).
        hosts: per-proxy ``(node, ranks)`` assignments; ranks are global.
        program: the application to run.
        config: Hydra cost model.
        submit_cpu: Resource modelling submit-host CPU concurrency (the
            mpiexec fork is charged under it); None = uncontended.
        endpoint: where mpiexec runs (default: the platform login host).
        fabric: fabric for application traffic (default: control fabric).
    """

    def __init__(
        self,
        platform: Platform,
        job_id: str,
        hosts: list[tuple[Node, tuple[int, ...]]],
        program: MpiProgram,
        config: Optional[HydraConfig] = None,
        submit_cpu: Optional[Resource] = None,
        endpoint: Optional[int] = None,
        fabric=None,
    ):
        if not hosts:
            raise ValueError("job needs at least one host")
        self.platform = platform
        self.env: Environment = platform.env
        self.job_id = job_id
        self.hosts = hosts
        self.program = program
        self.config = config or HydraConfig()
        self.submit_cpu = submit_cpu
        self.endpoint = platform.login_endpoint if endpoint is None else endpoint
        self.fabric = fabric or platform.fabric
        self.world_size = sum(len(r) for _n, r in hosts)
        self.service = f"mpiexec-{job_id}-{next(_job_seq)}"
        self.done: Event = self.env.event()
        self.kvs = PmiKvs(self.env, self.world_size)
        self._queue: Store = Store(self.env)
        self._sockets: dict[int, Socket] = {}
        self._result: Optional[JobResult] = None
        self._t_launch = 0.0
        self._external_abort = False
        #: True once the KVS committed and ranks were released — the
        #: boundary between a wire-up failure and an application failure
        #: (recovery policies classify resubmit reasons on it).
        self.app_started = False

    def launch(self) -> Generator:
        """Spawn mpiexec; returns the proxy command list (sim generator)."""
        if self.submit_cpu is not None:
            req = self.submit_cpu.request()
            yield req
            try:
                yield self.env.timeout(self.config.mpiexec_spawn)
            finally:
                self.submit_cpu.release(req)
        else:
            yield self.env.timeout(self.config.mpiexec_spawn)
        self._t_launch = self.env.now
        self._listener = self.platform.network.listen(self.endpoint, self.service)
        self.env.process(self._serve(), name=f"mpiexec-{self.job_id}")
        rank_check = sorted(r for _n, ranks in self.hosts for r in ranks)
        if rank_check != list(range(self.world_size)):
            raise ValueError(f"host rank assignment is not a permutation: {rank_check}")
        return [
            ProxyCommand(
                job_id=self.job_id,
                proxy_id=i,
                mpiexec_endpoint=self.endpoint,
                service=self.service,
                ranks=tuple(ranks),
                world_size=self.world_size,
            )
            for i, (_node, ranks) in enumerate(self.hosts)
        ]

    def abort(self, reason: str = "external abort") -> None:
        """Ask the controller to tear the job down (e.g. JETS detected a
        dead worker before the socket noticed)."""
        self._external_abort = True
        self._queue.put((-1, (wire.EXTERNAL_ABORT, reason)))

    # -- internals -----------------------------------------------------------

    def _reader(self, proxy_id: int, sock: Socket) -> Generator:
        try:
            while True:
                msg = yield sock.recv()
                self._queue.put((proxy_id, msg.payload))
        except ConnectionClosed:
            self._queue.put((proxy_id, (wire.CLOSED,)))

    def _accept_loop(self, n: int) -> Generator:
        accepted = 0
        while accepted < n:
            sock = yield self._listener.accept()
            accepted += 1
            # First message on each connection is `register`; the reader
            # forwards everything into the central queue.
            self.env.process(
                self._reader_bootstrap(sock), name=f"{self.service}-rd"
            )

    def _reader_bootstrap(self, sock: Socket) -> Generator:
        try:
            msg = yield sock.recv()
        except ConnectionClosed:
            self._queue.put((-1, (wire.CLOSED,)))
            return
        kind, proxy_id = msg.payload[0], msg.payload[1]
        if kind != wire.REGISTER:
            self.platform.trace.log(
                "protocol.error",
                {
                    "channel": wire.CHANNEL_HYDRA,
                    "kind": str(kind),
                    "job": self.job_id,
                    "detail": "first proxy message must be register",
                },
            )
            self._queue.put((proxy_id, (wire.PROTOCOL_ERROR, msg.payload)))
            return
        self._sockets[proxy_id] = sock
        self._queue.put((proxy_id, msg.payload))
        yield from self._reader(proxy_id, sock)

    def _serve(self) -> Generator:
        cfg = self.config
        env = self.env
        n_proxies = len(self.hosts)
        self.env.process(self._accept_loop(n_proxies), name=f"{self.service}-acc")

        registered = 0
        puts = 0
        exits = 0
        exited: set[int] = set()
        failed: Optional[str] = None
        comm: Optional[SimComm] = None
        t_app_start = 0.0
        t_app_end = 0.0
        rank0_value: Any = None
        deadline = env.now + cfg.launch_timeout
        log = self.platform.trace.log

        while exits < n_proxies:
            get = self._queue.get()
            if comm is None:
                # Wire-up phase: enforce the watchdog.
                timeout_ev = env.timeout(max(0.0, deadline - env.now))
                result = yield env.any_of([get, timeout_ev])
                if get not in result:
                    self._queue.cancel_get(get)
                    failed = failed or "wire-up watchdog expired"
                    break
                pid, payload = get.value
            else:
                pid, payload = yield get
            kind = payload[0]
            if cfg.msg_cost:
                yield env.timeout(cfg.msg_cost)

            if kind == wire.REGISTER:
                registered += 1
                log(
                    "proxy.registered",
                    {
                        "job": self.job_id,
                        "proxy": pid,
                        "node": self._proxy_node(pid),
                    },
                )
                if registered == n_proxies:
                    log(
                        "job.pmi_wireup", {"job": self.job_id}
                    )
                    for sock in self._sockets.values():
                        # A proxy can die between its register and this
                        # broadcast; its CLOSED mark is already queued
                        # and fails the job on the next loop turn.
                        if sock.closed:
                            continue
                        try:
                            yield sock.send(
                                (wire.START,),
                                wire.wire_size(
                                    wire.CHANNEL_HYDRA,
                                    wire.START,
                                    ctrl=cfg.ctrl_msg_bytes,
                                ),
                            )
                        except ConnectionClosed:
                            pass
            elif kind == wire.PMI_PUT:
                _, rank, key, value = payload
                self.kvs.put(rank, key, value)
                puts += 1
                if puts == self.world_size:
                    comm = self._build_comm()
                    self.app_started = True
                    t_app_start = env.now
                    commit_bytes = cfg.kvs_bytes_per_rank * self.world_size
                    log(
                        "job.app_running", {"job": self.job_id}
                    )
                    for wired_pid, sock in self._sockets.items():
                        if sock.closed:
                            continue
                        log(
                            "proxy.wired",
                            {"job": self.job_id, "proxy": wired_pid},
                        )
                        try:
                            yield sock.send(
                                (wire.COMMIT, comm),
                                wire.wire_size(
                                    wire.CHANNEL_HYDRA,
                                    wire.COMMIT,
                                    extra=commit_bytes,
                                ),
                            )
                        except ConnectionClosed:
                            pass
            elif kind == wire.EXIT:
                _, _pid, status, value = payload
                exits += 1
                exited.add(pid)
                log(
                    "proxy.exited",
                    {"job": self.job_id, "proxy": pid, "status": status},
                )
                if status != 0 and failed is None:
                    failed = f"proxy {pid} exited with status {status}"
                if value is not None:
                    rank0_value = value
                t_app_end = env.now
            elif kind == wire.CLOSED:
                if pid in exited:
                    continue  # normal close after exit
                if failed is None:
                    failed = f"lost connection to proxy {pid}"
                break
            elif kind == wire.EXTERNAL_ABORT:
                failed = failed or payload[1]
                break
            elif kind == wire.PROTOCOL_ERROR:
                failed = failed or f"protocol error from {pid}: {payload[1]}"
                break

        if failed is not None:
            # Abort phase: tear down whatever is still running.
            if comm is not None:
                comm.abort()
            for pid, sock in self._sockets.items():
                if not sock.closed:
                    try:
                        yield sock.send(
                            (wire.ABORT,),
                            wire.wire_size(
                                wire.CHANNEL_HYDRA,
                                wire.ABORT,
                                ctrl=cfg.ctrl_msg_bytes,
                            ),
                        )
                    except ConnectionClosed:
                        pass

        yield env.timeout(cfg.output_check)
        for sock in self._sockets.values():
            sock.close()
        self._listener.close()
        # Close the lifecycle of proxies that died without reporting
        # (worker kill, lost connection, abort): 143 = SIGTERM-style.
        for pid in self._sockets:
            if pid not in exited:
                log(
                    "proxy.exited",
                    {"job": self.job_id, "proxy": pid, "status": 143},
                )

        result = JobResult(
            job_id=self.job_id,
            ok=failed is None,
            error=failed or "",
            world_size=self.world_size,
            t_launch=self._t_launch,
            t_app_start=t_app_start or self._t_launch,
            t_app_end=t_app_end or env.now,
            t_done=env.now,
            rank0_value=rank0_value,
        )
        self._result = result
        self.done.succeed(result)

    def _proxy_node(self, proxy_id: int) -> Optional[int]:
        """Node id a proxy was assigned to (None for bad/unknown ids)."""
        if 0 <= proxy_id < len(self.hosts):
            return self.hosts[proxy_id][0].node_id
        return None

    def _build_comm(self) -> SimComm:
        endpoints = [0] * self.world_size
        for node, ranks in self.hosts:
            for r in ranks:
                endpoints[r] = node.endpoint
        return SimComm(self.env, self.fabric, endpoints)


def run_proxy(
    platform: Platform,
    node: Node,
    cmd: ProxyCommand,
    program: MpiProgram,
) -> Generator:
    """The Hydra proxy body, run on a worker node (sim generator).

    Connects back to mpiexec, forks the user ranks, relays PMI, waits for
    rank completion, reports the exit status.  Returns the proxy exit
    status (0 = success).  Designed to be interruptible: an
    :class:`~repro.simkernel.Interrupt` (worker kill / node fault) closes
    the socket, which mpiexec observes as a job failure.
    """
    env = platform.env
    sock: Optional[Socket] = None
    rank_procs: list = []
    status = 0
    try:
        sock = yield from platform.network.connect(
            node.endpoint, cmd.mpiexec_endpoint, cmd.service
        )
        yield sock.send(
            (wire.REGISTER, cmd.proxy_id),
            wire.wire_size(wire.CHANNEL_HYDRA, wire.REGISTER),
        )
        msg = yield sock.recv()
        if msg.payload[0] == wire.ABORT:
            sock.close()
            return 1
        assert msg.payload[0] == wire.START, msg.payload

        # Fork user ranks; each is a core-claiming process on this node.
        ready_events: dict[int, Event] = {}
        go_events: dict[int, Event] = {}
        results: dict[int, Any] = {}

        aborted_ranks: list[int] = []

        def rank_body(rank: int):
            def body() -> Generator:
                try:
                    ready_events[rank].succeed()
                    ctx_holder = yield go_events[rank]
                    if ctx_holder is None:  # aborted before start
                        return None
                    comm = ctx_holder
                    ctx = RankContext(
                        env=env,
                        comm=comm,
                        rank=rank,
                        size=cmd.world_size,
                        node=node,
                        job_id=cmd.job_id,
                    )
                    # Through the node's straggler scaler so an injected
                    # slowdown stretches this rank's compute.
                    value = yield from node.run_scaled(program.run(ctx))
                    results[rank] = value
                    return value
                except (Interrupt, MpiAbort):
                    aborted_ranks.append(rank)
                    return None

            return body

        def rank_exec(rank: int) -> Generator:
            # A kill can land while the rank is still paying fork/exec or
            # loading its executable — before ``rank_body`` is running and
            # able to catch it.  Absorb the interrupt here so it never
            # escapes the rank process; the proxy reports the failure.
            try:
                return (
                    yield from node.exec_process(program.image, rank_body(rank))
                )
            except (Interrupt, MpiAbort):
                aborted_ranks.append(rank)
                return None

        for rank in cmd.ranks:
            ready_events[rank] = env.event()
            go_events[rank] = env.event()
            proc = env.process(rank_exec(rank), name=f"rank{rank}-{cmd.job_id}")
            rank_procs.append(proc)

        # As each rank comes up, forward its PMI put to mpiexec.
        for rank in cmd.ranks:
            yield ready_events[rank]
            yield sock.send(
                (wire.PMI_PUT, rank, f"addr-{rank}", node.endpoint),
                wire.wire_size(wire.CHANNEL_HYDRA, wire.PMI_PUT),
            )

        # Wait for the KVS commit (or an abort).
        msg = yield sock.recv()
        if msg.payload[0] == wire.ABORT:
            for rank in cmd.ranks:
                go_events[rank].succeed(None)
            yield env.all_of(rank_procs)
            sock.close()
            return 1
        assert msg.payload[0] == wire.COMMIT, msg.payload
        comm = msg.payload[1]

        for rank in cmd.ranks:
            go_events[rank].succeed(comm)

        # Wait for ranks, but stay responsive to an abort from mpiexec.
        all_done = env.all_of(rank_procs)
        abort_recv = sock.recv()
        yield env.any_of([all_done, abort_recv])
        if not all_done.triggered:
            for proc in rank_procs:
                if proc.is_alive:
                    proc.interrupt("mpiexec abort")
            yield env.all_of(rank_procs)
        if aborted_ranks:
            status = 1

        value = results.get(0) if 0 in cmd.ranks else None
        yield sock.send(
            (wire.EXIT, cmd.proxy_id, status, value),
            wire.wire_size(wire.CHANNEL_HYDRA, wire.EXIT),
        )
        sock.close()
        return status
    except (Interrupt, MpiAbort):
        # Worker killed (fault injection) or comm torn down under us.
        for proc in rank_procs:
            if proc.is_alive:
                # Per-rank isolation: one already-dead rank must not stop
                # the teardown of the rest.
                try:  # repro: noqa[PF005]
                    proc.interrupt("proxy killed")
                except Exception:
                    pass
        if sock is not None:
            sock.close()
        return 143
    except ConnectionClosed:
        for proc in rank_procs:
            if proc.is_alive:
                # Per-rank isolation, as above.
                try:  # repro: noqa[PF005]
                    proc.interrupt("mpiexec connection lost")
                except Exception:
                    pass
        return 1
