"""MPI communicator executing over a simulated fabric.

Implements the subset of MPI the paper's workloads use — point-to-point
send/recv with tag matching and the collectives ``barrier``, ``bcast``,
``allgather`` and ``allreduce`` — using the *actual distributed
algorithms* (dissemination barrier, binomial-tree broadcast, ring
allgather), so collective costs emerge from individual messages over the
fabric rather than closed-form shortcuts.  The Fig. 8 ping-pong benchmark
measures exactly these paths under the native and TCP fabrics.

SPMD discipline applies as in real MPI: every rank of a communicator must
invoke the same collectives in the same order.
"""

from __future__ import annotations

import math
from typing import Any, Generator, Optional

from ..netsim.fabric import Fabric
from ..simkernel import Environment, FilterStore

__all__ = ["SimComm", "MpiAbort"]


class MpiAbort(Exception):
    """Raised into ranks when the job is torn down (e.g. node failure)."""


class SimComm:
    """A communicator binding ``size`` ranks to fabric endpoints.

    Args:
        env: simulation environment.
        fabric: fabric used for all traffic (TCP or native).
        endpoints: per-rank endpoint ids (node ids); multiple ranks may
            share a node, in which case traffic between them is loopback.
    """

    #: Eager/rendezvous threshold: messages above this pay an extra
    #: zero-byte round trip (request-to-send / clear-to-send).
    RENDEZVOUS_BYTES = 256 * 1024

    def __init__(self, env: Environment, fabric: Fabric, endpoints: list[int]):
        if not endpoints:
            raise ValueError("communicator needs at least one rank")
        self.env = env
        self.fabric = fabric
        self.endpoints = list(endpoints)
        self.size = len(endpoints)
        self._mailboxes = [FilterStore(env) for _ in range(self.size)]
        self._coll_seq = [0] * self.size
        self._aborted = False

    # -- point to point ------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        payload: Any = None,
        nbytes: int = 0,
        tag: Any = 0,
    ) -> Generator:
        """Blocking-send generator for rank ``src`` to rank ``dst``.

        Charges the sender's software overhead; delivery happens
        transfer-time later.  Rendezvous-size messages additionally charge
        a zero-byte handshake round trip to the sender.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if self._aborted:
            raise MpiAbort("communicator torn down")
        a, b = self.endpoints[src], self.endpoints[dst]
        if nbytes > self.RENDEZVOUS_BYTES:
            yield self.env.timeout(self.fabric.rtt(a, b, 0))
        t = self.fabric.transfer_time(a, b, nbytes)
        box = self._mailboxes[dst]
        deliver = self.env.timeout(t)
        deliver._add_callback(
            lambda _e: box.put((src, tag, payload, nbytes))
        )
        # Sender returns after local injection cost.
        yield self.env.timeout(self.fabric.spec.sw_overhead)

    def recv(
        self,
        rank: int,
        source: Optional[int] = None,
        tag: Any = None,
    ) -> Generator:
        """Blocking-receive generator; returns ``(source, tag, payload)``.

        ``source=None`` / ``tag=None`` act as MPI_ANY_SOURCE / MPI_ANY_TAG.
        """
        self._check_rank(rank)
        if self._aborted:
            raise MpiAbort("communicator torn down")

        def match(item) -> bool:
            s, t, _p, _n = item
            return (source is None or s == source) and (tag is None or t == tag)

        item = yield self._mailboxes[rank].get(match)
        s, t, payload, _n = item
        return (s, t, payload)

    def sendrecv(
        self,
        rank: int,
        dst: int,
        src: int,
        payload: Any = None,
        nbytes: int = 0,
        tag: Any = 0,
    ) -> Generator:
        """Combined send+recv (send first, then wait) used by ring steps."""
        yield from self.send(rank, dst, payload, nbytes, tag)
        result = yield from self.recv(rank, source=src, tag=tag)
        return result

    # -- collectives ---------------------------------------------------------

    def _next_op(self, rank: int, op: str) -> tuple:
        seq = self._coll_seq[rank]
        self._coll_seq[rank] += 1
        return (op, seq)

    def barrier(self, rank: int) -> Generator:
        """Dissemination barrier: ceil(log2 n) rounds of paired messages."""
        self._check_rank(rank)
        opid = self._next_op(rank, "barrier")
        n = self.size
        if n == 1:
            return
        rounds = int(math.ceil(math.log2(n)))
        for k in range(rounds):
            dist = 1 << k
            dst = (rank + dist) % n
            src = (rank - dist) % n
            yield from self.send(rank, dst, None, 1, tag=(opid, k))
            yield from self.recv(rank, source=src, tag=(opid, k))

    def bcast(
        self, rank: int, root: int, payload: Any = None, nbytes: int = 0
    ) -> Generator:
        """Binomial-tree broadcast; returns the payload on every rank."""
        self._check_rank(rank)
        self._check_rank(root)
        opid = self._next_op(rank, "bcast")
        n = self.size
        rel = (rank - root) % n
        value = payload
        # MPICH binomial algorithm: receive once from the parent (lowest set
        # bit of the relative rank), then forward to children top-down.
        mask = 1
        while mask < n:
            if rel & mask:
                parent = (rank - mask) % n
                _s, _t, value = yield from self.recv(
                    rank, source=parent, tag=opid
                )
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < n:
                child = (rank + mask) % n
                yield from self.send(rank, child, value, nbytes, tag=opid)
            mask >>= 1
        return value

    def allgather(
        self, rank: int, payload: Any = None, nbytes: int = 0
    ) -> Generator:
        """Ring allgather; returns the list of per-rank payloads."""
        self._check_rank(rank)
        opid = self._next_op(rank, "allgather")
        n = self.size
        values: list[Any] = [None] * n
        values[rank] = payload
        if n == 1:
            return values
        right = (rank + 1) % n
        left = (rank - 1) % n
        block = rank
        for step in range(n - 1):
            yield from self.send(
                rank, right, (block, values[block]), nbytes, tag=(opid, step)
            )
            _s, _t, (idx, val) = yield from self.recv(
                rank, source=left, tag=(opid, step)
            )
            values[idx] = val
            block = idx
        return values

    def allreduce(
        self, rank: int, value: float, op=None, nbytes: int = 8
    ) -> Generator:
        """Recursive-doubling allreduce for power-of-two-padded sizes.

        ``op`` defaults to sum.  Non-power-of-two sizes fall back to
        allgather+local-reduce (correct, slightly costlier — acceptable for
        the small communicators in the paper's workloads).
        """
        self._check_rank(rank)
        combine = op if op is not None else (lambda a, b: a + b)
        n = self.size
        if n & (n - 1) == 0:
            opid = self._next_op(rank, "allreduce")
            acc = value
            k = 0
            dist = 1
            while dist < n:
                peer = rank ^ dist
                yield from self.send(rank, peer, acc, nbytes, tag=(opid, k))
                _s, _t, other = yield from self.recv(
                    rank, source=peer, tag=(opid, k)
                )
                acc = combine(acc, other)
                dist <<= 1
                k += 1
            return acc
        values = yield from self.allgather(rank, value, nbytes)
        acc = values[0]
        for v in values[1:]:
            acc = combine(acc, v)
        return acc

    # -- teardown -------------------------------------------------------------

    def abort(self) -> None:
        """Tear the communicator down; blocked ranks get :class:`MpiAbort`."""
        if self._aborted:
            return
        self._aborted = True
        for box in self._mailboxes:
            for getter in list(box._getters):
                box._getters.remove(getter)
                getter.fail(MpiAbort("communicator torn down"))

    @property
    def aborted(self) -> bool:
        """True once :meth:`abort` has been called."""
        return self._aborted

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range (size {self.size})")
