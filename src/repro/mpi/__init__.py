"""Simulated MPICH2 stack: PMI, communicator, Hydra mpiexec/proxy model."""

from .app import FuncProgram, MpiProgram, RankContext
from .comm import MpiAbort, SimComm
from .hydra import (
    PROXY_IMAGE,
    HydraConfig,
    JobResult,
    MpiexecController,
    ProxyCommand,
    run_proxy,
)
from .io import CollectiveFile, default_aggregators, independent_read, independent_write
from .pmi import PmiError, PmiKvs

__all__ = [
    "CollectiveFile",
    "FuncProgram",
    "HydraConfig",
    "JobResult",
    "MpiAbort",
    "MpiProgram",
    "MpiexecController",
    "PROXY_IMAGE",
    "PmiError",
    "PmiKvs",
    "ProxyCommand",
    "RankContext",
    "SimComm",
    "default_aggregators",
    "independent_read",
    "independent_write",
    "run_proxy",
]
