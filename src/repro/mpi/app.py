"""Base abstractions for MPI applications running in the simulation.

An :class:`MpiProgram` is what JETS launches: it names an executable image
(for load-cost modelling) and provides a per-rank ``run`` generator that
receives a :class:`RankContext` — the simulated equivalent of a process
finding its communicator via PMI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, TYPE_CHECKING

from ..oslayer.process import ExecutableImage
from ..simkernel import Environment

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from .comm import SimComm

__all__ = ["RankContext", "MpiProgram", "FuncProgram"]


@dataclass(slots=True)
class RankContext:
    """Everything one MPI rank sees at startup.

    ``pmi_rank`` mirrors the PMI_RANK variable the paper exposes to user
    wrapper scripts (Section 5.2); it equals the MPI_COMM_WORLD rank.
    """

    env: Environment
    comm: "SimComm"
    rank: int
    size: int
    node: "Node"
    job_id: str = ""

    @property
    def pmi_rank(self) -> int:
        """PMI_RANK as provided to all levels of user programs."""
        return self.rank


class MpiProgram:
    """An MPI application: executable image + per-rank behaviour.

    Subclasses override :meth:`run`; the return value of rank 0 becomes the
    job's result payload.
    """

    def __init__(self, image: Optional[ExecutableImage] = None):
        self.image = image if image is not None else ExecutableImage(
            self.__class__.__name__.lower(), 1 << 20
        )

    def run(self, ctx: RankContext) -> Generator:
        """Per-rank body (sim-process generator)."""
        raise NotImplementedError
        yield  # pragma: no cover


class FuncProgram(MpiProgram):
    """Adapter turning a plain generator function into an MpiProgram.

    Example::

        def body(ctx):
            yield from ctx.comm.barrier(ctx.rank)

        prog = FuncProgram(body, name="barrier-test")
    """

    def __init__(self, func, name: str = "", image: Optional[ExecutableImage] = None):
        super().__init__(image or ExecutableImage(name or func.__name__, 1 << 20))
        self._func = func

    def run(self, ctx: RankContext) -> Generator:
        result = yield from self._func(ctx)
        return result
