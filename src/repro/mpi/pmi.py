"""Process Management Interface (PMI) model.

Hydra's proxies expose PMI to the user processes: each rank *puts* its
contact information into a key-value space, all ranks *fence*, and then
every rank can *get* its peers' addresses and open direct connections.
JETS relies on exactly this wire-up working over ZeptoOS sockets
(Section 4.2); the PMI_RANK variable mentioned in Section 5.2 comes from
this layer too.

Costs of moving PMI messages are charged by the caller (the Hydra proxy /
mpiexec protocol in :mod:`repro.mpi.hydra`); this module models the
synchronization semantics.
"""

from __future__ import annotations

from typing import Any, Optional

from ..simkernel import Environment, Event

__all__ = ["PmiKvs", "PmiError"]


class PmiError(Exception):
    """Protocol violation in the PMI exchange."""


class PmiKvs:
    """A PMI key-value space shared by ``size`` ranks, with fences.

    ``fence(rank)`` returns an event that fires once every rank has entered
    the fence; puts made before the fence are visible to gets after it
    (the only ordering PMI guarantees).
    """

    def __init__(self, env: Environment, size: int):
        if size <= 0:
            raise ValueError("size must be positive")
        self.env = env
        self.size = size
        self._pending: dict[str, Any] = {}
        self._committed: dict[str, Any] = {}
        self._fence_waiters: list[Event] = []
        self._fenced: set[int] = set()
        self.fence_generation = 0

    def put(self, rank: int, key: str, value: Any) -> None:
        """Stage a key-value pair (visible after the next fence)."""
        self._check_rank(rank)
        if key in self._pending:
            raise PmiError(f"duplicate PMI put for key {key!r}")
        self._pending[key] = value

    def get(self, rank: int, key: str) -> Any:
        """Read a committed key; raises PmiError if unknown."""
        self._check_rank(rank)
        try:
            return self._committed[key]
        except KeyError:
            raise PmiError(f"PMI get of unknown key {key!r}") from None

    def has(self, key: str) -> bool:
        """True if ``key`` has been committed by a completed fence."""
        return key in self._committed

    def fence(self, rank: int) -> Event:
        """Enter the fence; the event fires when all ranks have entered."""
        self._check_rank(rank)
        if rank in self._fenced:
            raise PmiError(f"rank {rank} entered the same fence twice")
        self._fenced.add(rank)
        ev = self.env.event()
        self._fence_waiters.append(ev)
        if len(self._fenced) == self.size:
            self._committed.update(self._pending)
            self._pending.clear()
            self._fenced.clear()
            self.fence_generation += 1
            waiters, self._fence_waiters = self._fence_waiters, []
            for w in waiters:
                w.succeed(self.fence_generation)
        return ev

    def snapshot(self) -> dict[str, Any]:
        """Copy of all committed key-value pairs."""
        return dict(self._committed)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise PmiError(f"rank {rank} out of range (size {self.size})")
