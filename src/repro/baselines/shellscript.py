"""The "shell script" baseline of Fig. 7: mpiexec in a loop.

"The workload was run in each of two modes: a 'shell script' mode, which
simply calls mpiexec repeatedly, and a mode in which JETS was used.  The
shell script mode can use only the entire allocation" — one job at a time,
each paying a full ssh-bootstrap across its nodes.  No pilot workers, no
reuse: this is what JETS's ~90 % utilization is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Optional

from ..cluster.machine import MachineSpec
from ..cluster.platform import Platform
from ..core.tasklist import JobSpec
from ..metrics.utilization import UtilizationLedger
from ..mpi.app import RankContext
from ..mpi.comm import SimComm
from ..simkernel import Environment

__all__ = ["ShellScriptConfig", "ShellScriptReport", "run_shellscript_batch"]


@dataclass(frozen=True)
class ShellScriptConfig:
    """Cost model for ssh-bootstrapped mpiexec.

    ssh connections to the job's nodes are opened with bounded concurrency
    (default OpenSSH-ish fan-out), each costing ``ssh_setup``; then every
    node pays its fork/exec for the proxy and the user process.
    """

    ssh_setup: float = 0.12
    ssh_fanout: int = 8
    mpiexec_spawn: float = 0.01


@dataclass
class ShellScriptReport:
    """Outcome of a shell-script batch."""

    jobs_completed: int
    utilization: float
    span: float
    allocation_nodes: int


def run_shellscript_batch(
    machine: MachineSpec,
    jobs: Iterable[JobSpec],
    allocation_nodes: Optional[int] = None,
    config: Optional[ShellScriptConfig] = None,
    seed: int = 0,
) -> ShellScriptReport:
    """Run ``jobs`` sequentially, mpiexec-style, on one allocation."""
    cfg = config or ShellScriptConfig()
    nodes = allocation_nodes or machine.nodes
    platform = Platform(machine, seed=seed)
    job_list = list(jobs)
    ledger = UtilizationLedger(nodes)
    done = {"count": 0}

    def driver() -> Generator:
        env: Environment = platform.env
        pool = platform.nodes[:nodes]
        for job in job_list:
            t0 = env.now
            yield env.timeout(cfg.mpiexec_spawn)
            chosen = pool[: job.nodes]
            # ssh bootstrap with bounded fan-out.
            waves, rem = divmod(job.nodes, cfg.ssh_fanout)
            yield env.timeout(cfg.ssh_setup * (waves + (1 if rem else 0)))
            # Launch one rank per node per ppn, directly (no pilot).
            endpoints: list[int] = []
            for node in chosen:
                endpoints.extend([node.endpoint] * job.ppn)
            comm = SimComm(env, platform.fabric, endpoints)
            procs = []
            rank = 0
            for node in chosen:
                for _ in range(job.ppn):
                    procs.append(
                        env.process(
                            node.exec_process(
                                job.program.image,
                                _rank_body(env, comm, rank, job, node),
                            )
                        )
                    )
                    rank += 1
            yield env.all_of(procs)
            done["count"] += 1
            ledger.add(job.duration_hint, job.nodes, t0, env.now)

    proc = platform.env.process(driver(), name="shellscript")
    platform.env.run(proc)
    return ShellScriptReport(
        jobs_completed=done["count"],
        utilization=ledger.utilization(),
        span=ledger.span,
        allocation_nodes=nodes,
    )


def _rank_body(env, comm, rank, job, node):
    def body() -> Generator:
        ctx = RankContext(
            env=env,
            comm=comm,
            rank=rank,
            size=job.world_size,
            node=node,
            job_id=job.job_id,
        )
        return (yield from job.program.run(ctx))

    return body
