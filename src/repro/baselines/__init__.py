"""Baseline systems the paper compares JETS against."""

from .falkon import FalkonSimulation, FalkonUnsupportedError
from .ips import IpsConfig, IpsReport, IpsUnsupportedError, run_ips_batch
from .shellscript import (
    ShellScriptConfig,
    ShellScriptReport,
    run_shellscript_batch,
)

__all__ = [
    "FalkonSimulation",
    "FalkonUnsupportedError",
    "IpsConfig",
    "IpsReport",
    "IpsUnsupportedError",
    "ShellScriptConfig",
    "ShellScriptReport",
    "run_shellscript_batch",
]
