"""Falkon-style dispatcher baseline (Section 2).

"The Falkon system enables MTC on Blue Gene/P resources, but only for
single-job executions, and does not support the MPTC paradigm."  We model
it as the same pilot-worker architecture as JETS with the MPI path removed:
serial tasks dispatch at comparable rates (Falkon was the state of the art
there), and any MPI job is rejected — which is precisely the gap JETS
fills.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..cluster.machine import MachineSpec
from ..core.jets import (
    FaultSpec,
    JetsConfig,
    Simulation,
    StandaloneReport,
    service_config_for,
)
from ..core.tasklist import JobSpec, TaskList

__all__ = ["FalkonUnsupportedError", "FalkonSimulation"]


class FalkonUnsupportedError(RuntimeError):
    """Falkon cannot execute multi-process (MPI) tasks."""


class FalkonSimulation:
    """A Falkon-like many-task service: serial tasks only."""

    def __init__(
        self,
        machine: MachineSpec,
        config: Optional[JetsConfig] = None,
        seed: int = 0,
    ):
        self.machine = machine
        self._sim = Simulation(
            machine,
            config or JetsConfig(service=service_config_for(machine)),
            seed=seed,
        )

    def run_batch(
        self,
        jobs: Iterable[JobSpec],
        allocation_nodes: Optional[int] = None,
        faults: Optional[FaultSpec] = None,
    ) -> StandaloneReport:
        """Run a batch of strictly serial tasks.

        Raises :class:`FalkonUnsupportedError` if any job needs more than
        one process.
        """
        job_list = list(jobs)
        for job in job_list:
            if job.mpi or job.world_size > 1:
                raise FalkonUnsupportedError(
                    f"{job.job_id}: Falkon supports only single-process "
                    f"tasks (got {job.nodes}×{job.ppn})"
                )
        return self._sim.run_standalone(
            TaskList(job_list),
            allocation_nodes=allocation_nodes,
            faults=faults,
        )
