"""IPS-style launcher baseline (Section 2).

The Integrated Plasma Simulator manages a node pool inside one allocation,
like JETS, but with the two limitations the paper calls out:

1. it "must accurately predict how the underlying resource manager will
   assign nodes to IPS task creation requests ... this task can be tricky
   and requires user error-prone logic" — modelled as a per-launch
   misprediction probability that wastes a placement round trip and
   retries;
2. it "depends on the native systems underlying job placement and MPI
   launching service, such as mpiexec on simple clusters and ALPS aprun on
   Cray systems", with "no straightforward way to run on systems with more
   complex job launching mechanisms, such as the Blue Gene/P" — modelled
   by refusing machines whose compute OS lacks a native launcher path.

Jobs run concurrently on disjoint node groups (IPS does overlap tasks),
so the gap to JETS comes from per-launch cost, not concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Optional

from ..cluster.machine import MachineSpec
from ..cluster.platform import Platform
from ..core.tasklist import JobSpec
from ..metrics.utilization import UtilizationLedger
from ..mpi.app import RankContext
from ..mpi.comm import SimComm
from ..simkernel import Resource, Store

__all__ = ["IpsConfig", "IpsReport", "run_ips_batch", "IpsUnsupportedError"]


class IpsUnsupportedError(RuntimeError):
    """The machine has no native launcher IPS can drive."""


@dataclass(frozen=True)
class IpsConfig:
    """IPS cost model.

    Attributes:
        launch_cost: native mpiexec/aprun invocation cost per task.
        placement_cost: resource-manager node-assignment query per task.
        mispredict_prob: chance a task creation request lands on nodes the
            resource manager assigned differently, forcing a retry.
        mispredict_penalty: wasted time per misprediction.
    """

    launch_cost: float = 0.25
    placement_cost: float = 0.08
    mispredict_prob: float = 0.10
    mispredict_penalty: float = 1.5


@dataclass
class IpsReport:
    """Outcome of an IPS batch."""

    jobs_completed: int
    utilization: float
    span: float
    mispredictions: int
    allocation_nodes: int


def run_ips_batch(
    machine: MachineSpec,
    jobs: Iterable[JobSpec],
    allocation_nodes: Optional[int] = None,
    config: Optional[IpsConfig] = None,
    seed: int = 0,
) -> IpsReport:
    """Run ``jobs`` through the IPS-style pool manager."""
    if "bgp" in machine.name:
        raise IpsUnsupportedError(
            f"{machine.name}: no native mpiexec/aprun launch path on BG/P "
            "compute nodes (the JETS worker-agent model sidesteps this)"
        )
    cfg = config or IpsConfig()
    nodes = allocation_nodes or machine.nodes
    platform = Platform(machine, seed=seed)
    env = platform.env
    rng = platform.rng.stream("ips")
    ledger = UtilizationLedger(nodes)
    stats = {"done": 0, "mispredict": 0}

    # Free-node pool as a store of node objects.  Claims are serialized by
    # a mutex so two jobs never hold partial groups (which would deadlock —
    # IPS tracks the pool centrally for exactly this reason).
    pool = Store(env)
    claim_lock = Resource(env, 1)
    for node in platform.nodes[:nodes]:
        pool.put(node)

    def run_job(job: JobSpec) -> Generator:
        t0 = env.now
        with claim_lock.request() as lock:
            yield lock
            chosen = []
            for _ in range(job.nodes):
                node = yield pool.get()
                chosen.append(node)
        yield env.timeout(cfg.placement_cost)
        while rng.random() < cfg.mispredict_prob:
            stats["mispredict"] += 1
            yield env.timeout(cfg.mispredict_penalty)
        yield env.timeout(cfg.launch_cost)
        endpoints = []
        for node in chosen:
            endpoints.extend([node.endpoint] * job.ppn)
        comm = SimComm(env, platform.fabric, endpoints)
        procs = []
        rank = 0
        for node in chosen:
            for _ in range(job.ppn):
                procs.append(
                    env.process(
                        node.exec_process(
                            job.program.image,
                            _rank_body(env, comm, rank, job, node),
                        )
                    )
                )
                rank += 1
        yield env.all_of(procs)
        for node in chosen:
            pool.put(node)
        stats["done"] += 1
        ledger.add(job.duration_hint, job.nodes, t0, env.now)

    def driver() -> Generator:
        tasks = [env.process(run_job(j), name=f"ips-{j.job_id}") for j in jobs]
        yield env.all_of(tasks)

    proc = env.process(driver(), name="ips")
    env.run(proc)
    return IpsReport(
        jobs_completed=stats["done"],
        utilization=ledger.utilization(),
        span=ledger.span,
        mispredictions=stats["mispredict"],
        allocation_nodes=nodes,
    )


def _rank_body(env, comm, rank, job, node):
    def body() -> Generator:
        ctx = RankContext(
            env=env,
            comm=comm,
            rank=rank,
            size=job.world_size,
            node=node,
            job_id=job.job_id,
        )
        return (yield from job.program.run(ctx))

    return body
