"""Observability: lifecycle spans, metrics registry, exporters, reports.

The measurement substrate for the whole reproduction (paper Section
6.1.5: every reported result derives from worker/task start/stop
instrumentation).  Four pieces:

* :mod:`repro.obs.spans` — typed job/worker/proxy lifecycle spans
  reconstructed from trace records.
* :mod:`repro.obs.metrics` — named counters, time-weighted gauges and
  quantile histograms components register into.
* :mod:`repro.obs.export` — JSONL trace dump/reload and Chrome
  ``trace_event`` output (Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.report` — plain-text run summaries (throughput,
  utilization, per-stage latency quantiles, fault counts).

:mod:`repro.obs.session` ties them to the CLIs: ``with
obs.session(trace_out="run.jsonl", report=True):`` captures every
platform built inside the block and exports on exit.
"""

from .export import read_jsonl, to_chrome_trace, to_jsonl
from .metrics import Histogram, Registry, quantile
from .report import RunReport, render_report
from .session import ObsSession, active, session
from .spans import (
    AttemptSpan,
    JobSpan,
    ProxySpan,
    RunSpans,
    Transition,
    WorkerSpan,
    build_spans,
)

__all__ = [
    "AttemptSpan",
    "Histogram",
    "JobSpan",
    "ObsSession",
    "ProxySpan",
    "Registry",
    "RunReport",
    "RunSpans",
    "Transition",
    "WorkerSpan",
    "active",
    "build_spans",
    "quantile",
    "read_jsonl",
    "render_report",
    "session",
    "to_chrome_trace",
    "to_jsonl",
]
