"""Ambient observability sessions: capture every platform a run creates.

Experiment harnesses construct :class:`~repro.cluster.platform.Platform`
instances deep inside their sweeps, so exporters can't be threaded
through every call site.  Instead, an :class:`ObsSession` is installed as
an ambient context (``with obs.session(trace_out=...)``): every platform
built while it is active attaches its trace and metrics registry, and on
exit the session writes the JSONL dump, the Chrome trace, and/or prints
per-run summary reports.

Sessions nest (a stack); platforms attach to the innermost active one.
"""

from __future__ import annotations

import os
import sys
import time
from typing import IO, Optional

from ..simkernel import StreamingTrace, Trace, TraceSink
from .metrics import Registry
from .progress import ProgressTracker
from .spans import SpanBuilder

__all__ = ["ObsSession", "session", "active", "unwritable_reason"]

_STACK: list["ObsSession"] = []


def active() -> Optional["ObsSession"]:
    """The innermost active session, or None."""
    return _STACK[-1] if _STACK else None


def session(
    trace_out: Optional[str] = None,
    chrome_out: Optional[str] = None,
    report: bool = False,
    report_stream: Optional[IO[str]] = None,
    stream: bool = False,
    window: int = 65536,
    progress_every: Optional[float] = None,
) -> "ObsSession":
    """Create a session context (see :class:`ObsSession`)."""
    return ObsSession(
        trace_out=trace_out,
        chrome_out=chrome_out,
        report=report,
        report_stream=report_stream,
        stream=stream,
        window=window,
        progress_every=progress_every,
    )


class ObsSession:
    """Collects (label, trace, registry) per run and exports on exit."""

    def __init__(
        self,
        trace_out: Optional[str] = None,
        chrome_out: Optional[str] = None,
        report: bool = False,
        report_stream: Optional[IO[str]] = None,
        stream: bool = False,
        window: int = 65536,
        progress_every: Optional[float] = None,
    ):
        self.trace_out = trace_out
        # Acceptance path: --trace-out run.jsonl also yields a Chrome
        # trace next to it unless an explicit path was given.
        if chrome_out is None and trace_out is not None:
            chrome_out = derive_chrome_path(trace_out)
        self.chrome_out = chrome_out
        self.report = report
        self.report_stream = report_stream
        #: Streaming mode: platforms built under this session get a
        #: windowed :class:`~repro.simkernel.StreamingTrace` that spills
        #: to ``trace_out`` as the run executes, and every downstream
        #: consumer (spans for Chrome/report, progress heartbeats) folds
        #: the stream incrementally — RSS stays flat at any event count.
        self.stream = stream
        self.window = window
        self.progress_every = progress_every
        self.runs: list[tuple[str, TraceSink, Optional[Registry]]] = []
        #: Streaming mode only: one span fold per attached run (same
        #: index as :attr:`runs`), built as records flow.
        self._span_builders: list[SpanBuilder] = []
        self._trackers: list[ProgressTracker] = []
        #: Wall-clock stamp per attached run (for live report rendering
        #: only — never exported, so trace dumps stay deterministic).
        self._attach_walls: list[float] = []

    def make_trace(self, env) -> Optional[TraceSink]:
        """Trace factory for platforms built under this session.

        Returns a streaming sink in streaming mode (run-tagged; the
        first run truncates the spill file, later runs append after the
        previous sink is closed at attach time), or None to let the
        platform build the default in-RAM :class:`Trace`.
        """
        if not self.stream:
            return None
        return StreamingTrace(
            env,
            window=self.window,
            spill=self.trace_out,
            run=len(self.runs),
            truncate=not self.runs,
        )

    def attach(
        self,
        trace: TraceSink,
        label: str = "",
        registry: Optional[Registry] = None,
    ) -> None:
        """Register one run's trace (called by Platform.__init__)."""
        if isinstance(trace, StreamingTrace):
            # Runs execute sequentially: the previous run is over, so
            # drain its window and write its trailer *before* the new
            # sink appends anything — the spill file keeps the exact
            # record/trailer interleaving of an in-RAM dump.
            self._close_open_sink()
            trace.label = label
            if self.chrome_out or self.report:
                # Spans are only folded when an output will read them:
                # span state is bounded by entity count (jobs/workers),
                # not record count, but a pure spill session shouldn't
                # pay even that.
                builder = SpanBuilder()
                trace.subscribe(builder.fold)
                self._span_builders.append(builder)
            else:
                self._span_builders.append(None)
        elif self.stream:
            # An in-RAM trace attached under a streaming session (e.g. a
            # hand-built platform); keep the fold list index-aligned.
            self._span_builders.append(None)
        if self.progress_every:
            self._trackers.append(
                ProgressTracker(
                    trace, every=self.progress_every, registry=registry
                )
            )
        self.runs.append((label, trace, registry))
        # Sessions measure wall time by design; sim code stays clock-free.
        self._attach_walls.append(time.perf_counter())  # repro: noqa[DT001]

    def _close_open_sink(self) -> None:
        """Close the most recently attached streaming sink, if open."""
        if not self.runs:
            return
        _label, trace, _reg = self.runs[-1]
        if isinstance(trace, StreamingTrace) and not trace.closed:
            trace.close(perf=trace.perf())

    def __enter__(self) -> "ObsSession":
        _STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _STACK.remove(self)
        if exc_type is None:
            self.flush()

    def flush(self) -> None:
        """Write every configured output for the captured runs."""
        if not self.runs:
            return
        from .export import to_chrome_trace, to_jsonl
        from .report import render_report

        if self.stream:
            self._flush_streaming(to_chrome_trace, render_report)
            return
        if self.trace_out:
            try:
                with open(self.trace_out, "w") as fh:
                    for i, (label, trace, _reg) in enumerate(self.runs):
                        to_jsonl(
                            trace,
                            fh,
                            run=i,
                            label=label,
                            # Deterministic perf trailer (no wall-clock):
                            # same-seed dumps must stay byte-identical.
                            perf={
                                "events": trace.env.events_processed,
                                "records": len(trace.records),
                                "sim_s": trace.env.now,
                            },
                        )
            except OSError as exc:
                # Don't lose the report (or raise after a long sweep)
                # over an unwritable dump path.
                print(f"obs: cannot write {self.trace_out}: {exc}",
                      file=sys.stderr)
        if self.chrome_out:
            try:
                to_chrome_trace(
                    [
                        (label, trace, registry)
                        for label, trace, registry in self.runs
                    ],
                    self.chrome_out,
                )
            except OSError as exc:
                print(f"obs: cannot write {self.chrome_out}: {exc}",
                      file=sys.stderr)
        if self.report:
            stream = self.report_stream or sys.stdout
            flush_wall = time.perf_counter()  # repro: noqa[DT001]
            for i, (label, trace, registry) in enumerate(self.runs):
                title = label or f"run {i}"
                perf = {
                    "events": trace.env.events_processed,
                    "records": len(trace.records),
                    "sim_s": trace.env.now,
                }
                # Runs execute sequentially, so a run's wall window ends
                # where the next platform is built (or at flush).
                if i < len(self._attach_walls):
                    end = (
                        self._attach_walls[i + 1]
                        if i + 1 < len(self._attach_walls)
                        else flush_wall
                    )
                    perf["wall_s"] = end - self._attach_walls[i]
                print(
                    render_report(
                        trace, registry=registry, title=title, perf=perf
                    ),
                    file=stream,
                )

    def _flush_streaming(self, to_chrome_trace, render_report) -> None:
        """Streaming-mode flush: records already spilled as runs ran.

        Closes the last sink (drain + trailer), then renders the Chrome
        trace and reports from the incrementally-folded spans — the
        full record stream is never rematerialized.
        """
        from .spans import build_spans

        self._close_open_sink()

        def spans_for(i: int, trace: TraceSink):
            builder = (
                self._span_builders[i]
                if i < len(self._span_builders)
                else None
            )
            if builder is not None:
                return builder.result()
            return build_spans(trace)

        if self.chrome_out:
            try:
                to_chrome_trace(
                    [
                        (label, spans_for(i, trace), registry)
                        for i, (label, trace, registry) in enumerate(
                            self.runs
                        )
                    ],
                    self.chrome_out,
                )
            except OSError as exc:
                print(f"obs: cannot write {self.chrome_out}: {exc}",
                      file=sys.stderr)
        if self.report:
            stream = self.report_stream or sys.stdout
            flush_wall = time.perf_counter()  # repro: noqa[DT001]
            for i, (label, trace, registry) in enumerate(self.runs):
                title = label or f"run {i}"
                perf = _sink_perf(trace)
                if i < len(self._attach_walls):
                    end = (
                        self._attach_walls[i + 1]
                        if i + 1 < len(self._attach_walls)
                        else flush_wall
                    )
                    perf["wall_s"] = end - self._attach_walls[i]
                print(
                    render_report(
                        spans_for(i, trace),
                        registry=registry,
                        title=title,
                        perf=perf,
                    ),
                    file=stream,
                )


def _sink_perf(trace: TraceSink) -> dict:
    """Deterministic perf payload for any sink kind."""
    if isinstance(trace, StreamingTrace):
        return trace.perf()
    return {
        "events": trace.env.events_processed,
        "records": len(trace.records),
        "sim_s": trace.env.now,
    }


def unwritable_reason(path: Optional[str]) -> Optional[str]:
    """Why ``path`` can't be written, or None if it looks writable.

    CLIs call this up front so a bad ``--trace-out`` fails before the
    simulation runs, not at flush time.
    """
    if not path:
        return None
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        return f"directory {directory} does not exist"
    if not os.access(directory, os.W_OK):
        return f"directory {directory} is not writable"
    return None


def derive_chrome_path(trace_out: str) -> str:
    """``run.jsonl`` → ``run.trace.json`` (sibling Chrome trace path)."""
    for suffix in (".jsonl", ".json"):
        if trace_out.endswith(suffix):
            return trace_out[: -len(suffix)] + ".trace.json"
    return trace_out + ".trace.json"
