"""Named metrics registry: counters, time-weighted gauges, histograms.

Components register instruments by name instead of hand-rolling their own
bookkeeping; the registry owns the environment/trace wiring so a
:class:`~repro.simkernel.Counter` can mirror increments onto the trace
timeline and a :class:`~repro.simkernel.Gauge` integrates against sim
time.  A :meth:`Registry.snapshot` feeds the run-summary report.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

from ..simkernel import Counter, Environment, Gauge, TraceSink

__all__ = ["Histogram", "Registry", "quantile"]


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default method).

    ``q`` in [0, 1]; raises on an empty sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range: {q}")
    data = sorted(values)
    if not data:
        raise ValueError("empty sample")
    if len(data) == 1:
        return float(data[0])
    pos = q * (len(data) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class Histogram:
    """Value reservoir with quantile summaries (queue waits, latencies)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile of the sample (0 for an empty one)."""
        if not self.values:
            return 0.0
        return quantile(self.values, q)

    def summary(self) -> dict:
        """count/mean/min/p50/p95/p99/max of the sample."""
        if not self.values:
            return {
                "count": 0, "mean": 0.0, "min": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        return {
            "count": self.count,
            "mean": self.mean(),
            "min": min(self.values),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": max(self.values),
        }


class Registry:
    """Instrument factory/lookup shared by every component of a platform.

    Calling an accessor twice with the same name returns the same
    instrument, so independent components can share (e.g.) one op
    counter without coordinating construction.
    """

    def __init__(self, env: Environment, trace: Optional[TraceSink] = None):
        self.env = env
        self.trace = trace
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, traced: bool = False) -> Counter:
        """Named monotonic counter; ``traced`` mirrors increments onto
        the trace (one record per incr — use for low-rate events)."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        if traced and self.trace is not None and not c.connected:
            c.connect(self.trace)
        return c

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        """Named time-weighted gauge bound to the registry's clock."""
        g = self._gauges.get(name)
        if g is None:
            g = Gauge(self.env, initial)
            self._gauges[name] = g
        return g

    def histogram(self, name: str) -> Histogram:
        """Named histogram (value reservoir with quantiles)."""
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(name)
            self._histograms[name] = h
        return h

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        """Lookup an instrument of any kind by name."""
        return (
            self._counters.get(name)
            or self._gauges.get(name)
            or self._histograms.get(name)
        )

    def names(self) -> list[str]:
        """All registered instrument names (sorted)."""
        return sorted(
            [*self._counters, *self._gauges, *self._histograms]
        )

    def gauge_series(self) -> dict[str, list[tuple[float, float]]]:
        """Every gauge's full ``(time, value)`` breakpoint series.

        Feeds the Chrome ``trace_event`` counter-track export: one
        Perfetto counter series per gauge (occupancy, queue depths).
        """
        return {
            name: self._gauges[name].series()
            for name in sorted(self._gauges)
        }

    def gauge_levels(self) -> dict[str, float]:
        """Current value of every gauge (sorted by name).

        The cheap sub-snapshot the live-progress heartbeat embeds:
        queue depths and occupancy levels without the per-instrument
        statistics :meth:`snapshot` computes.
        """
        return {
            name: self._gauges[name].value for name in sorted(self._gauges)
        }

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time view of every instrument, for reports/exports."""
        out: dict[str, dict] = {}
        for name, c in self._counters.items():
            out[name] = {"type": "counter", "value": c.value}
        for name, g in self._gauges.items():
            out[name] = {
                "type": "gauge",
                "value": g.value,
                "mean": g.mean(),
                "max": g.max(),
            }
        for name, h in self._histograms.items():
            out[name] = {"type": "histogram", **h.summary()}
        return out
