"""Run-summary reports rendered from lifecycle spans.

Computes the quantities the paper reports — task throughput (Fig. 6),
Eq. (1) utilization (Fig. 9/12), fault/resubmit counts (Fig. 10) — plus
per-stage latency quantiles (queue-wait, wire-up) from the span layer,
and renders them as a plain-text block.  Works on a live trace or on a
JSONL dump reloaded by ``jets report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..simkernel import Trace, TraceRecord
from .metrics import Histogram, Registry
from .spans import RunSpans, build_spans

__all__ = ["RunReport", "render_report", "resubmit_cause"]

_STAGES = ("queue_wait", "wireup", "app")

#: Render/aggregation order for resubmit causes (known causes first).
_CAUSES = (
    "heartbeat", "deadline", "wireup_abort", "connection", "task_error",
    "other",
)


def resubmit_cause(data: Optional[dict]) -> str:
    """Classify a ``job.retry`` payload into a resubmit cause.

    Prefers the typed ``reason`` key (present when the dispatcher knows
    why: ``heartbeat``, ``deadline``, ``wireup_abort``); otherwise falls
    back to error-text heuristics so traces recorded before the key
    existed still break down sensibly.
    """
    data = data or {}
    reason = data.get("reason")
    if reason:
        return str(reason)
    error = str(data.get("error", "")).lower()
    if "heartbeat" in error:
        return "heartbeat"
    if "deadline" in error or "hung" in error:
        return "deadline"
    if "wire-up" in error or "wireup" in error or "watchdog" in error:
        return "wireup_abort"
    if "connection" in error or "unreachable" in error or "closed" in error:
        return "connection"
    if "status" in error:
        return "task_error"
    return "other"


@dataclass
class RunReport:
    """Derived metrics of one run, ready to render."""

    machine: str = ""
    allocation_nodes: Optional[int] = None
    jobs_total: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    resubmissions: int = 0
    #: resubmit cause -> count (see :func:`resubmit_cause`).
    resubmit_causes: dict[str, int] = field(default_factory=dict)
    faults: int = 0
    #: injected-fault kind -> count (``fault.*`` category suffixes).
    fault_kinds: dict[str, int] = field(default_factory=dict)
    workers_seen: int = 0
    workers_lost: int = 0
    #: Crash-recovery (``resume.*``) breakdown of a resumed run.
    resumes: int = 0
    resume_skipped_done: int = 0
    resume_skipped_failed: int = 0
    resume_resubmitted: int = 0
    crash_time: Optional[float] = None
    span: float = 0.0
    throughput: float = 0.0
    utilization: Optional[float] = None
    worker_busy_fraction: Optional[float] = None
    #: stage name -> Histogram.summary() dict
    stages: dict[str, dict] = field(default_factory=dict)
    #: Registry snapshot (live runs only; absent when rebuilt from JSONL).
    instruments: dict[str, dict] = field(default_factory=dict)
    #: Performance: kernel events the run's environment processed.
    events_processed: Optional[int] = None
    #: Performance: total trace records the run logged.
    trace_records: Optional[int] = None
    #: Performance: simulated seconds the environment advanced.
    sim_seconds: Optional[float] = None
    #: Performance: wall seconds (live sessions only — never from JSONL,
    #: whose perf trailer is deterministic by construction).
    wall_seconds: Optional[float] = None

    @classmethod
    def from_spans(
        cls,
        spans: RunSpans,
        registry: Optional[Registry] = None,
        allocation_nodes: Optional[int] = None,
        perf: Optional[dict] = None,
    ) -> "RunReport":
        """Compute every summary quantity from a run's spans."""
        jobs = spans.job_list()
        completed = [j for j in jobs if j.ok]
        failed = [j for j in jobs if j.ok is False]

        causes: dict[str, int] = {}
        for job in jobs:
            for attempt in job.attempts:
                for tr in attempt.transitions:
                    if tr.state == "resubmitted":
                        cause = resubmit_cause(tr.data)
                        causes[cause] = causes.get(cause, 0) + 1
        kinds: dict[str, int] = {}
        for _t, kind in spans.fault_events:
            kinds[kind] = kinds.get(kind, 0) + 1

        stage_hists = {name: Histogram(name) for name in _STAGES}
        for job in jobs:
            for attempt in job.attempts:
                qw = attempt.queue_wait
                if qw is not None:
                    stage_hists["queue_wait"].observe(qw)
                wl = attempt.wireup_latency
                if wl is not None:
                    stage_hists["wireup"].observe(wl)
                if (
                    attempt.t_app_running is not None
                    and attempt.t_end is not None
                    and attempt.outcome == "done"
                ):
                    stage_hists["app"].observe(
                        attempt.t_end - attempt.t_app_running
                    )

        # Job span: first dispatch to last completion — the same window
        # the stand-alone report's ledger charges (long tails included).
        starts = [
            a.t_grouped
            for j in completed
            for a in j.attempts[:1]
            if a.t_grouped is not None
        ]
        ends = [j.t_end for j in completed if j.t_end is not None]
        active_span = (max(ends) - min(starts)) if starts and ends else 0.0

        alloc = allocation_nodes or spans.allocation_nodes
        utilization: Optional[float] = None
        if alloc and active_span > 0:
            # Lazy import: metrics.timeline pulls obs.spans in at import
            # time, so the reverse edge must not run at module load.
            from ..metrics.utilization import UtilizationLedger

            ledger = UtilizationLedger.from_spans(spans, alloc)
            utilization = ledger.utilization()

        workers = spans.worker_list()
        busy_fraction: Optional[float] = None
        if workers:
            total = 0.0
            busy = 0.0
            for w in workers:
                for s, e, state in w.state_segments(until=spans.t_last):
                    total += e - s
                    if state == "busy":
                        busy += e - s
            busy_fraction = (busy / total) if total > 0 else None

        return cls(
            machine=spans.machine,
            allocation_nodes=alloc,
            jobs_total=len(jobs),
            jobs_completed=len(completed),
            jobs_failed=len(failed),
            resubmissions=sum(j.resubmissions for j in jobs),
            resubmit_causes=causes,
            faults=len(spans.faults),
            fault_kinds=kinds,
            workers_seen=len(workers),
            workers_lost=sum(1 for w in workers if w.outcome == "lost"),
            resumes=len(spans.resumes),
            resume_skipped_done=sum(
                1 for o in spans.resume_skipped.values() if o == "done"
            ),
            resume_skipped_failed=sum(
                1 for o in spans.resume_skipped.values() if o == "failed"
            ),
            resume_resubmitted=len(spans.resume_resubmitted),
            crash_time=spans.crash_time,
            span=active_span,
            throughput=(len(completed) / active_span) if active_span > 0 else 0.0,
            utilization=utilization,
            worker_busy_fraction=busy_fraction,
            stages={
                name: h.summary()
                for name, h in stage_hists.items()
                if h.count
            },
            instruments=registry.snapshot() if registry is not None else {},
            events_processed=(perf or {}).get("events"),
            trace_records=(perf or {}).get("records"),
            sim_seconds=(perf or {}).get("sim_s"),
            wall_seconds=(perf or {}).get("wall_s"),
        )

    @classmethod
    def from_trace(
        cls,
        source: Union[Trace, Iterable[TraceRecord]],
        registry: Optional[Registry] = None,
        allocation_nodes: Optional[int] = None,
        perf: Optional[dict] = None,
    ) -> "RunReport":
        """Build the report straight from trace records.

        A live :class:`Trace` fills the performance fields from its
        environment automatically; reloaded record lists rely on the
        caller passing ``perf`` (e.g. from a JSONL perf trailer).
        """
        if perf is None and isinstance(source, Trace):
            perf = {
                "events": source.env.events_processed,
                "records": len(source.records),
                "sim_s": source.env.now,
            }
        return cls.from_spans(
            build_spans(source), registry, allocation_nodes, perf=perf
        )

    def render(self, title: str = "") -> str:
        """Plain-text run summary."""
        head = title or (self.machine or "run")
        alloc = (
            f" on {self.allocation_nodes} nodes"
            if self.allocation_nodes
            else ""
        )
        lines = [
            f"== run report: {head}{alloc} ==",
            (
                f"jobs: {self.jobs_total} submitted, "
                f"{self.jobs_completed} completed, "
                f"{self.jobs_failed} failed, "
                f"{self.resubmissions} resubmissions"
            ),
            (
                f"workers: {self.workers_seen} seen, "
                f"{self.workers_lost} lost, "
                f"{self.faults} faults injected"
            ),
        ]
        if self.fault_kinds:
            lines.append(
                "faults by kind: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.fault_kinds.items())
                )
            )
        if self.resumes:
            crash = (
                f", crash at t={self.crash_time:.3f} s"
                if self.crash_time is not None
                else ""
            )
            lines.append(
                f"recovery: {self.resumes} resume(s){crash} — "
                f"{self.resume_skipped_done} skipped done, "
                f"{self.resume_skipped_failed} skipped failed, "
                f"{self.resume_resubmitted} resubmitted"
            )
        if self.resubmit_causes:
            ordered = [c for c in _CAUSES if c in self.resubmit_causes]
            ordered += sorted(
                c for c in self.resubmit_causes if c not in _CAUSES
            )
            lines.append(
                "resubmits by cause: "
                + ", ".join(f"{c}={self.resubmit_causes[c]}" for c in ordered)
            )
        lines += [
            (
                f"span: {self.span:.3f} s, "
                f"throughput: {self.throughput:.2f} jobs/s"
            ),
        ]
        if self.utilization is not None:
            lines.append(f"utilization (Eq. 1): {self.utilization:.1%}")
        if self.worker_busy_fraction is not None:
            lines.append(
                f"worker busy fraction: {self.worker_busy_fraction:.1%}"
            )
        if self.stages:
            lines.append(
                "stage latencies (s):"
                f"{'':<6}{'p50':>10}{'p95':>10}{'p99':>10}"
                f"{'mean':>10}{'max':>10}{'n':>7}"
            )
            for name in _STAGES:
                s = self.stages.get(name)
                if not s:
                    continue
                lines.append(
                    f"  {name:<15}"
                    f"{s['p50']:>10.4f}{s['p95']:>10.4f}{s['p99']:>10.4f}"
                    f"{s['mean']:>10.4f}{s['max']:>10.4f}{s['count']:>7d}"
                )
        counters = {
            k: v for k, v in self.instruments.items() if v["type"] == "counter"
        }
        if counters:
            lines.append(
                "counters: "
                + ", ".join(f"{k}={v['value']}" for k, v in sorted(counters.items()))
            )
        occ = self.instruments.get("dispatcher.occupancy")
        if occ is not None:
            lines.append(
                f"dispatcher service-loop occupancy: {occ['mean']:.1%} mean"
            )
        if (
            self.events_processed is not None
            or self.trace_records is not None
            or self.sim_seconds is not None
        ):
            parts = []
            if self.events_processed is not None:
                parts.append(f"{self.events_processed} kernel events")
            if self.trace_records is not None:
                parts.append(f"{self.trace_records} trace records")
            if self.sim_seconds is not None:
                parts.append(f"sim {self.sim_seconds:.3f} s")
            lines.append("performance: " + ", ".join(parts))
            if self.wall_seconds is not None and self.wall_seconds > 0:
                ratio = (
                    f", sim/wall {self.sim_seconds / self.wall_seconds:.1f}x"
                    if self.sim_seconds is not None
                    else ""
                )
                rate = (
                    f", {self.events_processed / self.wall_seconds:,.0f} events/s"
                    if self.events_processed is not None
                    else ""
                )
                lines.append(
                    f"  wall {self.wall_seconds:.3f} s{ratio}{rate}"
                )
        return "\n".join(lines)


def render_report(
    source: Union[Trace, Iterable[TraceRecord], RunSpans],
    registry: Optional[Registry] = None,
    title: str = "",
    allocation_nodes: Optional[int] = None,
    perf: Optional[dict] = None,
) -> str:
    """One-call convenience: spans/trace in, text report out."""
    if isinstance(source, RunSpans):
        return RunReport.from_spans(
            source, registry, allocation_nodes, perf=perf
        ).render(title)
    return RunReport.from_trace(
        source, registry, allocation_nodes, perf=perf
    ).render(title)
