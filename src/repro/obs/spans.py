"""Lifecycle spans reconstructed from typed trace transitions.

The instrumented components (dispatcher, worker agent, aggregator, Hydra
controller, fault injector) emit *typed state transitions* as trace
records — ``job.<state>``, ``worker.<state>``, ``proxy.<state>`` — that
mirror the start/stop instrumentation the paper's evaluation is built on
(Section 6.1.5).  This module assembles those flat records into spans:

* :class:`JobSpan` — one per submitted job, holding one
  :class:`AttemptSpan` per (re)submission cycle.  Job attempts walk the
  state machine ``queued → grouped → mpiexec_spawned → pmi_wireup →
  app_running → done | failed | resubmitted`` (serial jobs skip the
  mpiexec/wireup states).
* :class:`ProxySpan` — per-proxy (per-node rank group) children of an MPI
  attempt: ``registered → wired → exited``.
* :class:`WorkerSpan` — one per pilot worker: ``started → registered →
  idle ⇄ busy → (heartbeat_missed →) lost | stopped``.

The builder is a single pass over the records, so it works equally on a
live :class:`~repro.simkernel.Trace` and on records re-read from a JSONL
export (:func:`repro.obs.export.read_jsonl`).

The state vocabularies and transition graphs are declared once in
:mod:`repro.analysis.lifecycle` (this module re-exports the state
tuples); ``jets lint-trace`` replays recorded runs against those same
machines, so the span builder and the validator cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from ..analysis.lifecycle import (
    JOB_STATES,
    PROXY_STATES,
    WORKER_STATES,
)
from ..simkernel import Trace, TraceRecord

__all__ = [
    "JOB_STATES",
    "WORKER_STATES",
    "PROXY_STATES",
    "Transition",
    "ProxySpan",
    "AttemptSpan",
    "JobSpan",
    "WorkerSpan",
    "RunSpans",
    "SpanBuilder",
    "build_spans",
]


@dataclass(frozen=True)
class Transition:
    """One typed state change: (time, state, payload)."""

    time: float
    state: str
    data: Any = None


@dataclass
class ProxySpan:
    """One Hydra proxy's life inside an MPI job attempt."""

    job_id: str
    proxy_id: int
    node: Optional[int] = None
    t_launched: Optional[float] = None
    t_registered: Optional[float] = None
    t_wired: Optional[float] = None
    t_exited: Optional[float] = None
    status: Optional[int] = None

    @property
    def wireup_time(self) -> Optional[float]:
        """Register → KVS-commit latency for this proxy."""
        if self.t_registered is None or self.t_wired is None:
            return None
        return self.t_wired - self.t_registered


@dataclass
class AttemptSpan:
    """One submission cycle of a job (fresh span per resubmission)."""

    job_id: str
    index: int
    transitions: list[Transition] = field(default_factory=list)
    proxies: list[ProxySpan] = field(default_factory=list)

    def add(self, time: float, state: str, data: Any = None) -> None:
        self.transitions.append(Transition(time, state, data))

    def time_of(self, state: str) -> Optional[float]:
        """Time of the first transition into ``state`` (None if never)."""
        for tr in self.transitions:
            if tr.state == state:
                return tr.time
        return None

    @property
    def t_queued(self) -> Optional[float]:
        return self.time_of("queued")

    @property
    def t_grouped(self) -> Optional[float]:
        return self.time_of("grouped")

    @property
    def t_mpiexec(self) -> Optional[float]:
        return self.time_of("mpiexec_spawned")

    @property
    def t_wireup(self) -> Optional[float]:
        return self.time_of("pmi_wireup")

    @property
    def t_app_running(self) -> Optional[float]:
        return self.time_of("app_running")

    @property
    def outcome(self) -> Optional[str]:
        """Terminal state of this attempt (done/failed/resubmitted)."""
        for tr in reversed(self.transitions):
            if tr.state in ("done", "failed", "resubmitted"):
                return tr.state
        return None

    @property
    def t_end(self) -> Optional[float]:
        for tr in reversed(self.transitions):
            if tr.state in ("done", "failed", "resubmitted"):
                return tr.time
        return self.transitions[-1].time if self.transitions else None

    @property
    def queue_wait(self) -> Optional[float]:
        """Time spent queued before workers were grouped for this attempt."""
        if self.t_queued is None or self.t_grouped is None:
            return None
        return self.t_grouped - self.t_queued

    @property
    def wireup_latency(self) -> Optional[float]:
        """mpiexec spawn → application start (the paper's wire-up time)."""
        if self.t_mpiexec is None or self.t_app_running is None:
            return None
        return self.t_app_running - self.t_mpiexec


@dataclass
class JobSpan:
    """A job's full lifecycle across all attempts."""

    job_id: str
    mpi: bool = True
    nodes: int = 1
    ppn: int = 1
    t_submitted: Optional[float] = None
    t_end: Optional[float] = None
    ok: Optional[bool] = None
    error: str = ""
    #: Application-phase stamps carried by the final done/failed record.
    app_start: Optional[float] = None
    app_end: Optional[float] = None
    #: Nominal task duration (Eq. 1 numerator), stamped at completion.
    nominal: Optional[float] = None
    attempts: list[AttemptSpan] = field(default_factory=list)

    @property
    def resubmissions(self) -> int:
        """Number of resubmission cycles (attempts beyond the first)."""
        return max(0, len(self.attempts) - 1)

    @property
    def final_attempt(self) -> Optional[AttemptSpan]:
        return self.attempts[-1] if self.attempts else None

    def open_attempt(self) -> AttemptSpan:
        """The in-flight attempt, opening the first one if needed."""
        if not self.attempts or self.attempts[-1].outcome is not None:
            self.attempts.append(AttemptSpan(self.job_id, len(self.attempts)))
        return self.attempts[-1]


@dataclass
class WorkerSpan:
    """A pilot worker's full lifecycle."""

    worker_id: int
    node: Optional[int] = None
    t_start: Optional[float] = None
    t_registered: Optional[float] = None
    t_stop: Optional[float] = None
    transitions: list[Transition] = field(default_factory=list)

    def add(self, time: float, state: str, data: Any = None) -> None:
        self.transitions.append(Transition(time, state, data))

    @property
    def outcome(self) -> str:
        """``lost`` if the worker died (kill/heartbeat), else ``stopped``."""
        states = {tr.state for tr in self.transitions}
        if "lost" in states or "killed" in states:
            return "lost"
        return "stopped"

    def state_segments(self, until: Optional[float] = None) -> list[tuple[float, float, str]]:
        """(start, end, state) slices of this worker's busy/idle timeline."""
        segs: list[tuple[float, float, str]] = []
        interesting = [
            tr for tr in self.transitions
            if tr.state in ("registered", "idle", "busy", "stopped", "lost", "killed")
        ]
        end_time = self.t_stop if self.t_stop is not None else until
        for i, tr in enumerate(interesting):
            t1 = interesting[i + 1].time if i + 1 < len(interesting) else end_time
            if t1 is None or tr.state in ("stopped", "lost", "killed"):
                continue
            if t1 > tr.time:
                segs.append((tr.time, t1, tr.state))
        return segs

    def busy_time(self, until: Optional[float] = None) -> float:
        """Total time spent in the ``busy`` state."""
        return sum(
            e - s for s, e, st in self.state_segments(until) if st == "busy"
        )


@dataclass
class RunSpans:
    """Everything one run's trace decomposes into."""

    jobs: dict[str, JobSpan] = field(default_factory=dict)
    workers: dict[int, WorkerSpan] = field(default_factory=dict)
    faults: list[float] = field(default_factory=list)
    #: Every injected fault as ``(time, kind)`` — kind is the ``fault.*``
    #: category suffix (``kill``, ``straggler``, ``net_drop``, ...).
    #: ``faults`` keeps only the kill times (Fig. 10 semantics).
    fault_events: list[tuple[float, str]] = field(default_factory=list)
    #: Resume checkpoints folded from ``resume.begin`` — ``(time,
    #: segment)`` per resume of a journaled run.
    resumes: list[tuple[float, int]] = field(default_factory=list)
    #: job_id -> settled outcome for jobs skipped at resume (already
    #: done/failed in the journal the resume replayed).
    resume_skipped: dict[str, str] = field(default_factory=dict)
    #: Job ids resubmitted at resume (journaled in-flight at the crash).
    resume_resubmitted: list[str] = field(default_factory=list)
    #: Crash point the last resume reported (sim-time of the torn run's
    #: final journaled record).
    crash_time: Optional[float] = None
    #: Run metadata from the ``run.allocation`` record, when present.
    allocation_nodes: Optional[int] = None
    cores_per_node: Optional[int] = None
    #: Serial-task slots each pilot advertised (for core-share accounting).
    worker_slots: Optional[int] = None
    machine: str = ""
    t_first: Optional[float] = None
    t_last: Optional[float] = None

    def job_list(self) -> list[JobSpan]:
        return list(self.jobs.values())

    def worker_list(self) -> list[WorkerSpan]:
        return list(self.workers.values())

    @property
    def span(self) -> float:
        """Wall-time from first to last trace record."""
        if self.t_first is None or self.t_last is None:
            return 0.0
        return self.t_last - self.t_first


def _job_span(run: RunSpans, job_id: str) -> JobSpan:
    span = run.jobs.get(job_id)
    if span is None:
        span = JobSpan(job_id)
        run.jobs[job_id] = span
    return span


def _worker_span(run: RunSpans, worker_id: int) -> WorkerSpan:
    span = run.workers.get(worker_id)
    if span is None:
        span = WorkerSpan(worker_id)
        run.workers[worker_id] = span
    return span


_SPAN_FAMILIES = ("job.", "worker.", "proxy.", "fault.", "resume.")


class SpanBuilder:
    """Incremental span assembly: fold records one at a time.

    The streaming subscriber form of :func:`build_spans`: subscribe
    :meth:`fold` to any :class:`~repro.simkernel.TraceSink` (or call it
    per record while tailing a JSONL file) and read :attr:`run` at any
    point — the folded spans are always consistent with the records seen
    so far.  State is proportional to the number of *entities* (jobs,
    workers), not records, so million-record runs fold in bounded extra
    memory while counter ticks and wire chatter stream past.

    ``track_window=False`` skips the first/last-record window tracking
    (the Trace fast path supplies the window from the full record list).
    """

    def __init__(self, track_window: bool = True):
        self.run = RunSpans()
        self._track_window = track_window

    def fold(self, rec: TraceRecord) -> None:
        """Fold one record into the spans (subscriber entry point)."""
        run = self.run
        if self._track_window:
            if run.t_first is None:
                run.t_first = rec.time
            run.t_last = rec.time
        cat, data = rec.category, rec.data or {}
        if cat.startswith("job."):
            _apply_job(run, rec.time, cat[4:], data)
        elif cat.startswith("worker."):
            _apply_worker(run, rec.time, cat[7:], data)
        elif cat.startswith("proxy."):
            _apply_proxy(run, rec.time, cat[6:], data)
        elif cat.startswith("fault."):
            kind = cat[6:]
            if kind != "heal":  # heal records close faults, not open them
                run.fault_events.append((rec.time, kind))
            if kind == "kill":
                run.faults.append(rec.time)
        elif cat.startswith("resume."):
            _apply_resume(run, rec.time, cat[7:], data)
        elif cat == "run.allocation":
            run.allocation_nodes = data.get("nodes")
            run.cores_per_node = data.get("cores_per_node")
            run.worker_slots = data.get("slots")
            run.machine = data.get("machine", "")

    def result(self) -> RunSpans:
        """The spans folded so far."""
        return self.run


def build_spans(
    source: Union[Trace, Iterable[TraceRecord]],
) -> RunSpans:
    """Assemble lifecycle spans from a trace (or raw record iterable).

    A live :class:`Trace` is consumed through its category index: only
    lifecycle-family records are visited (counter ticks — often the bulk
    of a run's records — are skipped entirely), while ``t_first`` /
    ``t_last`` still come from the full record list so the reported run
    window is unchanged.  Raw record iterables (the JSONL reload path)
    are scanned as before.  For *streaming* sinks, subscribe a
    :class:`SpanBuilder` instead — by the time a windowed sink could be
    scanned here, evicted records would already be gone.
    """
    records: Iterable[TraceRecord]
    builder = SpanBuilder()
    if isinstance(source, Trace):
        if source.records:
            builder.run.t_first = source.records[0].time
            builder.run.t_last = source.records[-1].time
        records = source.select_any(
            [
                c
                for c in source.categories()
                if c.startswith(_SPAN_FAMILIES) or c == "run.allocation"
            ]
        )
        builder._track_window = False
    else:
        records = source
    fold = builder.fold
    for rec in records:
        fold(rec)
    return builder.run


def _apply_job(run: RunSpans, t: float, state: str, data: dict) -> None:
    job_id = data.get("job")
    if job_id is None:
        return
    span = _job_span(run, job_id)
    if state == "submitted":
        span.t_submitted = t
        span.mpi = data.get("mpi", span.mpi)
        span.nodes = data.get("nodes", span.nodes)
        span.ppn = data.get("ppn", span.ppn)
        return
    if state == "dispatch":
        # Legacy category kept for seed compatibility; the typed
        # ``grouped`` transition carries the same moment.
        return
    if state == "retry":
        # The dispatcher's requeue record closes the current attempt as
        # ``resubmitted``; the following ``queued`` opens a fresh one.
        span.open_attempt().add(t, "resubmitted", data)
        return
    if state in ("done", "failed"):
        # A permanent failure logs retry (resubmitted) and failed at the
        # same instant with no fresh queued in between — the terminal
        # transition belongs to that same attempt, not a new one.
        last = span.attempts[-1] if span.attempts else None
        if (
            state == "failed"
            and last is not None
            and last.outcome == "resubmitted"
            and last.t_end == t
        ):
            attempt = last
        else:
            attempt = span.open_attempt()
        attempt.add(t, state, data)
        span.t_end = t
        span.ok = state == "done"
        span.error = data.get("error", "") or ""
        span.app_start = data.get("app_start")
        span.app_end = data.get("app_end")
        span.nominal = data.get("nominal")
        # Jobs can fail synchronously at submit (oversized): their only
        # transition is the terminal one.
        return
    if state in ("queued", "grouped", "mpiexec_spawned", "pmi_wireup", "app_running"):
        span.open_attempt().add(t, state, data)


def _apply_resume(run: RunSpans, t: float, state: str, data: dict) -> None:
    if state == "begin":
        run.resumes.append((t, data.get("segment", 0)))
        if data.get("crash_time") is not None:
            run.crash_time = data.get("crash_time")
    elif state == "skip":
        job_id = data.get("job")
        if job_id is not None:
            run.resume_skipped[job_id] = str(data.get("outcome", ""))
    elif state == "resubmit":
        job_id = data.get("job")
        if job_id is not None:
            run.resume_resubmitted.append(job_id)


def _apply_worker(run: RunSpans, t: float, state: str, data: dict) -> None:
    worker_id = data.get("worker")
    if worker_id is None:
        return
    span = _worker_span(run, worker_id)
    if state == "start":
        span.t_start = t
        span.node = data.get("node", span.node)
        span.add(t, "started", data)
    elif state == "registered":
        span.t_registered = t
        span.node = data.get("node", span.node)
        span.add(t, "registered", data)
    elif state == "stop":
        span.t_stop = t
        span.add(t, "stopped", data)
    elif state in ("idle", "busy", "heartbeat_missed", "lost", "killed"):
        span.add(t, state, data)
    # per-slot "ready" chatter is intentionally ignored: the aggregator's
    # typed idle/busy transitions carry the worker-level state.


def _apply_proxy(run: RunSpans, t: float, state: str, data: dict) -> None:
    job_id = data.get("job")
    proxy_id = data.get("proxy")
    if job_id is None or proxy_id is None:
        return
    attempt = _job_span(run, job_id).open_attempt()
    proxy: Optional[ProxySpan] = None
    for p in attempt.proxies:
        if p.proxy_id == proxy_id:
            proxy = p
            break
    if proxy is None:
        proxy = ProxySpan(job_id, proxy_id, node=data.get("node"))
        attempt.proxies.append(proxy)
    if data.get("node") is not None:
        proxy.node = data["node"]
    if state == "launched":
        proxy.t_launched = t
    elif state == "registered":
        proxy.t_registered = t
    elif state == "wired":
        proxy.t_wired = t
    elif state == "exited":
        proxy.t_exited = t
        proxy.status = data.get("status")
