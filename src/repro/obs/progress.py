"""Live progress: heartbeat records, follow-mode tailing, run snapshots.

Three pieces turn the streaming trace pipeline into a live-progress
channel:

* :class:`ProgressTracker` — a trace subscriber that folds the stream
  into bounded tallies (record/family counts, job done/failed, gauge
  levels) and periodically logs an ``obs.progress`` heartbeat record
  back onto the sink.  Heartbeat payloads are entirely
  seed-deterministic (sim time, kernel event counts — never wall
  clock), so traces with progress enabled still dump byte-identically
  across same-seed runs.
* :class:`LiveRunState` — the reader-side fold: collapse a (possibly
  still growing) JSONL stream into per-run progress summaries without
  retaining records.
* :func:`follow` / :func:`render_top` — ``jets report --follow`` tails
  a growing dump and prints a progress line per heartbeat (rates are
  computed on the *reader's* clock, never written anywhere);
  ``jets top TRACE`` renders a one-shot snapshot of the same fold.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import IO, Optional, Sequence

from ..simkernel import TraceRecord, TraceSink
from .metrics import Registry

__all__ = [
    "OBS_PROGRESS",
    "ProgressTracker",
    "RunProgress",
    "LiveRunState",
    "follow",
    "render_top",
    "top_main",
]

#: Heartbeat category (declared in :mod:`repro.analysis.schema`; kept as
#: a literal here so the obs layer stays importable without analysis).
OBS_PROGRESS = "obs.progress"


class ProgressTracker:
    """Fold the trace stream into live tallies; heartbeat periodically.

    Subscribes to ``sink`` on construction.  State is a handful of
    counters and one dict per category *family* (the prefix before the
    first dot), so memory stays bounded no matter how many records
    stream through.  Every ``every`` simulated seconds — checked as
    records arrive, so a silent simulation emits nothing — the tracker
    logs one ``obs.progress`` record carrying the tallies; readers
    tailing the spill file (:func:`follow`) turn successive heartbeats
    into wall-clock rates.
    """

    def __init__(
        self,
        sink: TraceSink,
        every: float = 1.0,
        registry: Optional[Registry] = None,
    ):
        if every <= 0:
            raise ValueError(f"heartbeat interval must be positive: {every}")
        self.sink = sink
        self.every = float(every)
        self.registry = registry
        #: How many heartbeats have been logged.
        self.emitted = 0
        self.records = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.counts: dict[str, int] = {}
        self._next = self.every
        self._emitting = False
        sink.subscribe(self.feed)

    def feed(self, rec: TraceRecord) -> None:
        """Fold one record (subscriber entry point)."""
        self.records += 1
        cat = rec.category
        family = cat.split(".", 1)[0]
        self.counts[family] = self.counts.get(family, 0) + 1
        if cat == "job.done":
            self.jobs_done += 1
        elif cat == "job.failed":
            self.jobs_failed += 1
        # The heartbeat log() below re-enters feed() via the sink's
        # fan-out: tally it like any record, but never heartbeat the
        # heartbeat.
        if self._emitting or cat == OBS_PROGRESS:
            return
        if rec.time >= self._next:
            self._emit(rec.time)

    def _emit(self, now: float) -> None:
        while self._next <= now:
            self._next += self.every
        data: dict = {
            "events": self.sink.env.events_processed,
            "records": self.records,
            "jobs": {"done": self.jobs_done, "failed": self.jobs_failed},
            "counts": dict(sorted(self.counts.items())),
        }
        if self.registry is not None:
            gauges = self.registry.gauge_levels()
            if gauges:
                data["gauges"] = gauges
        self._emitting = True
        try:
            self.sink.log(OBS_PROGRESS, data)
        finally:
            self._emitting = False
        self.emitted += 1


@dataclass
class RunProgress:
    """Reader-side summary of one run's stream so far."""

    run: int
    records: int = 0
    t_first: Optional[float] = None
    t_last: Optional[float] = None
    counts: dict = field(default_factory=dict)
    jobs_done: int = 0
    jobs_failed: int = 0
    #: Payload of the latest ``obs.progress`` heartbeat, if any.
    heartbeat: Optional[dict] = None
    #: The ``{"meta": "perf"}`` trailer once seen — marks the run done.
    perf: Optional[dict] = None

    @property
    def complete(self) -> bool:
        return self.perf is not None

    def fold(self, rec: TraceRecord) -> None:
        self.records += 1
        if self.t_first is None:
            self.t_first = rec.time
        self.t_last = rec.time
        family = rec.category.split(".", 1)[0]
        self.counts[family] = self.counts.get(family, 0) + 1
        if rec.category == "job.done":
            self.jobs_done += 1
        elif rec.category == "job.failed":
            self.jobs_failed += 1
        elif rec.category == OBS_PROGRESS and isinstance(rec.data, dict):
            self.heartbeat = rec.data

    def status_line(self) -> str:
        t = self.t_last if self.t_last is not None else 0.0
        state = "complete" if self.complete else "running"
        return (
            f"[run {self.run}] t={t:9.3f}s  records={self.records}  "
            f"jobs done={self.jobs_done} failed={self.jobs_failed}  "
            f"({state})"
        )


class LiveRunState:
    """Fold a multi-run JSONL stream into per-run progress summaries."""

    def __init__(self):
        self.runs: dict[int, RunProgress] = {}

    def run(self, run: int) -> RunProgress:
        rp = self.runs.get(run)
        if rp is None:
            rp = self.runs[run] = RunProgress(run)
        return rp

    def fold(self, run: int, rec: TraceRecord) -> None:
        self.run(run).fold(rec)

    def note_perf(self, run: int, perf: dict) -> None:
        self.run(run).perf = perf

    @property
    def complete(self) -> bool:
        """Every run seen so far has its perf trailer."""
        return bool(self.runs) and all(
            rp.complete for rp in self.runs.values()
        )


def _parse_line(raw: str):
    """One JSONL line -> ("perf", run, dict) | ("rec", run, TraceRecord) |
    None (blank, non-perf meta, or garbage — follow mode must survive a
    torn tail)."""
    raw = raw.strip()
    if not raw:
        return None
    try:
        obj = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(obj, dict):
        return None
    run = obj.get("run", 0)
    if "meta" in obj:
        if obj.get("meta") != "perf":
            return None
        perf = {k: v for k, v in obj.items() if k not in ("meta", "run")}
        return ("perf", run, perf)
    if "t" not in obj or "cat" not in obj:
        return None
    return (
        "rec",
        run,
        TraceRecord(
            time=float(obj["t"]), category=obj["cat"], data=obj.get("data")
        ),
    )


def follow(
    path: str,
    out: Optional[IO[str]] = None,
    poll: float = 0.25,
    idle_timeout: Optional[float] = 30.0,
) -> int:
    """Tail a (possibly growing) JSONL trace; print a line per heartbeat.

    Reads from the current end of data onward as the writer appends,
    printing one progress line per ``obs.progress`` heartbeat and one
    completion line per perf trailer.  Returns 0 once every run seen has
    trailed off (perf trailer + quiet file), 1 if ``idle_timeout``
    wall-seconds pass with no new data and no trailer (writer died or
    wrong file), 2 if the file can't be opened.

    Rates shown are computed from the *reader's* clock between
    heartbeats; nothing wall-clock is ever written back to the trace.
    """
    stream = out if out is not None else sys.stdout
    state = LiveRunState()
    # Wall clock is the point of follow mode (reader-side rates and the
    # idle timeout); the simulation side stays clock-free.
    clock = time.monotonic  # repro: noqa[DT005]  follow mode measures the wall
    last_records = 0
    last_wall: Optional[float] = None
    try:
        fh = open(path)
    except OSError as exc:
        print(f"jets: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    def handle(parsed) -> None:
        nonlocal last_records, last_wall
        kind, run, payload = parsed
        if kind == "perf":
            state.note_perf(run, payload)
            print(state.run(run).status_line(), file=stream)
            return
        state.fold(run, payload)
        if payload.category != OBS_PROGRESS:
            return
        total = sum(rp.records for rp in state.runs.values())
        now = clock()
        rate = ""
        if last_wall is not None and now > last_wall:
            per_s = (total - last_records) / (now - last_wall)
            rate = f"  {per_s:,.0f} rec/s"
        last_records, last_wall = total, now
        rp = state.run(run)
        hb = payload.data or {}
        jobs = hb.get("jobs", {})
        print(
            f"[run {run}] t={payload.time:9.3f}s  "
            f"records={hb.get('records', rp.records)}  "
            f"events={hb.get('events', 0)}  "
            f"jobs done={jobs.get('done', 0)} "
            f"failed={jobs.get('failed', 0)}{rate}",
            file=stream,
        )

    with fh:
        pending = ""
        idle_since = clock()
        graced = False
        while True:
            chunk = fh.readline()
            if chunk:
                if not chunk.endswith("\n"):
                    # Torn tail: the writer is mid-line.  Buffer and let
                    # the next poll complete it.
                    pending += chunk
                    continue
                parsed = _parse_line(pending + chunk)
                pending = ""
                idle_since = clock()
                graced = False
                if parsed is not None:
                    handle(parsed)
                continue
            # At EOF.  Done when every run seen has its trailer *and* one
            # extra poll of grace passed quiet (a later run may follow).
            if state.complete:
                if graced:
                    break
                graced = True
                time.sleep(poll)  # repro: noqa[DT001]
                continue
            if (
                idle_timeout is not None
                and clock() - idle_since > idle_timeout
            ):
                print(
                    f"jets: no data for {idle_timeout:.0f}s and no perf "
                    f"trailer; giving up",
                    file=sys.stderr,
                )
                return 1
            time.sleep(poll)  # repro: noqa[DT001]
    return 0


def render_top(state: LiveRunState, title: str = "") -> str:
    """A ``top``-style text snapshot of every run's progress fold."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if not state.runs:
        lines.append("(no trace records yet)")
        return "\n".join(lines)
    for run_id in sorted(state.runs):
        rp = state.runs[run_id]
        lines.append(rp.status_line())
        if rp.counts:
            fams = "  ".join(
                f"{name}={rp.counts[name]}" for name in sorted(rp.counts)
            )
            lines.append(f"  families: {fams}")
        hb = rp.heartbeat
        if hb:
            lines.append(
                f"  heartbeat: events={hb.get('events', 0)} "
                f"records={hb.get('records', 0)}"
            )
            gauges = hb.get("gauges")
            if gauges:
                lines.append(
                    "  gauges: "
                    + "  ".join(
                        f"{name}={value:g}"
                        for name, value in sorted(gauges.items())
                    )
                )
        if rp.perf:
            perf = "  ".join(
                f"{k}={rp.perf[k]}" for k in sorted(rp.perf)
            )
            lines.append(f"  perf: {perf}")
    return "\n".join(lines)


def top_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets top TRACE.jsonl`` — one-shot progress snapshot of a dump."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="jets top",
        description=(
            "Snapshot the live-progress fold of a (possibly still "
            "growing) JSONL trace dump."
        ),
    )
    parser.add_argument("tracefile", help="JSONL trace (may be growing)")
    args = parser.parse_args(argv)
    state = LiveRunState()
    try:
        with open(args.tracefile) as fh:
            for raw in fh:
                parsed = _parse_line(raw)
                if parsed is None:
                    continue
                kind, run, payload = parsed
                if kind == "perf":
                    state.note_perf(run, payload)
                else:
                    state.fold(run, payload)
    except OSError as exc:
        print(f"jets: cannot read {args.tracefile}: {exc}", file=sys.stderr)
        return 2
    print(render_top(state, title=args.tracefile))
    return 0
