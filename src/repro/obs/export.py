"""Trace exporters: JSONL dump/reload and Chrome ``trace_event`` format.

* :func:`to_jsonl` / :func:`read_jsonl` — a lossless line-per-record dump
  of the raw trace, the archival format the ``jets report`` subcommand
  reads back.
* :func:`to_chrome_trace` — the Chrome/Perfetto ``trace_event`` JSON
  format: job attempts, their per-proxy children, and worker busy/idle
  timelines as complete events, openable in https://ui.perfetto.dev or
  ``chrome://tracing``.
* :class:`CanonicalDigest` — a streaming *outcome* digest that ignores
  the order of records within one simulated timestamp, so two legal
  schedules of the same run compare equal exactly when they produced the
  same observable behaviour (the race-confirmation comparator).
"""

from __future__ import annotations

import hashlib
import json
from typing import IO, Iterable, Iterator, Optional, Union

from ..simkernel import Trace, TraceRecord
from ..simkernel.monitor import record_line, sanitize, trailer_line
from .spans import RunSpans, build_spans

__all__ = [
    "to_jsonl",
    "read_jsonl",
    "iter_jsonl",
    "jsonl_runs",
    "jsonl_perf",
    "to_chrome_trace",
    "chrome_events",
    "counter_events",
    "counter_series",
    "sanitize",
    "CanonicalDigest",
]


class CanonicalDigest:
    """Streaming outcome digest, insensitive to same-timestamp order.

    A raw byte digest of the trace distinguishes every permutation of a
    same-time event batch, which is useless for race confirmation: any
    two explored schedules would look "different".  This digest instead
    *sorts the encoded record lines within each simulated timestamp*
    before hashing, while staying order-sensitive across timestamps.
    Two runs then digest equal iff they logged the same set of records
    at every instant — i.e. the schedules were observably equivalent —
    and digest differently exactly when a reordering changed an outcome
    (a value, a state transition, a record present in one run only).

    Subscribe :meth:`feed` to any :class:`~repro.simkernel.monitor.
    TraceSink`; memory is bounded by the largest same-timestamp batch.
    Call :meth:`hexdigest` once, after the run.
    """

    def __init__(self) -> None:
        self._sha = hashlib.sha256()
        self._batch_time: Optional[float] = None
        self._batch: list[bytes] = []
        self.records = 0

    def feed(self, rec: TraceRecord) -> None:
        if rec.time != self._batch_time:
            self._flush()
            self._batch_time = rec.time
        self._batch.append(record_line(rec).encode())
        self.records += 1

    def _flush(self) -> None:
        for line in sorted(self._batch):
            self._sha.update(line)
        self._batch.clear()

    def hexdigest(self) -> str:
        """Digest of everything fed so far (flushes the open batch)."""
        self._flush()
        return self._sha.hexdigest()

#: trace_event process ids per entity family (offset per run in
#: multi-run exports so Perfetto shows each run as its own process group).
_PID_JOBS = 1
_PID_WORKERS = 2
_PID_PROXIES = 3
_PID_COUNTERS = 4
_RUN_STRIDE = 10


def to_jsonl(
    source: Union[Trace, Iterable[TraceRecord]],
    out: Union[str, IO[str]],
    run: Optional[int] = None,
    label: str = "",
    append: bool = False,
    perf: Optional[dict] = None,
) -> int:
    """Write trace records as JSON lines; returns the record count.

    ``run``/``label`` tag every line so multi-run sessions (one line of
    an experiment sweep per run) stay separable on reload.  ``perf``
    (kernel events processed, record count, simulated seconds — all
    seed-deterministic, never wall-clock, so same-seed dumps stay
    byte-identical) is appended as one ``{"meta": "perf", ...}`` trailer
    line that record readers skip and :func:`jsonl_perf` collects.
    """
    records = source.records if isinstance(source, Trace) else source
    close = False
    if isinstance(out, str):
        fh = open(out, "a" if append else "w")
        close = True
    else:
        fh = out
    n = 0
    try:
        for rec in records:
            fh.write(record_line(rec, run, label))
            n += 1
        if perf is not None:
            fh.write(trailer_line(perf, run))
    finally:
        if close:
            fh.close()
    return n


def read_jsonl(
    source: Union[str, IO[str]], run: Optional[int] = None
) -> list[TraceRecord]:
    """Reload trace records from a JSONL dump.

    ``run`` filters to one tagged run; None returns every record.
    """
    close = False
    if isinstance(source, str):
        fh = open(source)
        close = True
    else:
        fh = source
    records: list[TraceRecord] = []
    try:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            if "meta" in obj:
                continue
            if run is not None and obj.get("run", 0) != run:
                continue
            records.append(
                TraceRecord(
                    time=float(obj["t"]),
                    category=obj["cat"],
                    data=obj.get("data"),
                )
            )
    finally:
        if close:
            fh.close()
    return records


def iter_jsonl(
    source: Union[str, IO[str]],
    run: Optional[int] = None,
    on_perf=None,
) -> Iterator[tuple[int, TraceRecord]]:
    """Stream a JSONL dump as ``(run, record)`` pairs, one line in RAM.

    The bounded-memory reload path: ``jets report`` / ``jets lint-trace``
    fold records through this instead of materializing the whole dump, so
    spilled million-record traces replay in flat memory.  ``run`` filters
    to one tagged run; ``on_perf(run, perf_dict)`` is called for every
    ``{"meta": "perf"}`` trailer encountered.
    """
    close = False
    if isinstance(source, str):
        fh = open(source)
        close = True
    else:
        fh = source
    try:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            if "meta" in obj:
                if obj.get("meta") == "perf" and on_perf is not None:
                    on_perf(
                        obj.get("run", 0),
                        {
                            k: v for k, v in obj.items()
                            if k not in ("meta", "run")
                        },
                    )
                continue
            tag = obj.get("run", 0)
            if run is not None and tag != run:
                continue
            yield tag, TraceRecord(
                time=float(obj["t"]),
                category=obj["cat"],
                data=obj.get("data"),
            )
    finally:
        if close:
            fh.close()


def jsonl_runs(source: Union[str, IO[str]]) -> dict[int, list[TraceRecord]]:
    """Group a JSONL dump's records by their ``run`` tag (0 if untagged)."""
    close = False
    if isinstance(source, str):
        fh = open(source)
        close = True
    else:
        fh = source
    runs: dict[int, list[TraceRecord]] = {}
    try:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            if "meta" in obj:
                continue
            runs.setdefault(obj.get("run", 0), []).append(
                TraceRecord(
                    time=float(obj["t"]),
                    category=obj["cat"],
                    data=obj.get("data"),
                )
            )
    finally:
        if close:
            fh.close()
    return runs


def jsonl_perf(source: Union[str, IO[str]]) -> dict[int, dict]:
    """Collect per-run perf trailers from a JSONL dump (may be empty).

    Returns ``run -> {"events": ..., "records": ..., "sim_s": ...}`` for
    every ``{"meta": "perf"}`` line; dumps written before the trailer
    existed simply yield ``{}``.
    """
    close = False
    if isinstance(source, str):
        fh = open(source)
        close = True
    else:
        fh = source
    perf: dict[int, dict] = {}
    try:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            if obj.get("meta") != "perf":
                continue
            run = obj.get("run", 0)
            perf[run] = {
                k: v for k, v in obj.items() if k not in ("meta", "run")
            }
    finally:
        if close:
            fh.close()
    return perf


def _us(t: float) -> float:
    """Sim seconds → trace_event microseconds."""
    return t * 1e6


def _complete(name, pid, tid, t0, t1, args=None) -> dict:
    ev = {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": _us(t0),
        "dur": max(0.0, _us(t1) - _us(t0)),
        "cat": "jets",
    }
    if args:
        ev["args"] = args
    return ev


def _meta(name, pid, args, tid=None) -> dict:
    ev = {"name": name, "ph": "M", "pid": pid, "args": args}
    if tid is not None:
        ev["tid"] = tid
    return ev


def chrome_events(
    spans: RunSpans, run: int = 0, label: str = ""
) -> list[dict]:
    """trace_event dicts for one run's spans (pids offset by run)."""
    base = run * _RUN_STRIDE
    pid_jobs = base + _PID_JOBS
    pid_workers = base + _PID_WORKERS
    pid_proxies = base + _PID_PROXIES
    tag = f" [{label}]" if label else (f" [run {run}]" if run else "")
    events: list[dict] = [
        _meta("process_name", pid_jobs, {"name": f"jobs{tag}"}),
        _meta("process_name", pid_workers, {"name": f"workers{tag}"}),
    ]
    run_end = spans.t_last or 0.0

    any_proxies = False
    for tid, job in enumerate(spans.jobs.values()):
        events.append(
            _meta("thread_name", pid_jobs, {"name": job.job_id}, tid=tid)
        )
        for attempt in job.attempts:
            trs = [
                tr for tr in attempt.transitions
                if tr.state not in ("done", "failed", "resubmitted")
            ]
            end = attempt.t_end if attempt.t_end is not None else run_end
            for i, tr in enumerate(trs):
                t1 = trs[i + 1].time if i + 1 < len(trs) else end
                events.append(
                    _complete(
                        tr.state, pid_jobs, tid, tr.time, t1,
                        args={
                            "job": job.job_id,
                            "attempt": attempt.index,
                            "outcome": attempt.outcome or "open",
                        },
                    )
                )
            for proxy in attempt.proxies:
                any_proxies = True
                t0 = proxy.t_registered if proxy.t_registered is not None else proxy.t_launched
                t1 = proxy.t_exited if proxy.t_exited is not None else end
                if t0 is None:
                    continue
                events.append(
                    _complete(
                        f"{job.job_id} proxy{proxy.proxy_id}",
                        pid_proxies,
                        tid,
                        t0,
                        t1,
                        args={
                            "job": job.job_id,
                            "attempt": attempt.index,
                            "proxy": proxy.proxy_id,
                            "node": proxy.node,
                            "status": proxy.status,
                        },
                    )
                )
    if any_proxies:
        events.append(
            _meta("process_name", pid_proxies, {"name": f"proxies{tag}"})
        )

    for worker in spans.workers.values():
        tid = worker.worker_id
        events.append(
            _meta(
                "thread_name", pid_workers,
                {"name": f"worker{worker.worker_id}"}, tid=tid,
            )
        )
        for t0, t1, state in worker.state_segments(until=run_end):
            events.append(
                _complete(
                    state, pid_workers, tid, t0, t1,
                    args={"worker": worker.worker_id, "node": worker.node},
                )
            )
    return events


def counter_series(
    source=None, registry=None
) -> dict[str, list[tuple[float, float]]]:
    """Collect ``name -> [(time, value)]`` gauge/counter series.

    Merges two origins: the metrics registry's time-weighted gauges
    (occupancy, queue depths — the full breakpoint series each
    :class:`~repro.simkernel.Gauge` already keeps) and any ``counter.*``
    mirror records present in ``source`` (a trace sink or record
    iterable; a :class:`RunSpans` or None contributes nothing).
    """
    series: dict[str, list[tuple[float, float]]] = {}
    if registry is not None:
        series.update(registry.gauge_series())
    if source is not None and not isinstance(source, RunSpans):
        if hasattr(source, "select"):
            recs = source.select("counter.", prefix=True)
        else:
            recs = [
                r for r in source if r.category.startswith("counter.")
            ]
        for rec in recs:
            data = rec.data if isinstance(rec.data, dict) else {}
            name = data.get("counter") or rec.category[len("counter."):]
            series.setdefault(name, []).append(
                (rec.time, float(data.get("value", 0.0)))
            )
    return series


def counter_events(
    series: dict[str, list[tuple[float, float]]],
    run: int = 0,
    label: str = "",
) -> list[dict]:
    """Perfetto counter (``"ph": "C"``) events for gauge series.

    All series of one run share a stable counter pid (run stride + the
    counters family slot), one tid per series name in sorted order, so
    occupancy and queue-depth gauges render as proper counter tracks
    alongside the span processes.
    """
    if not series:
        return []
    base = run * _RUN_STRIDE
    pid = base + _PID_COUNTERS
    tag = f" [{label}]" if label else (f" [run {run}]" if run else "")
    events: list[dict] = [
        _meta("process_name", pid, {"name": f"counters{tag}"})
    ]
    for tid, name in enumerate(sorted(series)):
        events.append(_meta("thread_name", pid, {"name": name}, tid=tid))
        for t, value in series[name]:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": pid,
                    "tid": tid,
                    "ts": _us(t),
                    "cat": "jets",
                    "args": {"value": value},
                }
            )
    return events


def to_chrome_trace(
    sources,
    out: Union[str, IO[str]],
) -> int:
    """Write a Chrome ``trace_event`` file; returns the event count.

    ``sources`` is a Trace / record iterable / RunSpans, or a list of
    ``(label, source)`` or ``(label, source, registry)`` tuples for
    multi-run sessions; a registry contributes its gauges as Perfetto
    counter tracks (:func:`counter_events`).
    """
    if isinstance(sources, (Trace, RunSpans)) or (
        sources and isinstance(sources, list)
        and isinstance(sources[0], TraceRecord)
    ):
        sources = [("", sources)]
    events: list[dict] = []
    for run, entry in enumerate(sources):
        if len(entry) == 3:
            label, src, registry = entry
        else:
            label, src = entry
            registry = None
        spans = src if isinstance(src, RunSpans) else build_spans(src)
        events.extend(chrome_events(spans, run=run, label=label))
        events.extend(
            counter_events(
                counter_series(src, registry), run=run, label=label
            )
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(out, str):
        with open(out, "w") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, out)
    return len(events)
