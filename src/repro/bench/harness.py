"""Measurement core for ``jets bench``.

Each workload is run twice: a *timed* pass (wall clock only — nothing
else is sampling while the clock runs) and an optional *memory* pass
under :mod:`tracemalloc` (which slows execution several-fold, so its
numbers never contaminate the timing).  Peak RSS comes from
``getrusage`` and is a process-wide high-water mark: workloads early in
a suite report their own footprint, later ones report the running
maximum.

The JSON layout (one file per suite, ``BENCH_<suite>.json``)::

    {
      "schema": 1,
      "suite": "macro",
      "quick": false,
      "repeats": 3,
      "python": "3.12.3",
      "results": {
        "fig09_mpi512": {
          "wall_s": 1.93, "wall_median_s": 1.97,
          "events": 1182732, "events_per_s": 612814.5,
          "sim_s": 672.2, "peak_rss_kb": 151220,
          "alloc_peak_kb": 78123.4, "alloc_net_blocks": 51234,
          "meta": {...workload parameters...}
        }, ...
      },
      "baseline": {"source": "BENCH_macro.json", "wall_s": {...}},
      "speedup": {"fig09_mpi512": 1.41, ...}
    }

``baseline``/``speedup`` appear when the run was compared against an
earlier file (``jets bench --against``): ``speedup`` is
``baseline_wall / new_wall`` per workload, so values above 1 are
improvements.  Comparison fails a workload when its wall time regresses
by more than the threshold, or when its (deterministic) kernel event
count grows beyond a small tolerance — event counts transfer across
machines, wall times only roughly.
"""

from __future__ import annotations

import json
import resource
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Optional

from .workloads import SUITES, Workload

__all__ = [
    "BenchResult",
    "SuiteRun",
    "Comparison",
    "run_workload",
    "run_suite",
    "write_suite",
    "load_baseline",
    "compare_runs",
    "profile_workload",
    "profile_suite",
    "write_profile",
]

#: JSON schema version of the BENCH files.
SCHEMA = 1

#: Deterministic event counts may grow by at most this factor before the
#: comparison flags a regression (guards against accidental event churn).
EVENT_GROWTH_TOLERANCE = 1.05


@dataclass
class BenchResult:
    """One workload's measurements."""

    name: str
    wall_s: float
    #: Median wall across the timed repeats (equals ``wall_s`` for a
    #: single repeat); the min/median pair shows both the noise floor
    #: and the typical cost.
    wall_median_s: Optional[float] = None
    events: Optional[int] = None
    events_per_s: Optional[float] = None
    sim_s: Optional[float] = None
    peak_rss_kb: int = 0
    alloc_peak_kb: Optional[float] = None
    alloc_net_blocks: Optional[int] = None
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out: dict = {"wall_s": round(self.wall_s, 6)}
        if self.wall_median_s is not None:
            out["wall_median_s"] = round(self.wall_median_s, 6)
        if self.events is not None:
            out["events"] = self.events
            out["events_per_s"] = round(self.events_per_s or 0.0, 1)
        if self.sim_s is not None:
            out["sim_s"] = round(self.sim_s, 6)
        out["peak_rss_kb"] = self.peak_rss_kb
        if self.alloc_peak_kb is not None:
            out["alloc_peak_kb"] = round(self.alloc_peak_kb, 1)
        if self.alloc_net_blocks is not None:
            out["alloc_net_blocks"] = self.alloc_net_blocks
        if self.meta:
            out["meta"] = self.meta
        return out


@dataclass
class SuiteRun:
    """All results of one suite execution."""

    suite: str
    quick: bool
    results: list[BenchResult] = field(default_factory=list)
    #: Timed-pass repetitions per workload (wall_s is the minimum).
    repeats: int = 1

    def result(self, name: str) -> Optional[BenchResult]:
        for r in self.results:
            if r.name == name:
                return r
        return None

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "quick": self.quick,
            "repeats": self.repeats,
            "python": sys.version.split()[0],
            "results": {r.name: r.to_json() for r in self.results},
        }


def _peak_rss_kb() -> int:
    """Process high-water RSS in KB (ru_maxrss unit on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_workload(
    workload: Workload,
    quick: bool = False,
    memory: bool = True,
    repeats: int = 1,
) -> BenchResult:
    """Measure one workload: timed pass(es), then optional tracemalloc pass.

    With ``repeats > 1`` the timed pass runs that many times; the
    *minimum* wall time is reported as ``wall_s`` — the standard
    noise-rejection move: a run can only be slowed down by interference,
    never sped up, so the minimum is the best estimate of the workload's
    true cost — and the *median* as ``wall_median_s``, the typical cost
    under whatever noise the machine had.  The workload outputs (events,
    sim time) are deterministic across repeats.
    """
    walls: list[float] = []
    out: dict = {}
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()  # repro: noqa[DT001]
        out = workload.fn(quick) or {}
        walls.append(time.perf_counter() - t0)  # repro: noqa[DT001]
    wall = min(walls)
    ordered = sorted(walls)
    mid = len(ordered) // 2
    median = (
        ordered[mid]
        if len(ordered) % 2
        else (ordered[mid - 1] + ordered[mid]) / 2.0
    )

    events = out.pop("events", None)
    sim_s = out.pop("sim_s", None)
    result = BenchResult(
        name=workload.name,
        wall_s=wall,
        wall_median_s=median,
        events=events,
        events_per_s=(events / wall) if events and wall > 0 else None,
        sim_s=sim_s,
        peak_rss_kb=_peak_rss_kb(),
        meta=out,
    )

    if memory:
        blocks0 = sys.getallocatedblocks()
        tracemalloc.start()
        try:
            workload.fn(quick)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        result.alloc_peak_kb = peak / 1024.0
        result.alloc_net_blocks = sys.getallocatedblocks() - blocks0
    return result


def run_suite(
    suite: str,
    quick: bool = False,
    memory: bool = True,
    progress=None,
    repeats: int = 1,
    only: Optional[list[str]] = None,
) -> SuiteRun:
    """Run every workload of a named suite, in declaration order.

    ``only`` restricts to the named workloads — the memory-budget CI
    job uses it so peak RSS (a process-wide high-water mark) reflects a
    single workload rather than everything that ran before it.
    """
    workloads = SUITES.get(suite)
    if workloads is None:
        raise KeyError(f"unknown bench suite {suite!r}")
    if only:
        names = {wl.name for wl in workloads}
        unknown = [n for n in only if n not in names]
        if unknown:
            raise KeyError(
                f"unknown workload(s) in suite {suite!r}: "
                + ", ".join(sorted(unknown))
            )
        workloads = [wl for wl in workloads if wl.name in set(only)]
    run = SuiteRun(suite=suite, quick=quick, repeats=repeats)
    for wl in workloads:
        result = run_workload(wl, quick=quick, memory=memory, repeats=repeats)
        run.results.append(result)
        if progress is not None:
            progress(result)
    return run


def write_suite(
    run: SuiteRun,
    path: str,
    baseline: Optional[dict] = None,
    baseline_source: str = "",
) -> dict:
    """Write a suite's JSON file (with speedups when a baseline is given)."""
    doc = run.to_json()
    if baseline is not None:
        base_walls = {
            name: entry.get("wall_s")
            for name, entry in baseline.get("results", {}).items()
        }
        doc["baseline"] = {
            "source": baseline_source or "baseline",
            "wall_s": {
                k: v for k, v in base_walls.items() if v is not None
            },
        }
        speedups: dict[str, float] = {}
        for result in run.results:
            old = base_walls.get(result.name)
            if old and result.wall_s > 0:
                speedups[result.name] = round(old / result.wall_s, 3)
        doc["speedup"] = speedups
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


def load_baseline(path: str) -> dict:
    """Load a BENCH JSON file, validating the schema tag."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "results" not in doc:
        raise ValueError(f"{path} is not a jets bench JSON file")
    if doc.get("schema", 1) > SCHEMA:
        raise ValueError(
            f"{path} uses bench schema {doc['schema']}; this build "
            f"understands up to {SCHEMA}"
        )
    return doc


@dataclass
class Comparison:
    """Outcome of comparing a fresh run against a baseline file."""

    threshold_pct: float
    #: workload -> (baseline wall, new wall, speedup)
    walls: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    regressions: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_runs(
    run: SuiteRun, baseline: dict, threshold_pct: float = 25.0
) -> Comparison:
    """Flag workloads that regressed versus a baseline document.

    A workload regresses when its wall time exceeds the baseline by more
    than ``threshold_pct`` percent, or when its deterministic kernel
    event count grew beyond :data:`EVENT_GROWTH_TOLERANCE`.  Workloads
    whose parameters differ from the baseline (e.g. a ``--quick`` run
    against a full baseline) are skipped, not compared — as is any
    workload present on only one side (a fresh workload has no baseline
    yet; a retired one no fresh run), so baseline files survive workload
    additions and removals with a warning instead of an error.
    """
    cmp = Comparison(threshold_pct=threshold_pct)
    skipped, regressions = cmp.skipped, cmp.regressions
    base_results = baseline.get("results", {})
    for result in run.results:
        base = base_results.get(result.name)
        if base is None:
            skipped.append(f"{result.name}: not in baseline")
            continue
        if base.get("meta") and result.meta and base["meta"] != result.meta:
            skipped.append(
                f"{result.name}: parameters differ from baseline"
            )
            continue
        old_wall = base.get("wall_s")
        if old_wall:
            speedup = old_wall / result.wall_s if result.wall_s > 0 else 0.0
            cmp.walls[result.name] = (old_wall, result.wall_s, speedup)
            if result.wall_s > old_wall * (1.0 + threshold_pct / 100.0):
                regressions.append(
                    f"{result.name}: wall {result.wall_s:.3f}s vs baseline "
                    f"{old_wall:.3f}s (> {threshold_pct:.0f}% slower)"
                )
        old_events = base.get("events")
        if old_events and result.events:
            if result.events > old_events * EVENT_GROWTH_TOLERANCE:
                regressions.append(
                    f"{result.name}: kernel events {result.events} vs "
                    f"baseline {old_events} (deterministic count grew "
                    f"> {(EVENT_GROWTH_TOLERANCE - 1) * 100:.0f}%)"
                )
    fresh_names = {result.name for result in run.results}
    for name in base_results:
        if name not in fresh_names:
            skipped.append(f"{name}: in baseline only (not in this run)")
    return cmp


# -- profiling pass (jets bench --profile) --------------------------------
#
# Run *after* (and separately from) the timed pass: cProfile's tracing
# overhead would contaminate wall times, so profiled numbers never enter
# BENCH_<suite>.json and baselines stay comparable.  The output feeds
# ``jets lint --hot-profile`` / ``jets hotpath --hot-profile``: the
# top-N cumulative-time functions join the statically computed hot set.

#: Per-file lineno -> qualname tables, parsed lazily from source.
_QUALNAME_CACHE: dict[str, dict[int, str]] = {}


def _qualnames_for(path: str) -> dict[int, str]:
    """Map function-def line numbers to dotted qualnames for one file.

    cProfile keys stats by ``(filename, lineno, co_name)``; ``co_name``
    is the bare name, so ``step`` could be anything.  Re-parsing the
    source recovers the stable ``Class.method`` qualname at that line.
    """
    import ast

    cached = _QUALNAME_CACHE.get(path)
    if cached is not None:
        return cached
    table: dict[int, str] = {}
    try:
        with open(path) as fh:
            tree = ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        _QUALNAME_CACHE[path] = table
        return table

    def visit(node, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table[child.lineno] = prefix + child.name
                visit(child, prefix + child.name + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, prefix + child.name + ".")
            else:
                visit(child, prefix)

    visit(tree, "")
    _QUALNAME_CACHE[path] = table
    return table


def function_id(filename: str, lineno: int, funcname: str) -> str:
    """Stable ``module:qualname`` id for one profiled frame."""
    from ..analysis.callgraph import module_name_for

    qual = _qualnames_for(filename).get(lineno, funcname)
    return f"{module_name_for(filename)}:{qual}"


def profile_workload(
    workload: Workload, quick: bool = False, top: int = 25
) -> list[dict]:
    """cProfile one workload; the top-N project frames by cumtime.

    Frames outside the ``repro`` package (stdlib, site-packages) are
    dropped: the hot-profile consumer only escalates lint severity on
    project functions, and filtering here keeps the JSON small and the
    ids resolvable against the call graph.
    """
    import cProfile
    import os
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        workload.fn(quick)
    finally:
        prof.disable()
    stats = pstats.Stats(prof).stats  # type: ignore[attr-defined]
    marker = f"{os.sep}repro{os.sep}"
    entries: list[dict] = []
    for (filename, lineno, funcname), row in stats.items():
        if marker not in filename:
            continue
        _cc, ncalls, tottime, cumtime, _callers = row
        entries.append({
            "id": function_id(filename, lineno, funcname),
            "ncalls": ncalls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    entries.sort(key=lambda e: (-e["cumtime"], e["id"]))
    return entries[:top]


def profile_suite(
    suite: str,
    quick: bool = False,
    top: int = 25,
    only: Optional[list[str]] = None,
    progress=None,
) -> dict[str, list[dict]]:
    """Profile every workload of a suite; workload name -> top frames."""
    workloads = SUITES.get(suite)
    if workloads is None:
        raise KeyError(f"unknown bench suite {suite!r}")
    if only:
        workloads = [wl for wl in workloads if wl.name in set(only)]
    out: dict[str, list[dict]] = {}
    for wl in workloads:
        out[wl.name] = profile_workload(wl, quick=quick, top=top)
        if progress is not None:
            progress(wl.name, out[wl.name])
    return out


def write_profile(
    workloads: dict[str, list[dict]],
    path: str,
    quick: bool = False,
    top: int = 25,
) -> dict:
    """Write ``BENCH_profile.json`` in the layout ``load_profile`` reads."""
    doc = {
        "schema": SCHEMA,
        "kind": "profile",
        "quick": quick,
        "top": top,
        "python": sys.version.split()[0],
        "workloads": workloads,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc
