"""Performance measurement for the JETS reproduction (``jets bench``).

JETS' whole point is throughput: the paper's Fig. 6 plateau is set by
per-operation dispatcher cost, and the ROADMAP's "as fast as the hardware
allows" is unfalsifiable without a wall-clock trajectory.  This package
is that trajectory:

* :mod:`.workloads` — named workload suites.  ``kernel`` microbenchmarks
  isolate the simulator's hot paths (event churn, timeout storms,
  interrupt storms, trace queries, aggregator scans, gauge integrals);
  ``macro`` runs reduced cuts of the paper experiments end to end
  (Fig. 6 sequential rate, Fig. 9 512-node MPI, a chaos mix, an explore
  slice).
* :mod:`.harness` — the measurement core: wall time, kernel events/sec,
  peak RSS, and allocation stats via ``tracemalloc``; JSON emission
  (``BENCH_kernel.json`` / ``BENCH_macro.json``) and baseline
  comparison with regression gating.
* :mod:`.cli` — the ``jets bench`` subcommand.

Benchmark workloads intentionally read the wall clock — they measure it.
Every such call site carries a ``# repro: noqa[DT001]`` marker so the
determinism linter keeps protecting the simulation code proper.
"""

from .harness import (
    BenchResult,
    SuiteRun,
    compare_runs,
    load_baseline,
    run_suite,
    write_suite,
)
from .workloads import SUITES, Workload

__all__ = [
    "BenchResult",
    "SuiteRun",
    "SUITES",
    "Workload",
    "compare_runs",
    "load_baseline",
    "run_suite",
    "write_suite",
]
