"""Named benchmark workloads for ``jets bench``.

Two suites:

* ``kernel`` — microbenchmarks that isolate one hot path each: raw event
  churn (allocate/trigger/resume), timeout storms with heavy same-time
  ties (the batched-pop case), interrupt storms (bridge events), trace
  category queries (the report/lint/protocol read path), aggregator
  dispatch scans, and gauge integrals.
* ``macro`` — reduced cuts of the paper experiments end to end: the
  Fig. 6 sequential launch-rate sweep, the Fig. 9 512-node MPI
  utilization point, a chaos-plan mix, and a slice of the schedule
  explorer.

Each workload is a plain function ``fn(quick: bool) -> dict``.  The dict
may carry ``events`` (kernel events processed) and ``sim_s`` (simulated
seconds) — the harness lifts those into first-class fields — plus any
deterministic parameters/checksums, which land in ``meta`` and double as
a cross-run identity check (the comparison mode refuses to compare runs
whose meta differs, and identical seeds must reproduce identical
checksums).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Workload", "SUITES"]


@dataclass(frozen=True)
class Workload:
    """One named benchmark workload."""

    name: str
    fn: Callable[[bool], dict]
    doc: str = ""


# -- kernel microbenchmarks ---------------------------------------------------


def _event_churn(quick: bool) -> dict:
    """Raw event allocate/trigger/resume plus the processed-event paths."""
    from ..simkernel import Environment

    procs = 100 if quick else 400
    rounds = 30 if quick else 120
    env = Environment()
    done = env.event()
    done.succeed()

    def worker(env):
        for _ in range(rounds):
            ev = env.event()
            ev.succeed()
            yield ev
            # Already-processed target: exercises the no-reschedule
            # resume path (after the first pop of `done`).
            yield done
            # Late listener on a processed event: the bridge/relay path.
            done._add_callback(_sink)

    for _ in range(procs):
        env.process(worker(env))
    env.run()
    return {
        "events": env.events_processed,
        "sim_s": env.now,
        "procs": procs,
        "rounds": rounds,
    }


def _sink(_event) -> None:
    pass


def _timeout_storm(quick: bool) -> dict:
    """Heap churn with heavy same-time ties (quantized delays)."""
    from ..simkernel import Environment

    procs = 150 if quick else 600
    rounds = 40 if quick else 150
    env = Environment()

    def worker(env, i):
        for _ in range(rounds):
            # Quantized delays put many events at identical timestamps.
            yield env.timeout((i % 5) * 0.5)

    for i in range(procs):
        env.process(worker(env, i))
    env.run()
    return {
        "events": env.events_processed,
        "sim_s": env.now,
        "procs": procs,
        "rounds": rounds,
    }


def _resume_chain(quick: bool) -> dict:
    """Deep succeed→resume ladders: the zero-alloc inline chain path.

    Every yield is an event that succeeded immediately with no other
    listener — the exact shape the scheduler's succeed→resume fast path
    collapses into inline generator stepping.  On kernels without that
    path each rung is a full schedule/pop round-trip, so this workload
    isolates the chain win (``event_churn`` mixes in processed-target
    and late-listener traffic).
    """
    from ..simkernel import Environment

    procs = 50 if quick else 200
    depth = 200 if quick else 800
    env = Environment()

    def ladder(env):
        acc = 0
        for i in range(depth):
            ev = env.event()
            ev.succeed(i)
            acc += yield ev
        return acc

    ladders = [env.process(ladder(env)) for _ in range(procs)]
    env.run()
    return {
        "events": env.events_processed,
        "sim_s": env.now,
        "procs": procs,
        "depth": depth,
        "checksum": sum(p.value for p in ladders),
    }


def _far_future(quick: bool) -> dict:
    """Calendar-queue overflow stress: irregular far-future timestamps.

    Nearly every timeout lands at a unique future time, so each insert
    opens a fresh bucket in the sorted overflow structure and each pop
    retires one — the worst case for bucketed time (no same-time or
    fixed-delay reuse to amortize), and pure heap churn on kernels with
    a flat event heap.
    """
    from ..simkernel import Environment

    procs = 100 if quick else 400
    rounds = 30 if quick else 100
    env = Environment()

    def worker(env, i):
        for r in range(rounds):
            # Knuth-style multiplicative hashing spreads the delays over
            # ~100k distinct values, so bucket reuse is rare.
            yield env.timeout(
                1.0 + ((i * 2654435761 + r * 40503) % 100003) / 97.0
            )

    for i in range(procs):
        env.process(worker(env, i))
    env.run()
    return {
        "events": env.events_processed,
        "sim_s": round(env.now, 6),
        "procs": procs,
        "rounds": rounds,
    }


def _interrupt_storm(quick: bool) -> dict:
    """Interrupt delivery: bridge allocation + throw into generators."""
    from ..simkernel import Environment, Interrupt

    procs = 60 if quick else 200
    hits = 20 if quick else 60
    env = Environment()

    def sleeper(env):
        for _ in range(hits):
            try:
                yield env.timeout(1000.0)
            except Interrupt:
                pass

    def driver(env, targets):
        for _ in range(hits):
            for t in targets:
                yield env.timeout(0.001)
                if t.is_alive:
                    t.interrupt("storm")

    targets = [env.process(sleeper(env)) for _ in range(procs)]
    env.process(driver(env, targets))
    env.run()
    return {
        "events": env.events_processed,
        "sim_s": round(env.now, 6),
        "procs": procs,
        "hits": hits,
    }


def _trace_query(quick: bool) -> dict:
    """Category select/times queries — the report/lint/protocol read path."""
    from ..simkernel import Environment
    from ..simkernel.monitor import Trace

    families = 6
    cats = 24
    per_cat = 100 if quick else 400
    queries = 20 if quick else 100
    env = Environment()
    trace = Trace(env)
    names = [f"fam{i % families}.cat{i}" for i in range(cats)]
    for r in range(per_cat):
        for name in names:
            trace.log(name, {"i": r})  # repro: noqa[TR004]
    checksum = 0
    for _ in range(queries):
        for name in names:
            checksum += len(trace.select(name))
            checksum += len(trace.times(name))
        for fam in range(families):
            checksum += len(trace.select(f"fam{fam}.", prefix=True))
    return {
        "records": len(trace),
        "queries": queries,
        "checksum": checksum,
    }


def _aggregator_churn(quick: bool) -> dict:
    """Dispatch-decision scans: can_place/place/release cycles."""
    from ..core.aggregator import Aggregator, WorkerView
    from ..core.tasklist import JobSpec

    workers = 150 if quick else 500
    cycles = 2000 if quick else 12000
    agg = Aggregator()
    for wid in range(workers):
        agg.add_worker(
            WorkerView(worker_id=wid, node=None, socket=None, slots=2)
        )
        agg.mark_ready(wid, now=0.0, all_slots=True)
    serial = JobSpec(program=None, nodes=1, ppn=1, mpi=False, job_id="bench-s")
    mpi = JobSpec(program=None, nodes=4, ppn=1, mpi=True, job_id="bench-m")
    placed = 0
    for i in range(cycles):
        job = mpi if i % 4 == 0 else serial
        if agg.can_place(job):
            views = agg.place(job)
            placed += len(views)
            for v in views:
                agg.release(job, v.worker_id)
                agg.mark_ready(v.worker_id, now=float(i), all_slots=job.mpi)
    return {
        "workers": workers,
        "cycles": cycles,
        "placed": placed,
    }


def _gauge_integral(quick: bool) -> dict:
    """Windowed integrals over a long step series."""
    from ..simkernel import Environment
    from ..simkernel.monitor import Gauge

    samples = 1000 if quick else 4000
    integrals = 600 if quick else 3000
    env = Environment()
    gauge = Gauge(env, initial=0.0)

    def driver(env):
        for i in range(samples):
            yield env.timeout(1.0)
            gauge.set(float(i % 32))

    env.process(driver(env))
    env.run()
    checksum = 0.0
    for q in range(integrals):
        start = float(q % (samples - 16))
        checksum += gauge.integral(start, start + 12.0)
    return {
        "samples": samples,
        "integrals": integrals,
        "checksum": round(checksum, 3),
    }


# -- macro workloads ----------------------------------------------------------


def _collect(runs) -> dict:
    """Sum kernel/trace volume across an obs session's captured runs."""
    events = sum(t.env.events_processed for _label, t, _reg in runs)
    sim_s = sum(t.env.now for _label, t, _reg in runs)
    # len(sink) is the all-time record count for both the in-RAM Trace
    # and the windowed StreamingTrace (which retains only a suffix).
    records = sum(len(t) for _label, t, _reg in runs)
    return {"events": events, "sim_s": round(sim_s, 6), "records": records}


def _fig06_rate(quick: bool) -> dict:
    """Fig. 6 sequential launch-rate sweep (reduced allocation)."""
    from ..experiments import fig06_sequential
    from ..obs import session

    nodes = (64,) if quick else (256,)
    tpn = 4 if quick else 8
    with session() as s:
        rows = fig06_sequential.run(
            node_sizes=nodes, tasks_per_node=tpn, seed=0
        )
    out = _collect(s.runs)
    out.update(
        nodes=list(nodes),
        tasks_per_node=tpn,
        rate=rows[-1]["rate"],
        completed=rows[-1]["completed"],
    )
    return out


def _fig06_journal(quick: bool) -> dict:
    """``fig06_rate`` with the write-ahead run journal enabled.

    Same workload parameters as ``fig06_rate``, so the wall-time delta
    between the two in one bench invocation prices journaling overhead
    (CI's chaos-resume job gates it below 5%).  The journal goes to a
    fresh temp file each call and is deleted afterwards; only its
    (deterministic) record count lands in the result meta.
    """
    import os
    import tempfile

    from ..experiments import fig06_sequential
    from ..obs import session

    nodes = (64,) if quick else (256,)
    tpn = 4 if quick else 8
    fd, path = tempfile.mkstemp(prefix="jets-bench-", suffix=".journal")
    os.close(fd)
    try:
        with session() as s:
            rows = fig06_sequential.run(
                node_sizes=nodes, tasks_per_node=tpn, seed=0,
                journal_path=path,
            )
        with open(path, "rb") as fh:
            journal_records = sum(1 for line in fh if line.strip())
    finally:
        os.unlink(path)
    out = _collect(s.runs)
    out.update(
        nodes=list(nodes),
        tasks_per_node=tpn,
        rate=rows[-1]["rate"],
        completed=rows[-1]["completed"],
        journal_records=journal_records,
    )
    return out


def _fig09_mpi512(quick: bool) -> dict:
    """Fig. 9 MPI point: 512 nodes, 8-process tasks (128 nodes in quick)."""
    from ..experiments import fig09_bgp
    from ..obs import session

    alloc = 128 if quick else 512
    tpn = 2 if quick else 4
    with session() as s:
        rows = fig09_bgp.run(
            alloc_sizes=(alloc,),
            task_sizes=(8,),
            duration=10.0,
            tasks_per_node=tpn,
            seed=0,
        )
    out = _collect(s.runs)
    out.update(
        alloc=alloc,
        tasks_per_node=tpn,
        util=rows[0]["util"],
        jobs=rows[0]["jobs"],
    )
    return out


def _chaos_mix(quick: bool) -> dict:
    """A slice of the chaos campaign: all-kind fault plans with recovery."""
    from ..core.chaos import ChaosConfig, run_chaos_plan
    from ..obs import session

    plans = 5 if quick else 20
    config = ChaosConfig()
    with session() as s:
        results = [run_chaos_plan(config, i) for i in range(plans)]
    out = _collect(s.runs)
    out.update(
        plans=plans,
        ok=sum(1 for r in results if r.ok),
        respawns=sum(r.respawns for r in results),
    )
    return out


def _explore_slice(quick: bool) -> dict:
    """A slice of the schedule explorer: permuted event orders + oracles."""
    from ..analysis.explore import ExploreConfig, run_schedule
    from ..obs import session

    schedules = 10 if quick else 40
    config = ExploreConfig()
    with session() as s:
        results = [run_schedule(config, i) for i in range(schedules)]
    out = _collect(s.runs)
    out.update(
        schedules=schedules,
        drained=sum(1 for r in results if r.drained),
    )
    return out


#: jobs_1m stream sizes (module-level so tests can shrink the quick run).
_JOBS_1M_QUICK = 8_000
_JOBS_1M_FULL = 40_000


def _jobs_1m(quick: bool) -> dict:
    """Million-kernel-event job stream under the streaming trace sink.

    The memory-budget gate for the streaming observability pipeline: a
    long serial-job stream is wave-fed to the dispatcher (each wave
    submitted once the previous drained, the steady-state many-task
    pattern) while the platform trace is a windowed
    :class:`~repro.simkernel.StreamingTrace`.  Trace memory stays flat
    no matter how many records flow; an in-RAM run of the same stream
    grows linearly with record count.  Set ``JETS_BENCH_SPILL`` to a
    path to spill the full record stream there (the CI artifact);
    without it evicted records are dropped after subscribers fold them.
    """
    import os

    from ..apps.synthetic import SleepProgram
    from ..cluster.machine import generic_cluster
    from ..cluster.platform import Platform
    from ..core.dispatcher import JetsDispatcher, JetsServiceConfig
    from ..core.tasklist import JobSpec
    from ..core.worker import WorkerAgent
    from ..obs import session

    jobs_n = _JOBS_1M_QUICK if quick else _JOBS_1M_FULL
    batch = 2_000
    window = 8_192
    spill = os.environ.get("JETS_BENCH_SPILL") or None  # repro: noqa[DT005]  bench knob, not sim state
    # chrome_out="" suppresses the derived Chrome path a spill target
    # would otherwise trigger: this workload measures the pure pipeline.
    with session(stream=True, window=window, trace_out=spill,
                 chrome_out="") as s:
        platform = Platform(generic_cluster(nodes=8, cores_per_node=4))
        dispatcher = JetsDispatcher(
            platform, JetsServiceConfig(), expected_workers=8
        )
        dispatcher.start()
        agents = [
            WorkerAgent(platform, node, dispatcher.endpoint)
            for node in platform.nodes
        ]
        for agent in agents:
            agent.start()
        env = platform.env
        done = env.event()

        def feeder(env):
            sent = 0
            while sent < jobs_n:
                n = min(batch, jobs_n - sent)
                dispatcher.submit_many(
                    [
                        JobSpec(program=SleepProgram(0.2), nodes=1, mpi=False)
                        for _ in range(n)
                    ]
                )
                sent += n
                while dispatcher.jobs_finished < sent:
                    yield env.timeout(0.5)
            done.succeed()

        env.process(feeder(env), name="bench-feeder")
        env.run(done)
        sink = platform.trace
        retained = sink.retained
    out = _collect(s.runs)
    out.update(
        jobs=jobs_n,
        batch=batch,
        window=window,
        retained=retained,
        finished=dispatcher.jobs_finished,
    )
    return out


SUITES: dict[str, list[Workload]] = {
    "kernel": [
        Workload("event_churn", _event_churn, "event alloc/trigger/resume"),
        Workload("timeout_storm", _timeout_storm, "heap churn, same-time ties"),
        Workload(
            "resume_chain", _resume_chain, "deep succeed→resume ladders"
        ),
        Workload(
            "far_future", _far_future, "irregular far-future overflow stress"
        ),
        Workload("interrupt_storm", _interrupt_storm, "interrupt delivery"),
        Workload("trace_query", _trace_query, "trace select/times queries"),
        Workload("aggregator_churn", _aggregator_churn, "dispatch scans"),
        Workload("gauge_integral", _gauge_integral, "windowed gauge integrals"),
    ],
    "macro": [
        Workload("fig06_rate", _fig06_rate, "Fig. 6 sequential launch rate"),
        Workload(
            "fig06_journal", _fig06_journal,
            "fig06_rate twin with the run journal on (overhead gate)",
        ),
        Workload("fig09_mpi512", _fig09_mpi512, "Fig. 9 512-node MPI point"),
        Workload("chaos_mix", _chaos_mix, "chaos plans with recovery"),
        Workload("explore_slice", _explore_slice, "schedule-explorer slice"),
        Workload(
            "jobs_1m", _jobs_1m, "million-event stream, streaming sink"
        ),
    ],
}
