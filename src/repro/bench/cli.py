"""The ``jets bench`` subcommand.

Runs one or both workload suites, prints a result table, writes
``BENCH_<suite>.json`` files, and (with ``--against``) gates on wall-time
regression versus a saved baseline::

    jets bench                      # full kernel + macro suites
    jets bench --suite kernel       # one suite
    jets bench --quick              # CI smoke sizes
    jets bench --against BENCH_macro.json --threshold 30

Exit codes: 0 ok, 1 regression detected, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .harness import (
    BenchResult,
    compare_runs,
    load_baseline,
    profile_suite,
    run_suite,
    write_profile,
    write_suite,
)
from .workloads import SUITES

__all__ = ["bench_main", "build_bench_parser"]


def build_bench_parser() -> argparse.ArgumentParser:
    """Parser for ``jets bench``."""
    parser = argparse.ArgumentParser(
        prog="jets bench",
        description="Run the performance workload suites and emit "
        "BENCH_<suite>.json.",
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES) + ["all"],
        default="all",
        help="which suite to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced iteration counts (CI smoke)",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="where to write BENCH_<suite>.json (default: cwd)",
    )
    parser.add_argument(
        "--against",
        default=None,
        metavar="BENCH.json",
        help="compare against a saved baseline; fail on regression. "
        "The baseline's suite name selects which fresh suite it gates.",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="wall-time regression tolerance in percent (default: 25)",
    )
    parser.add_argument(
        "--no-mem",
        action="store_true",
        help="skip the tracemalloc memory pass (halves runtime)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="timed-pass repetitions per workload; the minimum wall "
        "time is reported (default: 1)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named workload(s) of the selected suite "
        "(repeatable); keeps process-wide peak RSS attributable",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after the timed pass, run each workload once more under "
        "cProfile and write BENCH_profile.json (top-N project "
        "functions by cumulative time; feeds `jets lint "
        "--hot-profile`). Profiled numbers never enter the timed "
        "results, so baselines stay comparable",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="functions kept per workload in the profile (default: 25)",
    )
    parser.add_argument(
        "--rss-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="fail (exit 1) if any workload's peak RSS exceeds this "
        "budget — the streaming-sink memory gate",
    )
    return parser


def _print_result(result: BenchResult) -> None:
    parts = [f"  {result.name:<18} {result.wall_s:8.3f}s"]
    if (
        result.wall_median_s is not None
        and result.wall_median_s != result.wall_s
    ):
        parts.append(f"median {result.wall_median_s:.3f}s")
    if result.events_per_s:
        parts.append(f"{result.events_per_s:>12,.0f} ev/s")
    parts.append(f"rss {result.peak_rss_kb // 1024} MB")
    if result.alloc_peak_kb is not None:
        parts.append(f"alloc-peak {result.alloc_peak_kb / 1024:.1f} MB")
    print("  ".join(parts))


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """``jets bench`` entry point; returns the process exit code."""
    args = build_bench_parser().parse_args(argv)
    suites = sorted(SUITES) if args.suite == "all" else [args.suite]

    baseline = None
    if args.against is not None:
        try:
            baseline = load_baseline(args.against)
        except OSError as exc:
            print(f"jets bench: cannot read {args.against}: {exc}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"jets bench: {exc}", file=sys.stderr)
            return 2

    if not os.path.isdir(args.out_dir):
        print(f"jets bench: {args.out_dir} is not a directory",
              file=sys.stderr)
        return 2

    exit_code = 0
    profiled: dict[str, list[dict]] = {}
    for suite in suites:
        print(f"suite {suite}{' (quick)' if args.quick else ''}:")
        try:
            run = run_suite(
                suite,
                quick=args.quick,
                memory=not args.no_mem,
                progress=_print_result,
                repeats=max(1, args.repeat),
                only=args.only,
            )
        except KeyError as exc:
            print(f"jets bench: {exc.args[0]}", file=sys.stderr)
            return 2
        suite_baseline = (
            baseline if baseline is not None and baseline.get("suite") == suite
            else None
        )
        out_path = os.path.join(args.out_dir, f"BENCH_{suite}.json")
        write_suite(
            run,
            out_path,
            baseline=suite_baseline,
            baseline_source=args.against if suite_baseline else "",
        )
        print(f"  wrote {out_path}")
        if suite_baseline is not None:
            cmp = compare_runs(run, suite_baseline, args.threshold)
            for name, (old, new, speedup) in sorted(cmp.walls.items()):
                print(
                    f"  {name:<18} {old:8.3f}s -> {new:8.3f}s  "
                    f"({speedup:.2f}x)"
                )
            for note in cmp.skipped:
                print(f"  skipped: {note}")
            for regression in cmp.regressions:
                print(f"  REGRESSION: {regression}", file=sys.stderr)
            if not cmp.ok:
                exit_code = 1
        if args.rss_budget_mb is not None:
            budget_kb = args.rss_budget_mb * 1024
            for result in run.results:
                if result.peak_rss_kb > budget_kb:
                    print(
                        f"  RSS BUDGET EXCEEDED: {result.name} peaked at "
                        f"{result.peak_rss_kb / 1024:.0f} MB "
                        f"(budget {args.rss_budget_mb:.0f} MB)",
                        file=sys.stderr,
                    )
                    exit_code = 1
        if args.profile:
            print(f"  profiling {suite}...")
            profiled.update(profile_suite(
                suite,
                quick=args.quick,
                top=max(1, args.profile_top),
                only=args.only,
            ))
    if args.profile:
        profile_path = os.path.join(args.out_dir, "BENCH_profile.json")
        write_profile(
            profiled, profile_path,
            quick=args.quick, top=max(1, args.profile_top),
        )
        print(f"wrote {profile_path} ({len(profiled)} workloads)")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(bench_main())
